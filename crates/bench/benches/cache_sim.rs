//! Throughput of the memory-system substrate: raw set-associative cache
//! accesses and full backend accesses on each platform family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_sim::backend::ClusterBackend;
use memhier_sim::cache::{LineState, SetAssocCache};
use memhier_sim::homemap::HomeMap;
use memhier_trace::SyntheticTrace;
use std::hint::black_box;

fn addresses(n: usize) -> Vec<u64> {
    SyntheticTrace::new(1.2, 5000.0, 64, 7).take(n).collect()
}

fn bench_cache(c: &mut Criterion) {
    let addrs = addresses(100_000);
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("setassoc_256k_2way", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(256 * 1024, 2, 64);
            for &a in &addrs {
                if cache.lookup(a).is_none() {
                    cache.insert(a, LineState::Shared);
                }
            }
            black_box(cache.capacity_bytes())
        })
    });
    g.finish();
}

fn bench_backend(c: &mut Criterion) {
    let addrs = addresses(100_000);
    let mut g = c.benchmark_group("backend_access");
    g.throughput(Throughput::Elements(addrs.len() as u64));

    let cases: Vec<(&str, ClusterSpec)> = vec![
        (
            "smp4",
            ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0)),
        ),
        (
            "cow4_eth100",
            ClusterSpec::cluster(
                MachineSpec::new(1, 256, 64, 200.0),
                4,
                NetworkKind::Ethernet100,
            ),
        ),
        (
            "clump2x2_atm",
            ClusterSpec::cluster(MachineSpec::new(2, 256, 64, 200.0), 2, NetworkKind::Atm155),
        ),
    ];
    for (name, cluster) in cases {
        g.bench_with_input(
            BenchmarkId::new("platform", name),
            &cluster,
            |b, cluster| {
                let nn = cluster.machines as usize;
                b.iter(|| {
                    let mut be =
                        ClusterBackend::new(cluster, LatencyParams::paper(), HomeMap::new(nn, 256));
                    let procs = be.total_procs();
                    let mut now = 0u64;
                    for (i, &a) in addrs.iter().enumerate() {
                        now += 4;
                        black_box(be.access(i % procs, a, i % 5 == 0, now));
                    }
                    be.counts()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cache, bench_backend);
criterion_main!(benches);
