//! E6 — the §5.3.3 cost claim: "the modeling computation for each of all
//! the above configurations took between 0.5 and 1 second, and required
//! only about a hundred bytes of memory.  In contrast, it usually took
//! more than 20 minutes to obtain one simulation result."
//!
//! We benchmark the analytic model evaluation (well under a millisecond on
//! modern hardware) against a full small-size program-driven simulation,
//! and include the Open-vs-SelfConsistent arrival ablation (DESIGN.md
//! §2.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memhier_bench::runner::{simulate_workload, Sizes};
use memhier_core::model::{AnalyticModel, ArrivalModel};
use memhier_core::params::{self, configs};
use memhier_workloads::registry::WorkloadKind;
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_evaluate");
    let workloads = params::paper_workloads();
    for arrival in [ArrivalModel::Open, ArrivalModel::SelfConsistent] {
        let model = AnalyticModel {
            arrival,
            ..AnalyticModel::default()
        };
        g.bench_with_input(
            BenchmarkId::new("all_cfgs_x_kernels", format!("{arrival:?}")),
            &model,
            |b, model| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for cfg in configs::all_configs() {
                        for w in &workloads {
                            acc += model.evaluate_or_inf(black_box(&cfg), black_box(w));
                        }
                    }
                    acc
                })
            },
        );
    }
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for kind in [WorkloadKind::Edge, WorkloadKind::Fft] {
        g.bench_with_input(
            BenchmarkId::new("small_on_C5", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    simulate_workload(
                        black_box(&Sizes::Small.workload(kind)),
                        black_box(&configs::c5()),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_model, bench_sim);
criterion_main!(benches);
