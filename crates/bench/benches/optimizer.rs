//! Optimizer throughput: the paper's "enumerate all configurations and
//! pick the best" (§4) over the full market, plus the upgrade planner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::model::AnalyticModel;
use memhier_core::params;
use memhier_core::platform::ClusterSpec;
use memhier_cost::{optimize, plan_upgrade, CandidateSpace, PriceTable};
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let space = CandidateSpace::paper_market();
    let mut g = c.benchmark_group("optimize");
    for budget in [5_000.0f64, 20_000.0, 100_000.0] {
        g.bench_with_input(
            BenchmarkId::new("radix_market", budget as u64),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    optimize(
                        black_box(budget),
                        &params::workload_radix(),
                        &model,
                        &prices,
                        &space,
                    )
                    .len()
                })
            },
        );
    }
    g.finish();
}

fn bench_upgrade(c: &mut Criterion) {
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let existing = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 32, 200.0),
        2,
        NetworkKind::Ethernet10,
    );
    c.bench_function("upgrade_plan_fft_2500", |b| {
        b.iter(|| {
            plan_upgrade(
                black_box(&existing),
                2500.0,
                &params::workload_fft(),
                &model,
                &prices,
            )
            .len()
        })
    });
}

criterion_group!(benches, bench_optimize, bench_upgrade);
criterion_main!(benches);
