//! The PR-5 performance suite: the repo's first regression-guarded
//! throughput baseline for the simulator hot path.
//!
//! Three criterion groups print per-iteration timings (cache probe,
//! trace replay per platform back-end, end-to-end simulation of the four
//! paper kernels), and a JSON emitter measures the headline number —
//! **replay throughput in refs/sec**, geomean over FFT/LU/Radix/EDGE on
//! the bus-SMP and CLUMP back-ends — and writes it to `BENCH_pr5.json`
//! (override with `MEMHIER_BENCH_OUT`).
//!
//! Replay throughput replays pre-materialized event traces through
//! `SimSession` with in-memory sources, so it isolates the engine +
//! backend + cache path from workload generation.  A synthetic
//! calibration loop (splitmix64) is timed alongside so runs on machines
//! of different speeds compare via the normalized ratio
//! `refs_per_sec / calibration_ops_per_sec`.
//!
//! Baselines live in `benches/pr5_baseline.json` (checked in):
//!
//! * `pre_pr5` — the engine as of PR 4, blessed once with
//!   `MEMHIER_BLESS_PR5=pre cargo bench -p memhier-bench --bench pr5`.
//! * `post_pr5` — the rewritten engine, blessed with
//!   `MEMHIER_BLESS_PR5=post ...` after the rewrite landed.
//!
//! With `MEMHIER_BENCH_GATE=1` (the CI bench-smoke job) the run fails if
//! normalized throughput regresses more than 10% below `post_pr5`.
//!
//! The JSON emitter also measures **epoch-engine scaling**: the
//! large-node fixture replayed at `sim_threads` ∈ {1, 2, 4, 8}, recorded
//! under `epoch_scaling` in the report.  In gate mode, hosts with ≥ 4
//! cores additionally require a ≥ 2× speedup at 4 sim-threads; hosts
//! with fewer cores (where no wall-clock parallelism exists) record the
//! honest number and skip that gate.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use memhier_bench::runner::Sizes;
use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_sim::backend::ClusterBackend;
use memhier_sim::cache::{LineState, SetAssocCache};
use memhier_sim::engine::{ProcSource, SimSession};
use memhier_sim::event::MemEvent;
use memhier_sim::homemap::HomeMap;
use memhier_workloads::registry::WorkloadKind;
use memhier_workloads::spmd::{collect_events, home_map_for};
use serde_json::{json, Value};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const KERNELS: [WorkloadKind; 4] = [
    WorkloadKind::Fft,
    WorkloadKind::Lu,
    WorkloadKind::Radix,
    WorkloadKind::Edge,
];

/// Bus-SMP: 4 processors snooping one memory bus.
fn smp_bus() -> ClusterSpec {
    ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0))
}

/// CLUMP: 2 × 2-way SMPs over a 100 Mb Ethernet bus.
fn clump_bus() -> ClusterSpec {
    ClusterSpec::cluster(
        MachineSpec::new(2, 256, 128, 200.0),
        2,
        NetworkKind::Ethernet100,
    )
}

/// All five platform back-ends (for the per-backend replay group).
fn platforms() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        ("smp", smp_bus()),
        (
            "cow_bus",
            ClusterSpec::cluster(
                MachineSpec::new(1, 256, 64, 200.0),
                4,
                NetworkKind::Ethernet100,
            ),
        ),
        (
            "cow_switch",
            ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, NetworkKind::Atm155),
        ),
        ("clump_bus", clump_bus()),
        (
            "clump_switch",
            ClusterSpec::cluster(MachineSpec::new(2, 256, 128, 200.0), 2, NetworkKind::Atm155),
        ),
    ]
}

/// A workload's traces plus everything needed to replay them.  Traces are
/// refcount-shared (`ProcSource::shared`), so a replay hands the engine the
/// same buffers each iteration instead of cloning megabytes of events.
struct ReplayCase {
    traces: Vec<Arc<[MemEvent]>>,
    home: HomeMap,
    cluster: ClusterSpec,
    refs: u64,
}

/// The large-node fixture for the intra-scenario speedup measurement: a
/// 16-processor SMP so Phase A of the epoch engine has real width to
/// shard.  (The Table-1 platforms top out at 4 processors, which leaves
/// almost nothing for worker threads to do.)
fn large_node() -> ClusterSpec {
    ClusterSpec::single(MachineSpec::new(16, 256, 512, 200.0))
}

impl ReplayCase {
    fn prepare(cluster: &ClusterSpec, kind: WorkloadKind) -> ReplayCase {
        let workload = Sizes::Small.workload(kind);
        let procs = cluster.total_procs() as usize;
        let program = workload.instantiate(procs);
        let home = home_map_for(
            &*program,
            cluster.machines as usize,
            cluster.machine.n_procs as usize,
            256,
        );
        let collected = collect_events(program);
        let refs = collected.iter().map(|(_, c)| c.mem_refs()).sum();
        ReplayCase {
            traces: collected.into_iter().map(|(e, _)| Arc::from(e)).collect(),
            home,
            cluster: cluster.clone(),
            refs,
        }
    }

    /// One full replay through the engine; returns the wall cycles so the
    /// work can't be optimized out.
    fn replay(&self) -> u64 {
        self.replay_threads(0)
    }

    /// Replay pinned to an explicit engine: 0 = classic, n ≥ 1 = the
    /// epoch-parallel engine with n host threads.
    fn replay_threads(&self, sim_threads: usize) -> u64 {
        let backend = ClusterBackend::new(&self.cluster, LatencyParams::paper(), self.home.clone());
        let sources = self
            .traces
            .iter()
            .map(|t| ProcSource::shared(t.clone()))
            .collect();
        SimSession::new(backend)
            .with_sources(sources)
            .sim_threads(sim_threads)
            .run()
            .report
            .wall_cycles
    }
}

fn bench_cache_probe(c: &mut Criterion) {
    // The §5.1 SMP geometry: 256 KB, 2-way, 64-byte lines.
    let addrs: Vec<u64> = (0..65_536u64)
        .map(|i| (i.wrapping_mul(2654435761) % (1 << 20)) & !63)
        .collect();
    let mut g = c.benchmark_group("pr5_cache_probe");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lookup_insert_256k_2way", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(256 * 1024, 2, 64);
            let mut hits = 0u64;
            for &a in &addrs {
                match cache.lookup(a) {
                    Some(_) => hits += 1,
                    None => {
                        cache.insert(a, LineState::Exclusive);
                    }
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("probe_warm_256k_2way", |b| {
        let mut cache = SetAssocCache::new(256 * 1024, 2, 64);
        for &a in &addrs {
            cache.insert(a, LineState::Shared);
        }
        b.iter(|| {
            let mut present = 0u64;
            for &a in &addrs {
                if cache.probe(a).is_some() {
                    present += 1;
                }
            }
            black_box(present)
        })
    });
    g.finish();
}

fn bench_replay_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("pr5_replay");
    for (name, cluster) in platforms() {
        let case = ReplayCase::prepare(&cluster, WorkloadKind::Fft);
        g.throughput(Throughput::Elements(case.refs));
        g.bench_with_input(BenchmarkId::new("fft_small", name), &case, |b, case| {
            b.iter(|| black_box(case.replay()))
        });
    }
    g.finish();
}

fn bench_e2e(c: &mut Criterion) {
    use memhier_bench::runner::simulate_workload;
    let cluster = clump_bus();
    let mut g = c.benchmark_group("pr5_e2e");
    for kind in KERNELS {
        g.bench_function(&format!("{}_small_clump", kind.name()), |b| {
            b.iter(|| {
                black_box(
                    simulate_workload(&Sizes::Small.workload(kind), &cluster)
                        .report
                        .wall_cycles,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    pr5_groups,
    bench_cache_probe,
    bench_replay_backends,
    bench_e2e
);

/// splitmix64 — the machine-speed calibration kernel.
fn calibration_ops_per_sec() -> f64 {
    const OPS: u64 = 1 << 24;
    let mut best = f64::MAX;
    for _ in 0..3 {
        let mut x = 0x9E3779B97F4A7C15u64;
        let t = Instant::now();
        let mut acc = 0u64;
        for _ in 0..OPS {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        black_box(acc);
        best = best.min(t.elapsed().as_secs_f64());
    }
    OPS as f64 / best
}

/// Best-of-5 replay throughput (refs/sec) for one case.
fn measure_refs_per_sec(case: &ReplayCase) -> f64 {
    measure_refs_per_sec_threads(case, 0)
}

/// Best-of-5 replay throughput at an explicit engine/thread pin.
fn measure_refs_per_sec_threads(case: &ReplayCase, sim_threads: usize) -> f64 {
    black_box(case.replay_threads(sim_threads)); // warm-up
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        black_box(case.replay_threads(sim_threads));
        best = best.min(t.elapsed().as_secs_f64());
    }
    case.refs as f64 / best
}

/// The intra-scenario scaling measurement: the 16-processor large-node
/// fixture replayed through the epoch engine at 1/2/4/8 host threads
/// (FFT small, the hit-dominated end; these are the honest numbers
/// docs/PERF.md quotes).  Returns `(host_cores, per-thread-count rates)`.
fn measure_epoch_scaling() -> (usize, Vec<(usize, f64)>) {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let case = ReplayCase::prepare(&large_node(), WorkloadKind::Fft);
    let rates = [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| {
            let rate = measure_refs_per_sec_threads(&case, n);
            eprintln!("pr5 epoch scaling large_node/FFT sim_threads={n}: {rate:.3e} refs/s");
            (n, rate)
        })
        .collect();
    (host_cores, rates)
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benches/pr5_baseline.json")
}

/// Set `key` on an object `Value`, replacing an existing entry.
fn set_field(obj: &mut Value, key: &str, entry: Value) {
    let Value::Object(fields) = obj else {
        *obj = Value::Object(vec![(key.to_string(), entry)]);
        return;
    };
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = entry,
        None => fields.push((key.to_string(), entry)),
    }
}

fn emit_json() {
    let calib = calibration_ops_per_sec();
    let mut per_case: Vec<(String, Value)> = Vec::new();
    let mut rates = Vec::new();
    for (plat_name, cluster) in [("smp_bus", smp_bus()), ("clump_bus", clump_bus())] {
        for kind in KERNELS {
            let case = ReplayCase::prepare(&cluster, kind);
            let rate = measure_refs_per_sec(&case);
            eprintln!(
                "pr5 e2e replay {plat_name}/{}: {:.3e} refs/s ({} refs)",
                kind.name(),
                rate,
                case.refs
            );
            per_case.push((format!("{plat_name}/{}", kind.name()), json!(rate)));
            rates.push(rate);
        }
    }
    let geomean = (rates.iter().map(|r| r.ln()).sum::<f64>() / rates.len() as f64).exp();
    let normalized = geomean / calib;
    eprintln!("pr5 geomean: {geomean:.3e} refs/s  (normalized {normalized:.4e})");

    let (host_cores, scaling) = measure_epoch_scaling();
    let rate_at = |n: usize| scaling.iter().find(|(t, _)| *t == n).map(|&(_, r)| r);
    let speedup_4t = match (rate_at(1), rate_at(4)) {
        (Some(one), Some(four)) if one > 0.0 => Some(four / one),
        _ => None,
    };
    if let Some(s) = speedup_4t {
        eprintln!("pr5 epoch speedup at 4 sim-threads vs 1 ({host_cores}-core host): {s:.2}x");
    }
    let epoch_scaling = json!({
        "fixture": "large_node (16-proc SMP), FFT small, epoch engine",
        "host_cores": host_cores,
        "refs_per_sec_by_sim_threads": Value::Object(
            scaling
                .iter()
                .map(|&(n, r)| (n.to_string(), json!(r)))
                .collect(),
        ),
        "speedup_4t_vs_1t": speedup_4t,
    });

    let mut baseline: Value = std::fs::read_to_string(baseline_path())
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| json!({}));

    // Bless mode: record this run as the pre- or post-rewrite baseline.
    if let Ok(which) = std::env::var("MEMHIER_BLESS_PR5") {
        let entry = json!({
            "calibration_ops_per_sec": calib,
            "geomean_refs_per_sec": geomean,
            "normalized_throughput": normalized,
            "per_case": Value::Object(per_case.clone()),
        });
        set_field(&mut baseline, &format!("{which}_pr5"), entry);
        std::fs::write(
            baseline_path(),
            serde_json::to_string_pretty(&baseline).unwrap() + "\n",
        )
        .expect("write pr5 baseline");
        eprintln!("[blessed {}_pr5 in {}]", which, baseline_path().display());
    }

    let norm_of = |v: &Value| v["normalized_throughput"].as_f64();
    let pre_norm = norm_of(&baseline["pre_pr5"]);
    let post_norm = norm_of(&baseline["post_pr5"]);
    let improvement = pre_norm.map(|p| normalized / p);
    if let Some(x) = improvement {
        eprintln!("pr5 improvement vs pre-rewrite engine: {x:.2}x");
    }

    let out = json!({
        "schema": "memhier-bench-pr5/v1",
        "metric": "end-to-end replay throughput, refs/sec, geomean of FFT+LU+Radix+EDGE (small) on bus-SMP and CLUMP back-ends",
        "calibration_ops_per_sec": calib,
        "per_case": Value::Object(per_case),
        "geomean_refs_per_sec": geomean,
        "normalized_throughput": normalized,
        "baseline_pre_pr5": baseline["pre_pr5"].clone(),
        "baseline_post_pr5": baseline["post_pr5"].clone(),
        "improvement_vs_pre_pr5": improvement,
        "epoch_scaling": epoch_scaling,
    });
    let out_path =
        std::env::var("MEMHIER_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr5.json".to_string());
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&out).unwrap() + "\n",
    )
    .expect("write BENCH_pr5.json");
    eprintln!("[wrote {out_path}]");

    // CI regression gate: >10% below the blessed post-rewrite number fails.
    if std::env::var_os("MEMHIER_BENCH_GATE").is_some() {
        let Some(post) = post_norm else {
            eprintln!("pr5 gate: no post_pr5 baseline blessed; failing");
            std::process::exit(1);
        };
        if normalized < 0.9 * post {
            eprintln!(
                "pr5 gate FAILED: normalized throughput {normalized:.4e} is more than 10% \
                 below the blessed baseline {post:.4e}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "pr5 gate passed ({:.1}% of baseline)",
            100.0 * normalized / post
        );
        // Scaling gate: at 4 sim-threads the large-node fixture must run
        // at least 2x its 1-thread rate — but wall-clock speedup needs
        // actual host parallelism, so hosts with fewer than 4 cores only
        // record the honest number instead of gating on it.
        if host_cores >= 4 {
            match speedup_4t {
                Some(s) if s >= 2.0 => {
                    eprintln!("pr5 scaling gate passed ({s:.2}x at 4 sim-threads)");
                }
                s => {
                    eprintln!(
                        "pr5 scaling gate FAILED: 4-thread speedup {s:?} below 2.0x \
                         on a {host_cores}-core host"
                    );
                    std::process::exit(1);
                }
            }
        } else {
            let s = speedup_4t.map_or("n/a".to_string(), |s| format!("{s:.2}x"));
            eprintln!(
                "pr5 scaling gate skipped: host has {host_cores} core(s); \
                 recorded speedup {s} for the report only"
            );
        }
    }
}

fn main() {
    // Criterion display groups are skipped in gate/bless runs unless asked
    // for: the JSON emitter is the part CI consumes.
    if std::env::var_os("MEMHIER_BENCH_JSON_ONLY").is_none() {
        pr5_groups();
    }
    emit_json();
}
