//! Throughput of the trace-analysis substrate: exact stack distances
//! (Bennett–Kruskal + Fenwick) vs the naive LRU-stack reference, and the
//! (α, β) fitter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memhier_trace::{fit_locality, NaiveStackDistance, StackDistanceAnalyzer, SyntheticTrace};
use std::hint::black_box;

fn trace(n: usize) -> Vec<u64> {
    SyntheticTrace::new(1.3, 2000.0, 64, 42).take(n).collect()
}

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_distance");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let t = trace(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("fenwick", n), &t, |b, t| {
            b.iter(|| {
                let mut an = StackDistanceAnalyzer::new(64);
                for &a in t {
                    black_box(an.access(a));
                }
                an.unique_blocks()
            })
        });
    }
    // The naive O(M·B) reference only at a feasible size.
    let t = trace(10_000);
    g.throughput(Throughput::Elements(10_000));
    g.bench_with_input(BenchmarkId::new("naive", 10_000usize), &t, |b, t| {
        b.iter(|| {
            let mut an = NaiveStackDistance::new(64);
            for &a in t {
                black_box(an.access(a));
            }
        })
    });
    g.finish();
}

fn bench_fit(c: &mut Criterion) {
    let mut an = StackDistanceAnalyzer::new(64);
    for a in trace(200_000) {
        an.access(a);
    }
    let cdf = an.histogram().cdf_points();
    c.bench_function("fit_locality", |b| {
        b.iter(|| fit_locality(black_box(&cdf)).unwrap())
    });
}

criterion_group!(benches, bench_exact, bench_fit);
criterion_main!(benches);
