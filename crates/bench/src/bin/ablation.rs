//! E14 — arrival-model and tail-mode ablation of the analytic model.
fn main() {
    memhier_bench::experiments::ablation().print();
}
