//! E14 — arrival-model and tail-mode ablation of the analytic model.
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new("ablation", "E14: arrival-model and tail-mode ablation").parse_env_or_exit();
    memhier_bench::experiments::ablation().print();
}
