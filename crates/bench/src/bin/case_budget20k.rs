//! E8 — §6 case study 2: the $20,000 budget (TPC-C included).
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new("case_budget20k", "E8: the $20,000 budget case study").parse_env_or_exit();
    memhier_bench::experiments::case_budget(20_000.0, true).print();
}
