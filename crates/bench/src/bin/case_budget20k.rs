//! E8 — §6 case study 2: the $20,000 budget (TPC-C included).
fn main() {
    memhier_bench::experiments::case_budget(20_000.0, true).print();
}
