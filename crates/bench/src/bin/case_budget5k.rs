//! E7 — §6 case study 1: the $5,000 budget.
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new("case_budget5k", "E7: the $5,000 budget case study").parse_env_or_exit();
    memhier_bench::experiments::case_budget(5000.0, false).print();
}
