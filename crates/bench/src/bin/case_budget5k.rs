//! E7 — §6 case study 1: the $5,000 budget.
fn main() {
    memhier_bench::experiments::case_budget(5000.0, false).print();
}
