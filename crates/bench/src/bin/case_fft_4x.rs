//! E10 — the §6 FFT Ethernet-vs-ATM equal-cost comparison (~4× gap).
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new(
        "case_fft_4x",
        "E10: FFT Ethernet-vs-ATM equal-cost comparison",
    )
    .parse_env_or_exit();
    memhier_bench::experiments::case_fft_4x().print();
}
