//! E10 — the §6 FFT Ethernet-vs-ATM equal-cost comparison (~4× gap).
fn main() {
    memhier_bench::experiments::case_fft_4x().print();
}
