//! E9 — §6 case study 3: upgrading an existing cluster.
fn main() {
    let extra = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500.0);
    memhier_bench::experiments::case_upgrade(extra).print();
}
