//! E9 — §6 case study 3: upgrading an existing cluster.
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new("case_upgrade", "E9: upgrading an existing cluster")
        .positionals("[EXTRA_BUDGET]")
        .parse_env_or_exit();
    let extra = m
        .positionals()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500.0);
    memhier_bench::experiments::case_upgrade(extra).print();
}
