//! §5.3.1 — coherence share of SMP bus traffic.
use memhier_bench::runner::Sizes;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    memhier_bench::sweeprun::configure_from_args(&args);
    memhier_bench::experiments::coherence_traffic(Sizes::from_args(&args)).print();
}
