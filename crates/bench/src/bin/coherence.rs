//! §5.3.1 — coherence share of SMP bus traffic.
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "coherence",
        "\u{a7}5.3.1: coherence share of SMP bus traffic",
    )
    .sweep_flags()
    .parse_env_or_exit();
    memhier_bench::experiments::coherence_traffic(m.sizes()).print();
}
