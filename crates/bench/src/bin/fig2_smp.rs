//! E3 — regenerate Figure 2: model vs simulation on SMPs C1–C6.
//! Flags: --paper / --small, --jobs N (also honours MEMHIER_JOBS).
use memhier_bench::runner::Sizes;
use memhier_bench::sweeprun::configure_from_args;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    configure_from_args(&args);
    let sizes = Sizes::from_args(&args);
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    let (t, _) = memhier_bench::experiments::fig2_smp(sizes, &chars);
    t.print();
}
