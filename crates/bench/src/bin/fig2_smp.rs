//! E3 — regenerate Figure 2: model vs simulation on SMPs C1–C6.
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "fig2_smp",
        "E3: Figure 2, model vs simulation on SMPs C1-C6",
    )
    .sweep_flags()
    .parse_env_or_exit();
    let sizes = m.sizes();
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    let (t, _) = memhier_bench::experiments::fig2_smp(sizes, &chars);
    t.print();
}
