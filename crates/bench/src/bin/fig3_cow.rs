//! E4 — regenerate Figure 3: model vs simulation on clusters of
//! workstations C7–C11 (with the §5.3.2-style rate calibration).
//! Flags: --paper / --small, --jobs N (also honours MEMHIER_JOBS).
use memhier_bench::runner::Sizes;
use memhier_bench::sweeprun::configure_from_args;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    configure_from_args(&args);
    let sizes = Sizes::from_args(&args);
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    let (t, _) = memhier_bench::experiments::fig3_cow(sizes, &chars);
    t.print();
}
