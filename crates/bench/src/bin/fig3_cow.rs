//! E4 — regenerate Figure 3: model vs simulation on clusters of workstations C7–C11 (with the §5.3.2-style rate calibration).
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "fig3_cow",
        "E4: Figure 3, model vs simulation on COWs C7-C11",
    )
    .sweep_flags()
    .parse_env_or_exit();
    let sizes = m.sizes();
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    let (t, _) = memhier_bench::experiments::fig3_cow(sizes, &chars);
    t.print();
}
