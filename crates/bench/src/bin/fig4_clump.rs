//! E5 — regenerate Figure 4: model vs simulation on clusters of SMPs
//! C12–C15.
//! Flags: --paper / --small, --jobs N (also honours MEMHIER_JOBS).
use memhier_bench::runner::Sizes;
use memhier_bench::sweeprun::configure_from_args;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    configure_from_args(&args);
    let sizes = Sizes::from_args(&args);
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    let (t, _) = memhier_bench::experiments::fig4_clump(sizes, &chars);
    t.print();
}
