//! E5 — regenerate Figure 4: model vs simulation on clusters of SMPs C12–C15.
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "fig4_clump",
        "E5: Figure 4, model vs simulation on CLUMPs C12-C15",
    )
    .sweep_flags()
    .parse_env_or_exit();
    let sizes = m.sizes();
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    let (t, _) = memhier_bench::experiments::fig4_clump(sizes, &chars);
    t.print();
}
