//! Diagnostic: per-level counts for one workload across COW configs.
use memhier_bench::runner::simulate_workload;
use memhier_bench::FlagParser;
use memhier_core::params::configs;
use memhier_workloads::registry::WorkloadKind;

fn main() {
    let m = FlagParser::new("probe", "diagnostic: per-level counts across COW configs")
        .sweep_flags()
        .parse_env_or_exit();
    let sizes = m.sizes();
    for cfg in [configs::c8(), configs::c9(), configs::c10(), configs::c11()] {
        let run = simulate_workload(&sizes.workload(WorkloadKind::Lu), &cfg);
        let l = run.report.levels;
        println!(
            "{}: E={:.3e} refs={} l1={} c2c={} local={} rclean={} rdirty={} disk={} upg={} barrier_wait={} wall={}",
            cfg.name.clone().unwrap(),
            run.report.e_instr_seconds,
            run.report.total_refs,
            l.l1_hits, l.cache_to_cache, l.local_memory, l.remote_clean, l.remote_dirty,
            l.disk, l.upgrades,
            run.report.barrier_wait_cycles,
            run.report.wall_cycles,
        );
    }
}
