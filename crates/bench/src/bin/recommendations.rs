//! E11 — the §6 recommendation matrix.
fn main() {
    memhier_bench::experiments::recommendations().print();
}
