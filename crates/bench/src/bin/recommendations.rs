//! E11 — the §6 recommendation matrix.
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new("recommendations", "E11: the \u{a7}6 recommendation matrix")
        .parse_env_or_exit();
    memhier_bench::experiments::recommendations().print();
}
