//! Run every experiment (E1–E11) in order — the one-command reproduction.
use memhier_bench::experiments as ex;
use memhier_bench::sweeprun::jobs;
use memhier_bench::FlagParser;

fn main() {
    let t0 = std::time::Instant::now();
    let m = FlagParser::new("reproduce_all", "run every experiment (E1-E15) in order")
        .sweep_flags()
        .parse_env_or_exit();
    let sizes = m.sizes();
    eprintln!("[reproduce_all] sweeps run on {} worker(s)", jobs());
    ex::table1().print();
    let (t2, chars) = ex::table2(sizes, true);
    t2.print();
    let kernels: Vec<_> = chars
        .iter()
        .filter(|c| c.name != "TPC-C")
        .cloned()
        .collect();
    ex::fig2_smp(sizes, &kernels).0.print();
    ex::fig3_cow(sizes, &kernels).0.print();
    ex::fig4_clump(sizes, &kernels).0.print();
    ex::coherence_traffic(sizes).print();
    ex::speedup(sizes).print();
    ex::case_budget(5000.0, false).print();
    ex::case_budget(20_000.0, true).print();
    ex::case_upgrade(2500.0).print();
    ex::case_fft_4x().print();
    ex::recommendations().print();
    ex::sensitivity().print();
    ex::ablation().print();
    ex::utilization(sizes, &kernels).print();
    println!("{}", ex::sweep_map(20_000.0));
    eprintln!(
        "[reproduce_all] all experiments finished in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
