//! E12 — sensitivity analysis (the "most sensitive factor" claim).
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new("sensitivity", "E12: sensitivity analysis").parse_env_or_exit();
    memhier_bench::experiments::sensitivity().print();
}
