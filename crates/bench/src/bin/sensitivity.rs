//! E12 — sensitivity analysis (the "most sensitive factor" claim).
fn main() {
    memhier_bench::experiments::sensitivity().print();
}
