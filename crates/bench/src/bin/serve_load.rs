//! serve_load — a closed-loop load generator for `memhierd`.
//!
//! `--clients` threads each open one connection per request (the service
//! is `Connection: close`), pull work from a shared counter until
//! `--requests` have been issued, and record per-request latency and
//! status.  The summary prints p50/p95/p99 latency, throughput, and the
//! status-code mix; `--json` emits the same numbers machine-readably
//! (the CI smoke job and the integration tests parse it).
//!
//! ```text
//! serve_load --addr 127.0.0.1:7070 --clients 8 --requests 64 \
//!            --endpoint recommend [--warm] [--json] [--retries N]
//! ```
//!
//! `--warm` issues one untimed priming request first so the measured run
//! exercises the server's response cache rather than cold simulation.
//!
//! A `429 Too Many Requests` answer is retried (up to `--retries` times,
//! default 3) with exponential backoff: the wait is the larger of the
//! server's `Retry-After` header and `--retry-base-ms << attempt`, plus
//! a *deterministic* full jitter hashed from the request sequence number
//! — the same run desynchronizes its retry herd the same way every time,
//! keeping load tests reproducible.  Retry totals appear in the summary
//! (`retries_429` in `--json`).

use memhier_bench::FlagParser;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The wire bytes for one endpoint probe.
fn request_bytes(endpoint: &str, body: Option<&str>) -> Result<Vec<u8>, String> {
    let (method, path, default_body) = match endpoint {
        "healthz" => ("GET", "/healthz", ""),
        "metrics" => ("GET", "/metrics", ""),
        "model" => (
            "POST",
            "/v1/model",
            r#"{"config": "C5", "workload": "FFT"}"#,
        ),
        "recommend" => ("POST", "/v1/recommend", r#"{"workload": "FFT"}"#),
        "simulate" => (
            "POST",
            "/v1/simulate",
            r#"{"config": "C8", "workload": "LU", "size": "small"}"#,
        ),
        other => return Err(format!("unknown endpoint `{other}`")),
    };
    let body = body.unwrap_or(default_body);
    Ok(format!(
        "{method} {path} HTTP/1.1\r\nHost: serve_load\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes())
}

/// One request: connect, send, read to EOF.  Returns the status, the
/// latency, and the `Retry-After` header (seconds) when present.
fn one_request(addr: &str, wire: &[u8]) -> Result<(u16, Duration, Option<u64>), String> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream.write_all(wire).map_err(|e| format!("send: {e}"))?;
    let mut reply = Vec::new();
    stream
        .read_to_end(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = reply
        .strip_prefix(b"HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| std::str::from_utf8(s).ok())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "malformed response status line".to_string())?;
    Ok((status, started.elapsed(), retry_after_secs(&reply)))
}

/// The `Retry-After` header of a raw HTTP/1.1 reply, in whole seconds
/// (`None` when absent, malformed, or in the unsupported date form).
fn retry_after_secs(reply: &[u8]) -> Option<u64> {
    let head_end = reply.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&reply[..head_end]).ok()?;
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

/// Deterministic full jitter in `[0, cap)`: a splitmix64-style hash of
/// `(seq, attempt)`.  No global RNG — identical runs back off identically.
fn jitter_ms(seq: u64, attempt: u32, cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let mut z = seq
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % cap
}

/// Backoff before retry `attempt` (0-based) of request `seq`: honor the
/// server's `Retry-After` as a floor, grow `base_ms` exponentially, add
/// deterministic jitter so synchronized 429s do not re-collide.
fn backoff_ms(base_ms: u64, attempt: u32, retry_after_s: Option<u64>, seq: u64) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(10));
    let floor_ms = retry_after_s.map_or(0, |s| s.saturating_mul(1000));
    exp.max(floor_ms)
        .saturating_add(jitter_ms(seq, attempt, exp))
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() {
    let m = FlagParser::new("serve_load", "closed-loop load generator for memhierd")
        .option("--addr", "HOST:PORT", "memhierd address (required)")
        .option("--clients", "N", "concurrent client threads (default 8)")
        .option("--requests", "N", "total requests to issue (default 64)")
        .option(
            "--endpoint",
            "NAME",
            "healthz|metrics|model|recommend|simulate (default recommend)",
        )
        .option("--body", "JSON", "override the endpoint's request body")
        .option(
            "--retries",
            "N",
            "max retries per request on 429 (default 3)",
        )
        .option(
            "--retry-base-ms",
            "MS",
            "exponential backoff base for 429 retries (default 25)",
        )
        .switch("--warm", "issue one untimed priming request first")
        .switch("--json", "machine-readable summary")
        .parse_env_or_exit();

    let run = || -> Result<(), String> {
        let addr = m
            .get("--addr")
            .ok_or_else(|| "--addr required".to_string())?
            .to_string();
        let clients: usize = m.parsed("--clients")?.unwrap_or(8).max(1);
        let total: usize = m.parsed("--requests")?.unwrap_or(64).max(1);
        let endpoint = m.get("--endpoint").unwrap_or("recommend").to_string();
        let max_retries: u32 = m.parsed("--retries")?.unwrap_or(3);
        let retry_base_ms: u64 = m.parsed("--retry-base-ms")?.unwrap_or(25);
        let wire = Arc::new(request_bytes(&endpoint, m.get("--body"))?);

        if m.has("--warm") {
            let (status, d, _) = one_request(&addr, &wire)?;
            eprintln!("warm-up: {status} in {:.1} ms", d.as_secs_f64() * 1e3);
        }

        let next = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (addr, wire, next) = (addr.clone(), Arc::clone(&wire), Arc::clone(&next));
                std::thread::spawn(move || {
                    let mut latencies_us = Vec::new();
                    let mut statuses = Vec::new();
                    let mut errors = 0usize;
                    let mut retries = 0usize;
                    loop {
                        let seq = next.fetch_add(1, Ordering::Relaxed);
                        if seq >= total {
                            break;
                        }
                        let mut attempt = 0u32;
                        loop {
                            match one_request(&addr, &wire) {
                                Ok((429, _, retry_after)) if attempt < max_retries => {
                                    retries += 1;
                                    let wait =
                                        backoff_ms(retry_base_ms, attempt, retry_after, seq as u64);
                                    std::thread::sleep(Duration::from_millis(wait));
                                    attempt += 1;
                                    continue;
                                }
                                Ok((status, d, _)) => {
                                    latencies_us
                                        .push(d.as_micros().min(u128::from(u64::MAX)) as u64);
                                    statuses.push(status);
                                }
                                Err(_) => errors += 1,
                            }
                            break;
                        }
                    }
                    (latencies_us, statuses, errors, retries)
                })
            })
            .collect();

        let mut latencies_us = Vec::with_capacity(total);
        let mut by_status: std::collections::BTreeMap<u16, usize> = Default::default();
        let mut errors = 0usize;
        let mut retries_429 = 0usize;
        for h in handles {
            let (lat, statuses, errs, retries) = h.join().map_err(|_| "client thread panicked")?;
            latencies_us.extend(lat);
            errors += errs;
            retries_429 += retries;
            for s in statuses {
                *by_status.entry(s).or_default() += 1;
            }
        }
        let elapsed = started.elapsed();
        latencies_us.sort_unstable();
        let done = latencies_us.len();
        let throughput = done as f64 / elapsed.as_secs_f64().max(1e-9);
        let (p50, p95, p99) = (
            quantile(&latencies_us, 0.50),
            quantile(&latencies_us, 0.95),
            quantile(&latencies_us, 0.99),
        );

        // Writes that hit a closed pipe (e.g. `serve_load | head`) are not
        // an error worth a panic; swallow them.
        let mut stdout = std::io::stdout();
        if m.has("--json") {
            let statuses: Vec<serde_json::Value> = by_status
                .iter()
                .map(|(s, n)| serde_json::json!({"status": *s as u64, "count": *n as u64}))
                .collect();
            let doc = serde_json::json!({
                "endpoint": endpoint,
                "clients": clients as u64,
                "requests": done as u64,
                "errors": errors as u64,
                "elapsed_seconds": elapsed.as_secs_f64(),
                "throughput_rps": throughput,
                "p50_us": p50,
                "p95_us": p95,
                "p99_us": p99,
                "retries_429": retries_429 as u64,
                "statuses": serde_json::Value::Array(statuses),
            });
            let _ = writeln!(
                stdout,
                "{}",
                serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
            );
        } else {
            let _ = writeln!(
                stdout,
                "{endpoint}: {done} requests over {clients} clients in {:.2} s ({throughput:.1} req/s)",
                elapsed.as_secs_f64()
            );
            let _ = writeln!(
                stdout,
                "  latency p50 = {:.2} ms  p95 = {:.2} ms  p99 = {:.2} ms",
                p50 as f64 / 1e3,
                p95 as f64 / 1e3,
                p99 as f64 / 1e3
            );
            for (status, count) in &by_status {
                let _ = writeln!(stdout, "  {status}: {count}");
            }
            if retries_429 > 0 {
                let _ = writeln!(stdout, "  429 retries: {retries_429}");
            }
            if errors > 0 {
                let _ = writeln!(stdout, "  transport errors: {errors}");
            }
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("serve_load: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_parses_case_insensitively() {
        let reply = b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 7\r\n\r\nbusy";
        assert_eq!(retry_after_secs(reply), Some(7));
        let reply = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n";
        assert_eq!(retry_after_secs(reply), Some(1));
    }

    #[test]
    fn retry_after_absent_or_malformed_is_none() {
        assert_eq!(retry_after_secs(b"HTTP/1.1 200 OK\r\n\r\nok"), None);
        assert_eq!(
            retry_after_secs(b"HTTP/1.1 429 x\r\nRetry-After: soon\r\n\r\n"),
            None
        );
        // Header value must not be read out of the body.
        assert_eq!(
            retry_after_secs(b"HTTP/1.1 200 OK\r\n\r\nRetry-After: 9"),
            None
        );
    }

    #[test]
    fn backoff_grows_and_honors_retry_after_floor() {
        // Without a header the wait is at least the exponential term.
        assert!(backoff_ms(25, 0, None, 0) >= 25);
        assert!(backoff_ms(25, 3, None, 0) >= 200);
        // Retry-After of 2s floors a small exponential wait at 2000ms.
        assert!(backoff_ms(25, 0, Some(2), 0) >= 2000);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for seq in 0..50u64 {
            for attempt in 0..4u32 {
                let j = jitter_ms(seq, attempt, 100);
                assert!(j < 100);
                assert_eq!(j, jitter_ms(seq, attempt, 100), "replay must agree");
            }
        }
        // The hash actually spreads: not every (seq, attempt) collides.
        let distinct: std::collections::BTreeSet<u64> =
            (0..50).map(|s| jitter_ms(s, 0, 1000)).collect();
        assert!(distinct.len() > 10);
    }
}
