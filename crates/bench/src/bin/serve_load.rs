//! serve_load — a closed-loop load generator for `memhierd`.
//!
//! `--clients` threads each open one connection per request (the service
//! is `Connection: close`), pull work from a shared counter until
//! `--requests` have been issued, and record per-request latency and
//! status.  The summary prints p50/p95/p99 latency, throughput, and the
//! status-code mix; `--json` emits the same numbers machine-readably
//! (the CI smoke job and the integration tests parse it).
//!
//! ```text
//! serve_load --addr 127.0.0.1:7070 --clients 8 --requests 64 \
//!            --endpoint recommend [--warm] [--json]
//! ```
//!
//! `--warm` issues one untimed priming request first so the measured run
//! exercises the server's response cache rather than cold simulation.

use memhier_bench::FlagParser;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The wire bytes for one endpoint probe.
fn request_bytes(endpoint: &str, body: Option<&str>) -> Result<Vec<u8>, String> {
    let (method, path, default_body) = match endpoint {
        "healthz" => ("GET", "/healthz", ""),
        "metrics" => ("GET", "/metrics", ""),
        "model" => (
            "POST",
            "/v1/model",
            r#"{"config": "C5", "workload": "FFT"}"#,
        ),
        "recommend" => ("POST", "/v1/recommend", r#"{"workload": "FFT"}"#),
        "simulate" => (
            "POST",
            "/v1/simulate",
            r#"{"config": "C8", "workload": "LU", "size": "small"}"#,
        ),
        other => return Err(format!("unknown endpoint `{other}`")),
    };
    let body = body.unwrap_or(default_body);
    Ok(format!(
        "{method} {path} HTTP/1.1\r\nHost: serve_load\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes())
}

/// One request: connect, send, read to EOF, return (status, latency).
fn one_request(addr: &str, wire: &[u8]) -> Result<(u16, Duration), String> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream.write_all(wire).map_err(|e| format!("send: {e}"))?;
    let mut reply = Vec::new();
    stream
        .read_to_end(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = reply
        .strip_prefix(b"HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| std::str::from_utf8(s).ok())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "malformed response status line".to_string())?;
    Ok((status, started.elapsed()))
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() {
    let m = FlagParser::new("serve_load", "closed-loop load generator for memhierd")
        .option("--addr", "HOST:PORT", "memhierd address (required)")
        .option("--clients", "N", "concurrent client threads (default 8)")
        .option("--requests", "N", "total requests to issue (default 64)")
        .option(
            "--endpoint",
            "NAME",
            "healthz|metrics|model|recommend|simulate (default recommend)",
        )
        .option("--body", "JSON", "override the endpoint's request body")
        .switch("--warm", "issue one untimed priming request first")
        .switch("--json", "machine-readable summary")
        .parse_env_or_exit();

    let run = || -> Result<(), String> {
        let addr = m
            .get("--addr")
            .ok_or_else(|| "--addr required".to_string())?
            .to_string();
        let clients: usize = m.parsed("--clients")?.unwrap_or(8).max(1);
        let total: usize = m.parsed("--requests")?.unwrap_or(64).max(1);
        let endpoint = m.get("--endpoint").unwrap_or("recommend").to_string();
        let wire = Arc::new(request_bytes(&endpoint, m.get("--body"))?);

        if m.has("--warm") {
            let (status, d) = one_request(&addr, &wire)?;
            eprintln!("warm-up: {status} in {:.1} ms", d.as_secs_f64() * 1e3);
        }

        let next = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (addr, wire, next) = (addr.clone(), Arc::clone(&wire), Arc::clone(&next));
                std::thread::spawn(move || {
                    let mut latencies_us = Vec::new();
                    let mut statuses = Vec::new();
                    let mut errors = 0usize;
                    while next.fetch_add(1, Ordering::Relaxed) < total {
                        match one_request(&addr, &wire) {
                            Ok((status, d)) => {
                                latencies_us.push(d.as_micros().min(u128::from(u64::MAX)) as u64);
                                statuses.push(status);
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (latencies_us, statuses, errors)
                })
            })
            .collect();

        let mut latencies_us = Vec::with_capacity(total);
        let mut by_status: std::collections::BTreeMap<u16, usize> = Default::default();
        let mut errors = 0usize;
        for h in handles {
            let (lat, statuses, errs) = h.join().map_err(|_| "client thread panicked")?;
            latencies_us.extend(lat);
            errors += errs;
            for s in statuses {
                *by_status.entry(s).or_default() += 1;
            }
        }
        let elapsed = started.elapsed();
        latencies_us.sort_unstable();
        let done = latencies_us.len();
        let throughput = done as f64 / elapsed.as_secs_f64().max(1e-9);
        let (p50, p95, p99) = (
            quantile(&latencies_us, 0.50),
            quantile(&latencies_us, 0.95),
            quantile(&latencies_us, 0.99),
        );

        // Writes that hit a closed pipe (e.g. `serve_load | head`) are not
        // an error worth a panic; swallow them.
        let mut stdout = std::io::stdout();
        if m.has("--json") {
            let statuses: Vec<serde_json::Value> = by_status
                .iter()
                .map(|(s, n)| serde_json::json!({"status": *s as u64, "count": *n as u64}))
                .collect();
            let doc = serde_json::json!({
                "endpoint": endpoint,
                "clients": clients as u64,
                "requests": done as u64,
                "errors": errors as u64,
                "elapsed_seconds": elapsed.as_secs_f64(),
                "throughput_rps": throughput,
                "p50_us": p50,
                "p95_us": p95,
                "p99_us": p99,
                "statuses": serde_json::Value::Array(statuses),
            });
            let _ = writeln!(
                stdout,
                "{}",
                serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
            );
        } else {
            let _ = writeln!(
                stdout,
                "{endpoint}: {done} requests over {clients} clients in {:.2} s ({throughput:.1} req/s)",
                elapsed.as_secs_f64()
            );
            let _ = writeln!(
                stdout,
                "  latency p50 = {:.2} ms  p95 = {:.2} ms  p99 = {:.2} ms",
                p50 as f64 / 1e3,
                p95 as f64 / 1e3,
                p99 as f64 / 1e3
            );
            for (status, count) in &by_status {
                let _ = writeln!(stdout, "  {status}: {count}");
            }
            if errors > 0 {
                let _ = writeln!(stdout, "  transport errors: {errors}");
            }
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("serve_load: {e}");
        std::process::exit(1);
    }
}
