//! serve_load — a closed-loop load generator for `memhierd`.
//!
//! `--clients` threads each hold one **keep-alive** connection
//! ([`LoadClient`]), pull work from a shared counter until `--requests`
//! have been issued, and record per-request latency and status.  The
//! summary prints p50/p95/p99 latency, throughput, and the status-code
//! mix; `--json` emits the same numbers machine-readably (the CI smoke
//! job and the integration tests parse it).  Transport failures are
//! broken out by kind — `connect_errors` (service unreachable),
//! `premature_closes` (connection dropped mid-response: the "dropped
//! in-flight request" signal), and other transport errors — with the
//! historical `errors` field kept as their sum.  `reconnects` counts
//! idle-keep-alive races transparently retried by the client; they are
//! not errors.
//!
//! ```text
//! serve_load --addr 127.0.0.1:7070 --clients 8 --requests 64 \
//!            --endpoint recommend [--warm] [--json] [--retries N]
//! ```
//!
//! `--warm` issues one untimed priming request first so the measured run
//! exercises the server's response cache rather than cold simulation.
//!
//! A `429 Too Many Requests` answer is retried (up to `--retries` times,
//! default 3) with exponential backoff: the wait is the larger of the
//! server's `Retry-After` header and `--retry-base-ms << attempt`, plus
//! a *deterministic* full jitter hashed from the request sequence number
//! — the same run desynchronizes its retry herd the same way every time,
//! keeping load tests reproducible.  Retry totals appear in the summary
//! (`retries_429` in `--json`).

use memhier_bench::{FlagParser, LoadClient, LoadError};
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The wire bytes for one endpoint probe.
fn request_bytes(endpoint: &str, body: Option<&str>) -> Result<Vec<u8>, String> {
    let (method, path, default_body) = match endpoint {
        "healthz" => ("GET", "/healthz", ""),
        "metrics" => ("GET", "/metrics", ""),
        "model" => (
            "POST",
            "/v1/model",
            r#"{"config": "C5", "workload": "FFT"}"#,
        ),
        "recommend" => ("POST", "/v1/recommend", r#"{"workload": "FFT"}"#),
        "simulate" => (
            "POST",
            "/v1/simulate",
            r#"{"config": "C8", "workload": "LU", "size": "small"}"#,
        ),
        other => return Err(format!("unknown endpoint `{other}`")),
    };
    let body = body.unwrap_or(default_body);
    Ok(format!(
        "{method} {path} HTTP/1.1\r\nHost: serve_load\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes())
}

/// Per-thread transport-failure tally, by [`LoadError`] kind.
#[derive(Default)]
struct ErrorTally {
    connect: usize,
    premature: usize,
    transport: usize,
}

impl ErrorTally {
    fn count(&mut self, e: &LoadError) {
        match e {
            LoadError::Connect(_) => self.connect += 1,
            LoadError::PrematureClose => self.premature += 1,
            LoadError::Transport(_) | LoadError::Malformed(_) => self.transport += 1,
        }
    }

    fn total(&self) -> usize {
        self.connect + self.premature + self.transport
    }
}

/// Deterministic full jitter in `[0, cap)`: a splitmix64-style hash of
/// `(seq, attempt)`.  No global RNG — identical runs back off identically.
fn jitter_ms(seq: u64, attempt: u32, cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let mut z = seq
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % cap
}

/// Backoff before retry `attempt` (0-based) of request `seq`: honor the
/// server's `Retry-After` as a floor, grow `base_ms` exponentially, add
/// deterministic jitter so synchronized 429s do not re-collide.
fn backoff_ms(base_ms: u64, attempt: u32, retry_after_s: Option<u64>, seq: u64) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(10));
    let floor_ms = retry_after_s.map_or(0, |s| s.saturating_mul(1000));
    exp.max(floor_ms)
        .saturating_add(jitter_ms(seq, attempt, exp))
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() {
    let m = FlagParser::new("serve_load", "closed-loop load generator for memhierd")
        .option("--addr", "HOST:PORT", "memhierd address (required)")
        .option("--clients", "N", "concurrent client threads (default 8)")
        .option("--requests", "N", "total requests to issue (default 64)")
        .option(
            "--endpoint",
            "NAME",
            "healthz|metrics|model|recommend|simulate (default recommend)",
        )
        .option("--body", "JSON", "override the endpoint's request body")
        .option(
            "--retries",
            "N",
            "max retries per request on 429 (default 3)",
        )
        .option(
            "--retry-base-ms",
            "MS",
            "exponential backoff base for 429 retries (default 25)",
        )
        .switch("--warm", "issue one untimed priming request first")
        .switch("--json", "machine-readable summary")
        .parse_env_or_exit();

    let run = || -> Result<(), String> {
        let addr = m
            .get("--addr")
            .ok_or_else(|| "--addr required".to_string())?
            .to_string();
        let clients: usize = m.parsed("--clients")?.unwrap_or(8).max(1);
        let total: usize = m.parsed("--requests")?.unwrap_or(64).max(1);
        let endpoint = m.get("--endpoint").unwrap_or("recommend").to_string();
        let max_retries: u32 = m.parsed("--retries")?.unwrap_or(3);
        let retry_base_ms: u64 = m.parsed("--retry-base-ms")?.unwrap_or(25);
        let wire = Arc::new(request_bytes(&endpoint, m.get("--body"))?);

        if m.has("--warm") {
            let mut warm = LoadClient::new(addr.clone(), Duration::from_secs(60));
            let r = warm.exchange(&wire).map_err(|e| format!("warm-up: {e}"))?;
            eprintln!(
                "warm-up: {} in {:.1} ms",
                r.status,
                r.latency.as_secs_f64() * 1e3
            );
        }

        let next = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let (addr, wire, next) = (addr.clone(), Arc::clone(&wire), Arc::clone(&next));
                std::thread::spawn(move || {
                    // One keep-alive connection per client thread; the
                    // daemon answers every request on it in order.
                    let mut client = LoadClient::new(addr, Duration::from_secs(60));
                    let mut latencies_us = Vec::new();
                    let mut statuses = Vec::new();
                    let mut errors = ErrorTally::default();
                    let mut retries = 0usize;
                    loop {
                        let seq = next.fetch_add(1, Ordering::Relaxed);
                        if seq >= total {
                            break;
                        }
                        let mut attempt = 0u32;
                        loop {
                            match client.exchange(&wire) {
                                Ok(reply) if reply.status == 429 && attempt < max_retries => {
                                    retries += 1;
                                    let wait = backoff_ms(
                                        retry_base_ms,
                                        attempt,
                                        reply.retry_after_secs(),
                                        seq as u64,
                                    );
                                    std::thread::sleep(Duration::from_millis(wait));
                                    attempt += 1;
                                    continue;
                                }
                                Ok(reply) => {
                                    latencies_us
                                        .push(reply.latency.as_micros().min(u128::from(u64::MAX))
                                            as u64);
                                    statuses.push(reply.status);
                                }
                                Err(e) => errors.count(&e),
                            }
                            break;
                        }
                    }
                    (latencies_us, statuses, errors, retries, client.reconnects())
                })
            })
            .collect();

        let mut latencies_us = Vec::with_capacity(total);
        let mut by_status: std::collections::BTreeMap<u16, usize> = Default::default();
        let mut errors = ErrorTally::default();
        let mut retries_429 = 0usize;
        let mut reconnects = 0u64;
        for h in handles {
            let (lat, statuses, errs, retries, reconn) =
                h.join().map_err(|_| "client thread panicked")?;
            latencies_us.extend(lat);
            errors.connect += errs.connect;
            errors.premature += errs.premature;
            errors.transport += errs.transport;
            retries_429 += retries;
            reconnects += reconn;
            for s in statuses {
                *by_status.entry(s).or_default() += 1;
            }
        }
        let elapsed = started.elapsed();
        latencies_us.sort_unstable();
        let done = latencies_us.len();
        let throughput = done as f64 / elapsed.as_secs_f64().max(1e-9);
        let (p50, p95, p99) = (
            quantile(&latencies_us, 0.50),
            quantile(&latencies_us, 0.95),
            quantile(&latencies_us, 0.99),
        );

        // Writes that hit a closed pipe (e.g. `serve_load | head`) are not
        // an error worth a panic; swallow them.
        let mut stdout = std::io::stdout();
        if m.has("--json") {
            let statuses: Vec<serde_json::Value> = by_status
                .iter()
                .map(|(s, n)| serde_json::json!({"status": *s as u64, "count": *n as u64}))
                .collect();
            let doc = serde_json::json!({
                "endpoint": endpoint,
                "clients": clients as u64,
                "requests": done as u64,
                "errors": errors.total() as u64,
                "connect_errors": errors.connect as u64,
                "premature_closes": errors.premature as u64,
                "transport_errors": errors.transport as u64,
                "reconnects": reconnects,
                "elapsed_seconds": elapsed.as_secs_f64(),
                "throughput_rps": throughput,
                "p50_us": p50,
                "p95_us": p95,
                "p99_us": p99,
                "retries_429": retries_429 as u64,
                "statuses": serde_json::Value::Array(statuses),
            });
            let _ = writeln!(
                stdout,
                "{}",
                serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
            );
        } else {
            let _ = writeln!(
                stdout,
                "{endpoint}: {done} requests over {clients} clients in {:.2} s ({throughput:.1} req/s)",
                elapsed.as_secs_f64()
            );
            let _ = writeln!(
                stdout,
                "  latency p50 = {:.2} ms  p95 = {:.2} ms  p99 = {:.2} ms",
                p50 as f64 / 1e3,
                p95 as f64 / 1e3,
                p99 as f64 / 1e3
            );
            for (status, count) in &by_status {
                let _ = writeln!(stdout, "  {status}: {count}");
            }
            if retries_429 > 0 {
                let _ = writeln!(stdout, "  429 retries: {retries_429}");
            }
            if reconnects > 0 {
                let _ = writeln!(stdout, "  keep-alive reconnects: {reconnects}");
            }
            if errors.total() > 0 {
                let _ = writeln!(
                    stdout,
                    "  errors: {} (connect {}, premature close {}, transport {})",
                    errors.total(),
                    errors.connect,
                    errors.premature,
                    errors.transport
                );
            }
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("serve_load: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_honors_retry_after_floor() {
        // Without a header the wait is at least the exponential term.
        assert!(backoff_ms(25, 0, None, 0) >= 25);
        assert!(backoff_ms(25, 3, None, 0) >= 200);
        // Retry-After of 2s floors a small exponential wait at 2000ms.
        assert!(backoff_ms(25, 0, Some(2), 0) >= 2000);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for seq in 0..50u64 {
            for attempt in 0..4u32 {
                let j = jitter_ms(seq, attempt, 100);
                assert!(j < 100);
                assert_eq!(j, jitter_ms(seq, attempt, 100), "replay must agree");
            }
        }
        // The hash actually spreads: not every (seq, attempt) collides.
        let distinct: std::collections::BTreeSet<u64> =
            (0..50).map(|s| jitter_ms(s, 0, 1000)).collect();
        assert!(distinct.len() > 10);
    }
}
