//! serve_soak — a chaos-soak SLO gate for `memhierd`.
//!
//! Runs a fixed-duration, mixed, keep-alive workload against a live
//! daemon (typically started with `--faults
//! serve:panic:nth=50,serve:delay:ms=100:rate=0.05`) and then **judges**
//! the run against a service-level objective instead of merely printing
//! latencies.  Exit status 0 means the SLO held; 1 means it was
//! violated; 2 means the harness itself could not run.
//!
//! The workload mix is deterministic — a splitmix64 hash of
//! `(client, seq)` picks each request, so the same flags replay the same
//! byte stream:
//!
//! | share | request | exercises |
//! |---|---|---|
//! | 70% | `POST /v1/model`, one of 8 warmed configs | event-loop cache hits (and stale-while-revalidate once `--cache-ttl-ms` ages them) |
//! | 15% | `POST /v1/model`, a distinct inline cluster spec | worker-pool misses — the jobs that consume fault indices |
//! | 10% | `GET /healthz` | the probe fast path |
//! |  5% | `GET /metrics` | the metrics fast path |
//!
//! The SLO, checked after the clock runs out:
//!
//! * **zero non-injected 5xx** — a 5xx whose body does not name an
//!   injected fault (and is not the deadline 503 that injected delays
//!   legitimately cause) is a real server bug;
//! * **zero dropped in-flight requests** — no connect errors, no
//!   premature closes, no other transport errors, even while injected
//!   panics kill and respawn workers mid-run;
//! * **bounded hit latency** — p99 over cache-hit/stale responses stays
//!   under `--hit-p99-max-ms` (hits are answered on the event loop and
//!   must not queue behind slow misses);
//! * **the chaos actually ran** — with `--require-respawns N` the
//!   server's `/metrics` must report at least N worker respawns, proving
//!   the panics fired and were healed rather than never injected.
//!
//! `--json` emits the full [`SoakReport`] (typed, serde-serialized) for
//! the CI artifact; the human summary prints the same numbers.

use memhier_bench::{quantile_us, FlagParser, LoadClient, LoadError};
use memhier_core::machine::MachineSpec;
use memhier_core::platform::ClusterSpec;
use serde::Serialize;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request classes of the deterministic mix.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    /// One of the 8 warmed `/v1/model` bodies: a cache hit (or stale).
    Hot,
    /// A distinct inline-spec `/v1/model` body: a worker-bound miss.
    Miss,
    /// `GET /healthz`.
    Health,
    /// `GET /metrics`.
    Metrics,
}

/// splitmix64: deterministic, well-spread, no global RNG.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The mix decision for request `seq` of `client`.
fn pick(client: u64, seq: u64) -> (Class, u64) {
    let h = mix64(client << 32 | (seq & 0xffff_ffff));
    let class = match h % 100 {
        0..=69 => Class::Hot,
        70..=84 => Class::Miss,
        85..=94 => Class::Health,
        _ => Class::Metrics,
    };
    (class, h)
}

/// One of the 8 hot `/v1/model` bodies (named configs, all warmed
/// before the clock starts).
fn hot_body(h: u64) -> String {
    format!(
        r#"{{"config": "C{}", "workload": "FFT"}}"#,
        (h / 100) % 8 + 1
    )
}

/// A `/v1/model` body no other soak request shares: an inline cluster
/// spec whose memory size encodes `(client, seq)`.  Inline specs bypass
/// the named-config table, so each one is a genuine cache miss bound for
/// the worker pool — these are the jobs injected faults act on.
fn miss_body(client: u64, seq: u64) -> Result<String, String> {
    let memory_mb = 33 + (client * 61 + seq) % 4096;
    let spec = ClusterSpec::single(MachineSpec::new(1, 128, memory_mb, 200.0));
    let config = serde_json::to_value(&spec).map_err(|e| e.to_string())?;
    let body = serde_json::json!({"config": config, "workload": "LU"});
    serde_json::to_string(&body).map_err(|e| e.to_string())
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: serve_soak\r\n\r\n").into_bytes()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: serve_soak\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Per-thread outcome tally; summed into the [`SoakReport`].
#[derive(Default)]
struct Tally {
    requests: u64,
    ok: u64,
    shed_429: u64,
    timeout_408: u64,
    deadline_503: u64,
    injected_5xx: u64,
    other_5xx: u64,
    other_4xx: u64,
    connect_errors: u64,
    premature_closes: u64,
    transport_errors: u64,
    /// Latencies (µs) of hot-class responses the cache answered
    /// (`X-Cache: hit` or `stale` — i.e. served on the event loop).
    hit_latencies_us: Vec<u64>,
    /// Up to 3 sample bodies of non-injected 5xx, for the report.
    failure_samples: Vec<String>,
}

impl Tally {
    fn record(&mut self, class: Class, reply: &memhier_bench::Reply) {
        self.requests += 1;
        let body = String::from_utf8_lossy(&reply.body);
        match reply.status {
            200..=299 => {
                self.ok += 1;
                if class == Class::Hot
                    && reply
                        .header("x-cache")
                        .is_some_and(|v| v == "hit" || v == "stale")
                {
                    self.hit_latencies_us
                        .push(reply.latency.as_micros().min(u128::from(u64::MAX)) as u64);
                }
            }
            408 => self.timeout_408 += 1,
            429 => self.shed_429 += 1,
            503 if body.contains("deadline exceeded") => self.deadline_503 += 1,
            500..=599 if body.contains("injected fault") => self.injected_5xx += 1,
            500..=599 => {
                self.other_5xx += 1;
                if self.failure_samples.len() < 3 {
                    self.failure_samples.push(format!(
                        "{}: {}",
                        reply.status,
                        body.chars().take(200).collect::<String>()
                    ));
                }
            }
            _ => self.other_4xx += 1,
        }
    }

    fn record_error(&mut self, e: &LoadError) {
        self.requests += 1;
        match e {
            LoadError::Connect(_) => self.connect_errors += 1,
            LoadError::PrematureClose => self.premature_closes += 1,
            LoadError::Transport(_) | LoadError::Malformed(_) => self.transport_errors += 1,
        }
    }

    fn absorb(&mut self, other: Tally) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.shed_429 += other.shed_429;
        self.timeout_408 += other.timeout_408;
        self.deadline_503 += other.deadline_503;
        self.injected_5xx += other.injected_5xx;
        self.other_5xx += other.other_5xx;
        self.other_4xx += other.other_4xx;
        self.connect_errors += other.connect_errors;
        self.premature_closes += other.premature_closes;
        self.transport_errors += other.transport_errors;
        self.hit_latencies_us.extend(other.hit_latencies_us);
        for s in other.failure_samples {
            if self.failure_samples.len() < 3 {
                self.failure_samples.push(s);
            }
        }
    }
}

/// Worker-supervision counters scraped from the server's `/metrics`
/// after the soak.
#[derive(Serialize)]
struct ServerCounters {
    /// Workers the supervisor replaced after a panic.
    worker_respawns: u64,
    /// In-flight jobs requeued from a dying worker.
    requeued_jobs: u64,
}

/// The SLO verdict.
#[derive(Serialize)]
struct SloVerdict {
    /// Did every objective hold?
    pass: bool,
    /// The `--hit-p99-max-ms` bound the run was judged against.
    hit_p99_max_ms: u64,
    /// The `--require-respawns` floor the run was judged against.
    require_respawns: u64,
    /// One line per violated objective (empty on pass).
    violations: Vec<String>,
}

/// The machine-readable soak result (`--json`).
#[derive(Serialize)]
struct SoakReport {
    /// Target daemon address.
    addr: String,
    /// Client threads (one keep-alive connection each).
    clients: u64,
    /// Wall-clock seconds the mixed load actually ran.
    elapsed_seconds: f64,
    /// Total exchanges attempted (including transport failures).
    requests: u64,
    /// Throughput over the timed window, requests per second.
    throughput_rps: f64,
    /// 2xx responses.
    ok: u64,
    /// 429 + Retry-After sheds (graceful degradation, not a violation).
    shed_429: u64,
    /// 408 slow-request timeouts.
    timeout_408: u64,
    /// 503 deadline-exceeded responses (caused by injected delays).
    deadline_503: u64,
    /// 5xx whose body names an injected fault.
    injected_5xx: u64,
    /// 5xx with no injected-fault marker — real failures; SLO-gated to 0.
    other_5xx: u64,
    /// Other 4xx responses.
    other_4xx: u64,
    /// TCP connects that failed; SLO-gated to 0.
    connect_errors: u64,
    /// Connections dropped mid-response; SLO-gated to 0.
    premature_closes: u64,
    /// Other transport errors; SLO-gated to 0.
    transport_errors: u64,
    /// Idle-keep-alive races transparently retried (not errors).
    reconnects: u64,
    /// Cache-answered hot responses sampled for the latency bound.
    hit_samples: u64,
    /// p50 over cache-hit latencies, microseconds.
    hit_p50_us: u64,
    /// p99 over cache-hit latencies, microseconds — SLO-gated.
    hit_p99_us: u64,
    /// Sample bodies of non-injected 5xx (at most 3), for debugging.
    failure_samples: Vec<String>,
    /// Post-run supervision counters from `/metrics` (None if the
    /// scrape failed — itself an SLO violation).
    server: Option<ServerCounters>,
    /// The verdict.
    slo: SloVerdict,
}

/// Scrape `worker_respawns` / `requeued_jobs` from `GET /metrics`.
fn scrape_counters(addr: &str) -> Result<ServerCounters, String> {
    let mut client = LoadClient::new(addr.to_string(), Duration::from_secs(10));
    let reply = client
        .exchange(&get("/metrics"))
        .map_err(|e| e.to_string())?;
    if reply.status != 200 {
        return Err(format!("/metrics answered {}", reply.status));
    }
    let text = std::str::from_utf8(&reply.body).map_err(|e| format!("/metrics body: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("/metrics body: {e}"))?;
    let counter = |k: &str| doc.get(k).and_then(|v| v.as_u64());
    Ok(ServerCounters {
        worker_respawns: counter("worker_respawns")
            .ok_or_else(|| "no worker_respawns counter".to_string())?,
        requeued_jobs: counter("requeued_jobs")
            .ok_or_else(|| "no requeued_jobs counter".to_string())?,
    })
}

fn main() {
    let m = FlagParser::new("serve_soak", "chaos-soak SLO gate for memhierd")
        .option("--addr", "HOST:PORT", "memhierd address (required)")
        .option("--clients", "N", "concurrent client threads (default 4)")
        .option("--duration-s", "S", "soak length in seconds (default 30)")
        .option(
            "--hit-p99-max-ms",
            "MS",
            "SLO bound on cache-hit p99 latency (default 250)",
        )
        .option(
            "--require-respawns",
            "N",
            "SLO floor on /metrics worker_respawns (default 0)",
        )
        .switch("--json", "emit the full SoakReport as JSON")
        .parse_env_or_exit();

    match run(&m) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("serve_soak: {e}");
            std::process::exit(2);
        }
    }
}

/// Run the soak; `Ok(true)` iff the SLO held.
fn run(m: &memhier_bench::Matches) -> Result<bool, String> {
    let addr = m
        .get("--addr")
        .ok_or_else(|| "--addr required".to_string())?
        .to_string();
    let clients: u64 = m.parsed("--clients")?.unwrap_or(4).max(1);
    let duration_s: u64 = m.parsed("--duration-s")?.unwrap_or(30).max(1);
    let hit_p99_max_ms: u64 = m.parsed("--hit-p99-max-ms")?.unwrap_or(250).max(1);
    let require_respawns: u64 = m.parsed("--require-respawns")?.unwrap_or(0);

    // Warm the 8 hot bodies so the timed window measures cache hits,
    // not cold simulation (the first soak hit would otherwise be a miss).
    {
        let mut warm = LoadClient::new(addr.clone(), Duration::from_secs(60));
        for h in 0..8u64 {
            let reply = warm
                .exchange(&post("/v1/model", &hot_body(h * 100)))
                .map_err(|e| format!("warm-up: {e}"))?;
            if reply.status != 200 {
                return Err(format!("warm-up: C{} answered {}", h + 1, reply.status));
            }
        }
    }

    let stop_at = Arc::new(Instant::now() + Duration::from_secs(duration_s));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client_id| {
            let (addr, stop_at) = (addr.clone(), Arc::clone(&stop_at));
            std::thread::spawn(move || -> Result<(Tally, u64), String> {
                let mut client = LoadClient::new(addr, Duration::from_secs(60));
                let mut tally = Tally::default();
                let mut seq = 0u64;
                while Instant::now() < *stop_at {
                    let (class, h) = pick(client_id, seq);
                    let wire = match class {
                        Class::Hot => post("/v1/model", &hot_body(h)),
                        Class::Miss => post("/v1/model", &miss_body(client_id, seq)?),
                        Class::Health => get("/healthz"),
                        Class::Metrics => get("/metrics"),
                    };
                    match client.exchange(&wire) {
                        Ok(reply) => tally.record(class, &reply),
                        Err(e) => tally.record_error(&e),
                    }
                    seq += 1;
                }
                Ok((tally, client.reconnects()))
            })
        })
        .collect();

    let mut tally = Tally::default();
    let mut reconnects = 0u64;
    for h in handles {
        let (t, r) = h.join().map_err(|_| "client thread panicked")??;
        tally.absorb(t);
        reconnects += r;
    }
    let elapsed = started.elapsed();

    tally.hit_latencies_us.sort_unstable();
    let hit_p50_us = quantile_us(&tally.hit_latencies_us, 0.50);
    let hit_p99_us = quantile_us(&tally.hit_latencies_us, 0.99);

    let server = scrape_counters(&addr);

    // The verdict: every objective that fails contributes one line.
    let mut violations = Vec::new();
    if tally.requests == 0 {
        violations.push("no requests completed within the soak window".to_string());
    }
    if tally.other_5xx > 0 {
        violations.push(format!(
            "{} non-injected 5xx responses (SLO: 0)",
            tally.other_5xx
        ));
    }
    if tally.connect_errors > 0 {
        violations.push(format!("{} connect errors (SLO: 0)", tally.connect_errors));
    }
    if tally.premature_closes > 0 {
        violations.push(format!(
            "{} connections dropped mid-response (SLO: 0)",
            tally.premature_closes
        ));
    }
    if tally.transport_errors > 0 {
        violations.push(format!(
            "{} transport errors (SLO: 0)",
            tally.transport_errors
        ));
    }
    if tally.hit_latencies_us.is_empty() {
        violations.push("no cache-hit samples — the hot path never ran".to_string());
    } else if hit_p99_us > hit_p99_max_ms * 1000 {
        violations.push(format!(
            "cache-hit p99 {:.1} ms exceeds the {hit_p99_max_ms} ms bound",
            hit_p99_us as f64 / 1e3
        ));
    }
    match &server {
        Ok(c) if c.worker_respawns < require_respawns => violations.push(format!(
            "only {} worker respawns (SLO: at least {require_respawns} — the chaos never fired?)",
            c.worker_respawns
        )),
        Ok(_) => {}
        Err(e) => violations.push(format!("post-run /metrics scrape failed: {e}")),
    }

    let report = SoakReport {
        addr,
        clients,
        elapsed_seconds: elapsed.as_secs_f64(),
        requests: tally.requests,
        throughput_rps: tally.requests as f64 / elapsed.as_secs_f64().max(1e-9),
        ok: tally.ok,
        shed_429: tally.shed_429,
        timeout_408: tally.timeout_408,
        deadline_503: tally.deadline_503,
        injected_5xx: tally.injected_5xx,
        other_5xx: tally.other_5xx,
        other_4xx: tally.other_4xx,
        connect_errors: tally.connect_errors,
        premature_closes: tally.premature_closes,
        transport_errors: tally.transport_errors,
        reconnects,
        hit_samples: tally.hit_latencies_us.len() as u64,
        hit_p50_us,
        hit_p99_us,
        failure_samples: tally.failure_samples,
        server: server.ok(),
        slo: SloVerdict {
            pass: violations.is_empty(),
            hit_p99_max_ms,
            require_respawns,
            violations,
        },
    };

    let mut stdout = std::io::stdout();
    if m.has("--json") {
        let _ = writeln!(
            stdout,
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let _ = writeln!(
            stdout,
            "soak: {} requests over {} clients in {:.1} s ({:.1} req/s)",
            report.requests, report.clients, report.elapsed_seconds, report.throughput_rps
        );
        let _ = writeln!(
            stdout,
            "  2xx {}  429 {}  408 {}  503-deadline {}  injected-5xx {}  other-5xx {}",
            report.ok,
            report.shed_429,
            report.timeout_408,
            report.deadline_503,
            report.injected_5xx,
            report.other_5xx
        );
        let _ = writeln!(
            stdout,
            "  transport: connect {}  premature-close {}  other {}  (reconnects {})",
            report.connect_errors,
            report.premature_closes,
            report.transport_errors,
            report.reconnects
        );
        let _ = writeln!(
            stdout,
            "  cache-hit latency over {} samples: p50 {:.2} ms  p99 {:.2} ms (bound {} ms)",
            report.hit_samples,
            report.hit_p50_us as f64 / 1e3,
            report.hit_p99_us as f64 / 1e3,
            report.slo.hit_p99_max_ms
        );
        if let Some(c) = &report.server {
            let _ = writeln!(
                stdout,
                "  server: {} worker respawns, {} requeued jobs",
                c.worker_respawns, c.requeued_jobs
            );
        }
        if report.slo.pass {
            let _ = writeln!(stdout, "  SLO: PASS");
        } else {
            let _ = writeln!(stdout, "  SLO: FAIL");
            for v in &report.slo.violations {
                let _ = writeln!(stdout, "    - {v}");
            }
        }
    }
    Ok(report.slo.pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_covers_every_class() {
        let mut hot = 0;
        let mut miss = 0;
        let mut health = 0;
        let mut metrics = 0;
        for client in 0..4u64 {
            for seq in 0..500u64 {
                let (class, h) = pick(client, seq);
                assert_eq!(h, pick(client, seq).1, "replay must agree");
                match class {
                    Class::Hot => hot += 1,
                    Class::Miss => miss += 1,
                    Class::Health => health += 1,
                    Class::Metrics => metrics += 1,
                }
            }
        }
        // Shares land near 70/15/10/5 over 2000 draws.
        assert!(hot > 1200 && miss > 150 && health > 100 && metrics > 40);
    }

    #[test]
    fn hot_bodies_cycle_the_eight_named_configs() {
        let configs: std::collections::BTreeSet<String> = (0..800u64).map(hot_body).collect();
        assert_eq!(configs.len(), 8);
        for c in &configs {
            assert!(c.contains(r#""workload": "FFT""#));
        }
    }

    #[test]
    fn miss_bodies_are_distinct_inline_specs() {
        let a = miss_body(0, 1).unwrap();
        let b = miss_body(0, 2).unwrap();
        let c = miss_body(1, 1).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Inline specs carry the machine object, not a config name.
        assert!(a.contains("machine"), "{a}");
        assert!(a.contains("memory_bytes"), "{a}");
    }
}
