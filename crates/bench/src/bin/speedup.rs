//! E6 — the model-vs-simulation cost claim (§5.3.3).
use memhier_bench::runner::Sizes;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    memhier_bench::experiments::speedup(Sizes::from_args(&args)).print();
}
