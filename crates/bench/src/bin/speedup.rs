//! E6 — the model-vs-simulation cost claim (§5.3.3).
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new("speedup", "E6: the model-vs-simulation cost claim")
        .sweep_flags()
        .parse_env_or_exit();
    memhier_bench::experiments::speedup(m.sizes()).print();
}
