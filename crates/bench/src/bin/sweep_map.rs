//! E13 — optimal-platform map over the (ρ, β) workload space.
//! Usage: sweep_map [BUDGET] [--jobs N]  (also honours MEMHIER_JOBS;
//! the optimizer's candidate scan parallelizes across the pool).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    memhier_bench::sweeprun::configure_from_args(&args);
    let budget = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000.0);
    println!("{}", memhier_bench::experiments::sweep_map(budget));
}
