//! E13 — optimal-platform map over the (ρ, β) workload space.
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "sweep_map",
        "E13: optimal-platform map over the workload space",
    )
    .sweep_flags()
    .positionals("[BUDGET]")
    .parse_env_or_exit();
    let budget = m
        .positionals()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000.0);
    println!("{}", memhier_bench::experiments::sweep_map(budget));
}
