//! E13 — optimal-platform map over the (ρ, β) workload space.
fn main() {
    let budget = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000.0);
    println!("{}", memhier_bench::experiments::sweep_map(budget));
}
