//! E1 — regenerate the paper's Table 1.
use memhier_bench::FlagParser;
fn main() {
    FlagParser::new("table1", "E1: regenerate the paper's Table 1").parse_env_or_exit();
    memhier_bench::experiments::table1().print();
}
