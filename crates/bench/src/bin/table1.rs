//! E1 — regenerate the paper's Table 1.
fn main() {
    memhier_bench::experiments::table1().print();
}
