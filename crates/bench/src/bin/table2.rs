//! E2 — regenerate Table 2 (α, β, ρ per program).
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "table2",
        "E2: regenerate Table 2 (alpha, beta, rho per program)",
    )
    .sweep_flags()
    .switch("--tpcc", "include the synthetic TPC-C row")
    .parse_env_or_exit();
    let (t, _) = memhier_bench::experiments::table2(m.sizes(), m.has("--tpcc"));
    t.print();
}
