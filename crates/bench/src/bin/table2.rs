//! E2 — regenerate Table 2 (α, β, ρ per program).
//! Flags: --paper / --small (default: medium sizes), --tpcc, --jobs N.
use memhier_bench::runner::Sizes;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    memhier_bench::sweeprun::configure_from_args(&args);
    let sizes = Sizes::from_args(&args);
    let tpcc = args.iter().any(|a| a == "--tpcc");
    let (t, _) = memhier_bench::experiments::table2(sizes, tpcc);
    t.print();
}
