//! E15 — network utilization: model vs simulator.
use memhier_bench::FlagParser;
fn main() {
    let m = FlagParser::new(
        "utilization",
        "E15: network utilization, model vs simulator",
    )
    .sweep_flags()
    .parse_env_or_exit();
    let sizes = m.sizes();
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    memhier_bench::experiments::utilization(sizes, &chars).print();
}
