//! E15 — network utilization: model vs simulator.
use memhier_bench::runner::Sizes;
fn main() {
    let args: Vec<String> = std::env::args().collect();
    memhier_bench::sweeprun::configure_from_args(&args);
    let sizes = Sizes::from_args(&args);
    let (_, chars) = memhier_bench::experiments::table2(sizes, false);
    memhier_bench::experiments::utilization(sizes, &chars).print();
}
