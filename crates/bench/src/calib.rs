//! Model-to-simulator calibration — the generalization of §5.3.2's
//! "through experiments, we find that by adjusting the average remote
//! memory access rate by a factor of 12.4%, the differences between
//! modeled results and simulated results for all applications are below
//! 10%".
//!
//! The paper picked **one global constant** by comparing against its
//! simulators; we do the same by grid-searching the two rate knobs the
//! model exposes (`coherence_adjustment` for the remote level,
//! `disk_rate_scale` for the paging level) against a set of calibration
//! points, then freeze them for the full comparison.

use memhier_core::locality::WorkloadParams;
use memhier_core::model::AnalyticModel;
use memhier_core::platform::ClusterSpec;

/// One calibration observation: a configuration, the workload's measured
/// parameters, and the simulated `E(Instr)` in seconds.
#[derive(Debug, Clone)]
pub struct CalibPoint {
    /// The platform.
    pub cluster: ClusterSpec,
    /// Measured workload parameters.
    pub workload: WorkloadParams,
    /// Simulated `E(Instr)`, seconds.
    pub sim_seconds: f64,
}

/// Mean relative error of `model` against the points.
pub fn mean_relative_error(model: &AnalyticModel, points: &[CalibPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for p in points {
        let e = model.evaluate_or_inf(&p.cluster, &p.workload);
        if !e.is_finite() {
            return f64::INFINITY;
        }
        acc += (e - p.sim_seconds).abs() / p.sim_seconds;
    }
    acc / points.len() as f64
}

/// Grid-search the two rate knobs; returns the calibrated model and its
/// mean relative error.
pub fn calibrate(base: &AnalyticModel, points: &[CalibPoint]) -> (AnalyticModel, f64) {
    let mut best = base.clone();
    let mut best_err = mean_relative_error(base, points);
    // Coherence adjustment: the effective remote-rate multiplier is
    // `1 + coh`.  Spanning two orders of magnitude in both directions
    // covers workloads whose coherence traffic the capacity tail wildly
    // under- or over-states.
    let coh_grid: Vec<f64> = [
        -0.95, -0.9, -0.8, -0.6, -0.4, -0.2, 0.0, 0.124, 0.3, 0.6, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
        64.0,
    ]
    .to_vec();
    // Disk rate: 0 (resident workloads never page) to the raw tail.
    let disk_grid: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
    // Barrier skew: 0 (deterministic phases) to the full exponential
    // order-statistics wait.
    let barrier_grid: Vec<f64> = (0..=4).map(|i| i as f64 * 0.25).collect();
    for &coh in &coh_grid {
        for &disk in &disk_grid {
            for &bar in &barrier_grid {
                let mut m = base.clone();
                m.coherence_adjustment = coh;
                m.disk_rate_scale = disk;
                m.barrier_scale = bar;
                let err = mean_relative_error(&m, points);
                if err < best_err {
                    best_err = err;
                    best = m;
                }
            }
        }
    }
    (best, best_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::{MachineSpec, NetworkKind};

    fn point(coh: f64, disk: f64) -> Vec<CalibPoint> {
        // Synthesize "sim" numbers from a known model, then check the
        // search recovers knobs with at-least-as-good error.
        let truth = AnalyticModel {
            coherence_adjustment: coh,
            disk_rate_scale: disk,
            ..AnalyticModel::default()
        };
        let w = WorkloadParams::new("FFT", 1.21, 103.26, 0.20).unwrap();
        [
            ClusterSpec::cluster(
                MachineSpec::new(1, 256, 64, 200.0),
                4,
                NetworkKind::Ethernet100,
            ),
            ClusterSpec::cluster(MachineSpec::new(1, 512, 64, 200.0), 4, NetworkKind::Atm155),
            ClusterSpec::cluster(
                MachineSpec::new(1, 256, 32, 200.0),
                2,
                NetworkKind::Ethernet10,
            ),
        ]
        .into_iter()
        .map(|cluster| CalibPoint {
            sim_seconds: truth.evaluate_or_inf(&cluster, &w),
            cluster,
            workload: w.clone(),
        })
        .collect()
    }

    #[test]
    fn recovers_known_knobs() {
        // Truth values chosen on the search grid, so recovery is exact.
        let pts = point(0.6, 0.2);
        let (m, err) = calibrate(&AnalyticModel::default(), &pts);
        assert!(err < 1e-9, "err {err}");
        assert!(
            (m.coherence_adjustment - 0.6).abs() < 1e-12,
            "coh {}",
            m.coherence_adjustment
        );
        assert!(
            (m.disk_rate_scale - 0.2).abs() < 1e-12,
            "disk {}",
            m.disk_rate_scale
        );
    }

    #[test]
    fn never_worse_than_base() {
        let pts = point(1.2, 0.0);
        let base = AnalyticModel::default();
        let base_err = mean_relative_error(&base, &pts);
        let (_, err) = calibrate(&base, &pts);
        assert!(err <= base_err + 1e-12);
    }

    #[test]
    fn empty_points_are_harmless() {
        let (m, err) = calibrate(&AnalyticModel::default(), &[]);
        assert_eq!(err, 0.0);
        assert_eq!(
            m.coherence_adjustment,
            AnalyticModel::default().coherence_adjustment
        );
    }
}
