//! One function per paper artifact (DESIGN.md experiment index E1–E11).
//!
//! Every function returns (and its binary prints) a [`Table`] and saves a
//! JSON artifact under `target/experiments/` for EXPERIMENTS.md.

use crate::calib::{calibrate, CalibPoint};
use crate::runner::{simulate_workload, Characterization, Sizes};
use crate::sweeprun::{characterize_many, run_sweep, SweepPlan};
use crate::tables::{fmt_pct, fmt_seconds, save_json, Table};
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::model::AnalyticModel;
use memhier_core::params::{self, configs};
use memhier_core::platform::{ClusterSpec, PlatformKind};
use memhier_cost::{optimize, plan_upgrade, recommend, CandidateSpace, PriceTable};
use memhier_workloads::registry::WorkloadKind;
use serde::Serialize;

/// Stack-distance granularity for all characterizations (one cache line).
pub const GRANULARITY: u64 = 64;

/// E1 — Table 1: platform ↔ additional memory-hierarchy levels.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: classifying the three parallel systems by the cluster memory hierarchy",
        &[
            "Parallel system",
            "Additional memory levels",
            "Hierarchy length k",
        ],
    );
    for p in [
        PlatformKind::Smp,
        PlatformKind::ClusterOfWorkstations,
        PlatformKind::ClusterOfSmps,
    ] {
        t.row(vec![
            p.to_string(),
            p.additional_levels().to_string(),
            p.hierarchy_length().to_string(),
        ]);
    }
    t
}

/// E2 — Table 2: measured `(α, β, ρ)` of the four kernels (plus TPC-C),
/// side by side with the paper's published values.
pub fn table2(sizes: Sizes, include_tpcc: bool) -> (Table, Vec<Characterization>) {
    let paper_vals = [
        ("FFT", 1.21, 103.26, 0.20),
        ("LU", 1.30, 90.27, 0.31),
        ("Radix", 1.14, 120.84, 0.37),
        ("EDGE", 1.71, 85.03, 0.45),
        ("TPC-C", 1.73, 1222.66, 0.36),
    ];
    let mut kinds = WorkloadKind::PAPER.to_vec();
    if include_tpcc {
        kinds.push(WorkloadKind::Tpcc);
    }
    let mut t = Table::new(
        "Table 2: program characteristics (ours vs paper)",
        &[
            "Program",
            "alpha",
            "beta",
            "rho",
            "R^2",
            "refs",
            "alpha(paper)",
            "beta(paper)",
            "rho(paper)",
        ],
    );
    // Fan the per-program characterizations out over the sweep pool; the
    // process-wide cache means re-running table2 (as every figure binary
    // does) analyzes each address stream only once.
    let chars = characterize_many(sizes, &kinds, GRANULARITY);
    for c in &chars {
        let p = paper_vals
            .iter()
            .find(|v| v.0 == c.name)
            .expect("known name");
        t.row(vec![
            c.name.clone(),
            format!("{:.2}", c.alpha),
            format!("{:.1}", c.beta),
            format!("{:.2}", c.rho),
            format!("{:.3}", c.r_squared),
            c.refs.to_string(),
            format!("{:.2}", p.1),
            format!("{:.1}", p.2),
            format!("{:.2}", p.3),
        ]);
    }
    save_json("table2", &chars);
    (t, chars)
}

/// One row of a model-vs-simulation figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Configuration name (C1–C15).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Simulated `E(Instr)`, seconds.
    pub sim_seconds: f64,
    /// Model with the paper's published knobs (12.4%, raw disk tail).
    pub model_paper_seconds: f64,
    /// Model after §5.3.2-style calibration.
    pub model_calibrated_seconds: f64,
    /// Relative difference of the calibrated model vs simulation.
    pub diff_calibrated: f64,
    /// Simulated node-0 bus utilization (§5.3.1's saturation diagnostic).
    pub bus_utilization: f64,
    /// Simulated interconnect utilization (0 for a single SMP).
    pub network_utilization: f64,
}

/// Shared engine of E3/E4/E5: simulate every (config × kernel), evaluate
/// the model with measured parameters, calibrate the rate knobs on these
/// points, and report.
pub fn figure_experiment(
    figure_name: &str,
    title: &str,
    cluster_set: &[ClusterSpec],
    sizes: Sizes,
    chars: &[Characterization],
) -> (Table, Vec<FigureRow>, AnalyticModel) {
    let base = AnalyticModel::default();
    // 1. Simulate everything — the full (config × kernel) grid fanned out
    //    over the sweep pool — and gather comparison points.  `run_sweep`
    //    returns results in grid order (cluster-major, matching the old
    //    serial loops), so the rows below are identical at any `--jobs`.
    let kinds: Vec<WorkloadKind> = chars.iter().map(|ch| kind_of(&ch.name)).collect();
    let plan = SweepPlan::new(figure_name, sizes).cross(cluster_set, &kinds);
    let results = run_sweep(&plan);
    let points: Vec<CalibPoint> = results
        .iter()
        .map(|r| {
            let ch = &chars[r.index % chars.len()];
            debug_assert_eq!(kind_of(&ch.name), r.point.kind);
            CalibPoint {
                cluster: r.point.cluster.clone(),
                workload: ch.to_model_params(),
                sim_seconds: r.run.report.e_instr_seconds,
            }
        })
        .collect();
    // 2. §5.3.2 methodology: "through experiments ... by adjusting the
    //    average remote memory access rate ... the differences ... are
    //    below 10%.  Figure 3 presents the results with such adjustments"
    //    — i.e. the paper tunes its rate adjustment on the reported
    //    configuration set itself.  We do the same, one adjustment per
    //    workload (our coherence-accurate simulator spreads the apps too
    //    far apart for the paper's single global constant; EXPERIMENTS.md
    //    discusses the residual).
    let cal_cfg_name = cluster_set[0].name.clone().unwrap_or_default();
    let mut cal_by_wl: std::collections::HashMap<String, AnalyticModel> =
        std::collections::HashMap::new();
    for ch in chars {
        let cal_points: Vec<CalibPoint> = points
            .iter()
            .filter(|p| p.workload.name == ch.name)
            .cloned()
            .collect();
        let (m, _) = calibrate(&base, &cal_points);
        cal_by_wl.insert(ch.name.clone(), m);
    }
    // 3. Assemble rows.
    let mut t = Table::new(
        title,
        &[
            "Config",
            "App",
            "Sim E(Instr)",
            "Model(paper)",
            "diff",
            "Model(calib)",
            "diff",
            "bus u",
            "net u",
        ],
    );
    let mut rows = Vec::new();
    let mut held_out_err = 0.0;
    let mut held_out_n = 0usize;
    for (p, r) in points.iter().zip(results.iter()) {
        let cal = &cal_by_wl[&p.workload.name];
        let m_paper = base.evaluate_or_inf(&p.cluster, &p.workload);
        let m_cal = cal.evaluate_or_inf(&p.cluster, &p.workload);
        let d_paper = (m_paper - p.sim_seconds) / p.sim_seconds;
        let d_cal = (m_cal - p.sim_seconds) / p.sim_seconds;
        let cfg_name = p.cluster.name.clone().unwrap_or_default();
        let bus_u = r.run.report.bus_utilization(0);
        let net_u = r.run.report.network_utilization();
        held_out_err += d_cal.abs();
        held_out_n += 1;
        t.row(vec![
            cfg_name,
            p.workload.name.clone(),
            fmt_seconds(p.sim_seconds),
            fmt_seconds(m_paper),
            fmt_pct(d_paper),
            fmt_seconds(m_cal),
            fmt_pct(d_cal),
            format!("{bus_u:.3}"),
            format!("{net_u:.3}"),
        ]);
        rows.push(FigureRow {
            config: p.cluster.name.clone().unwrap_or_default(),
            workload: p.workload.name.clone(),
            sim_seconds: p.sim_seconds,
            model_paper_seconds: m_paper,
            model_calibrated_seconds: m_cal,
            diff_calibrated: d_cal,
            bus_utilization: bus_u,
            network_utilization: net_u,
        });
    }
    let knobs = chars
        .iter()
        .map(|ch| {
            let m = &cal_by_wl[&ch.name];
            format!("{}:coh={:+.0}%", ch.name, m.coherence_adjustment * 100.0)
        })
        .collect::<Vec<_>>()
        .join(" ");
    let _ = cal_cfg_name;
    t.row(vec![
        "".into(),
        "".into(),
        "(per-workload rate adjustment)".into(),
        "".into(),
        "".into(),
        knobs,
        format!(
            "mean |diff| {}",
            fmt_pct(held_out_err / held_out_n.max(1) as f64)
        ),
        "".into(),
        "".into(),
    ]);
    save_json(figure_name, &rows);
    // Return the first workload's calibrated model (diagnostics).
    let cal = cal_by_wl.into_values().next().unwrap_or(base);
    (t, rows, cal)
}

fn kind_of(name: &str) -> WorkloadKind {
    match name {
        "FFT" => WorkloadKind::Fft,
        "LU" => WorkloadKind::Lu,
        "Radix" => WorkloadKind::Radix,
        "EDGE" => WorkloadKind::Edge,
        "TPC-C" => WorkloadKind::Tpcc,
        other => panic!("unknown workload {other}"),
    }
}

/// E3 — Figure 2 (+ Table 3 configs): SMPs C1–C6.
pub fn fig2_smp(sizes: Sizes, chars: &[Characterization]) -> (Table, Vec<FigureRow>) {
    let (t, rows, _) = figure_experiment(
        "fig2_smp",
        "Figure 2: modeled vs simulated E(Instr) on SMPs C1-C6",
        &configs::smp_configs(),
        sizes,
        chars,
    );
    (t, rows)
}

/// E4 — Figure 3 (+ Table 4 configs): clusters of workstations C7–C11.
pub fn fig3_cow(sizes: Sizes, chars: &[Characterization]) -> (Table, Vec<FigureRow>) {
    let (t, rows, _) = figure_experiment(
        "fig3_cow",
        "Figure 3: modeled vs simulated E(Instr) on clusters of workstations C7-C11",
        &configs::cow_configs(),
        sizes,
        chars,
    );
    (t, rows)
}

/// E5 — Figure 4 (+ Table 5 configs): clusters of SMPs C12–C15.
pub fn fig4_clump(sizes: Sizes, chars: &[Characterization]) -> (Table, Vec<FigureRow>) {
    let (t, rows, _) = figure_experiment(
        "fig4_clump",
        "Figure 4: modeled vs simulated E(Instr) on clusters of SMPs C12-C15",
        &configs::clump_configs(),
        sizes,
        chars,
    );
    (t, rows)
}

/// §5.3.1's coherence-traffic aside: the share of bus traffic caused by
/// the coherence protocol on an SMP (paper: FFT 6.3%, LU 4.7%, Radix
/// 7.2%, EDGE 2.1%).
pub fn coherence_traffic(sizes: Sizes) -> Table {
    let paper = [("FFT", 6.3), ("LU", 4.7), ("Radix", 7.2), ("EDGE", 2.1)];
    let cfg = configs::c5();
    let mut t = Table::new(
        "Coherence share of SMP bus traffic (C5)",
        &["App", "ours", "paper"],
    );
    let mut artifact = Vec::new();
    let plan = SweepPlan::new("coherence_traffic", sizes)
        .cross(std::slice::from_ref(&cfg), &WorkloadKind::PAPER);
    for r in run_sweep(&plan) {
        let frac = r.run.report.traffic.coherence_fraction();
        let name = r.point.kind.name();
        let p = paper.iter().find(|x| x.0 == name).unwrap().1;
        t.row(vec![
            name.to_string(),
            format!("{:.1}%", frac * 100.0),
            format!("{p:.1}%"),
        ]);
        artifact.push((name, frac));
    }
    save_json("coherence_traffic", &artifact);
    t
}

/// E6 — the §5.3.3 closing claim: modeling takes well under a second and
/// ~a hundred bytes, simulation takes orders of magnitude longer.
pub fn speedup(sizes: Sizes) -> Table {
    let cfg = configs::c5();
    let w = params::workload_fft();
    let model = AnalyticModel::default();
    let t0 = std::time::Instant::now();
    let iters = 1000;
    for _ in 0..iters {
        let _ = model.evaluate(&cfg, &w).unwrap();
    }
    let model_time = t0.elapsed().as_secs_f64() / iters as f64;
    let t1 = std::time::Instant::now();
    let _ = simulate_workload(&sizes.workload(WorkloadKind::Fft), &cfg);
    let sim_time = t1.elapsed().as_secs_f64();
    let mut t = Table::new(
        "Model vs simulation cost (FFT on C5)",
        &["method", "wall time", "ratio"],
    );
    t.row(vec![
        "analytic model".into(),
        format!("{:.3e} s", model_time),
        "1x".into(),
    ]);
    t.row(vec![
        "program-driven simulation".into(),
        format!("{:.3} s", sim_time),
        format!("{:.0}x", sim_time / model_time),
    ]);
    save_json(
        "speedup",
        &serde_json::json!({"model_s": model_time, "sim_s": sim_time}),
    );
    t
}

/// E7/E8 — §6 case studies 1 and 2: the best cluster for a budget.
pub fn case_budget(budget: f64, include_tpcc: bool) -> Table {
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let space = CandidateSpace::paper_market();
    let mut workloads = params::paper_workloads();
    if include_tpcc {
        workloads.push(params::workload_tpcc());
    }
    let mut t = Table::new(
        format!("Case study: optimal cluster under ${budget:.0}"),
        &[
            "Workload",
            "Best configuration",
            "Cost",
            "E(Instr)",
            "Runner-up",
        ],
    );
    let mut artifact = Vec::new();
    for w in &workloads {
        let ranked = optimize(budget, w, &model, &prices, &space);
        if ranked.is_empty() {
            t.row(vec![
                w.name.clone(),
                "(nothing affordable)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let best = &ranked[0];
        let second = ranked
            .iter()
            .find(|r| r.spec != best.spec)
            .map(|r| r.spec.describe())
            .unwrap_or_default();
        t.row(vec![
            w.name.clone(),
            best.spec.describe(),
            format!("${:.0}", best.cost),
            fmt_seconds(best.e_instr_seconds),
            second,
        ]);
        artifact.push((w.name.clone(), best.clone()));
    }
    save_json(&format!("case_budget_{}", budget as u64), &artifact);
    t
}

/// E9 — §6 case study 3: upgrading an existing cluster with extra money.
pub fn case_upgrade(extra: f64) -> Table {
    let existing = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 32, 200.0),
        2,
        NetworkKind::Ethernet10,
    )
    .named("existing");
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let mut t = Table::new(
        format!(
            "Case study: upgrading {} with ${extra:.0}",
            existing.describe()
        ),
        &[
            "Workload",
            "Plan",
            "Cost",
            "E(Instr) before",
            "E(Instr) after",
            "gain",
        ],
    );
    let mut artifact = Vec::new();
    for w in params::paper_workloads() {
        let before = model.evaluate_or_inf(&existing, &w);
        let plans = plan_upgrade(&existing, extra, &w, &model, &prices);
        let best = &plans[0];
        t.row(vec![
            w.name.clone(),
            best.actions.join(", "),
            format!("${:.0}", best.cost),
            fmt_seconds(before),
            fmt_seconds(best.e_instr_seconds),
            format!("{:.2}x", before / best.e_instr_seconds),
        ]);
        artifact.push((w.name.clone(), best.clone()));
    }
    save_json("case_upgrade", &artifact);
    t
}

/// E10 — the §6 FFT claim: 4 workstations on slow Ethernet vs 3 on ATM at
/// comparable cost, ~4× execution-time gap.
pub fn case_fft_4x() -> Table {
    let prices = PriceTable::circa_1999();
    let model = AnalyticModel::default();
    let w = params::workload_fft();
    let eth = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 64, 200.0),
        4,
        NetworkKind::Ethernet10,
    )
    .named("4 ws / 10Mb Ethernet");
    let atm = ClusterSpec::cluster(MachineSpec::new(1, 256, 32, 200.0), 3, NetworkKind::Atm155)
        .named("3 ws / 155Mb ATM");
    let (ee, ea) = (
        model.evaluate_or_inf(&eth, &w),
        model.evaluate_or_inf(&atm, &w),
    );
    let mut t = Table::new(
        "FFT: equal-cost Ethernet vs ATM clusters (paper: ~4x gap)",
        &["Cluster", "Cost", "E(Instr)", "relative"],
    );
    t.row(vec![
        eth.describe(),
        format!("${:.0}", prices.cluster_cost(&eth).unwrap()),
        fmt_seconds(ee),
        format!("{:.2}x", ee / ea),
    ]);
    t.row(vec![
        atm.describe(),
        format!("${:.0}", prices.cluster_cost(&atm).unwrap()),
        fmt_seconds(ea),
        "1.00x".into(),
    ]);
    save_json(
        "case_fft_4x",
        &serde_json::json!({"ethernet": ee, "atm": ea, "ratio": ee / ea}),
    );
    t
}

/// E12 (extension) — sensitivity analysis backing the abstract's "length
/// of memory hierarchy is the most sensitive factor" claim: per-workload
/// factor elasticities plus the discrete 3-level-vs-5-level comparison.
pub fn sensitivity() -> Table {
    use memhier_core::sensitivity::analyze;
    let model = AnalyticModel::default();
    let baseline = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 64, 200.0),
        4,
        NetworkKind::Ethernet100,
    );
    let mut t = Table::new(
        "Sensitivity of E(Instr) around a 4-node Fast-Ethernet COW",
        &[
            "Workload",
            "Dominant factor",
            "Elasticities",
            "5-level/3-level ratio",
        ],
    );
    let mut artifact = Vec::new();
    let mut workloads = params::paper_workloads();
    workloads.push(params::workload_tpcc());
    for w in &workloads {
        let r = analyze(&model, &baseline, w);
        let el = r
            .factors
            .iter()
            .map(|f| format!("{} {:+.2}", f.factor, f.elasticity))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(vec![
            w.name.clone(),
            r.dominant_factor().to_string(),
            el,
            format!("{:.2}x", r.hierarchy.ratio),
        ]);
        artifact.push(r);
    }
    save_json("sensitivity", &artifact);
    t
}

/// E13 (extension) — sweep the optimizer over a (ρ, β) grid at three SPMD
/// sharing levels and draw the winning-platform maps.  The §6 matrix
/// emerges along the ρ/β axes; the sharing axis is our reproduction's own
/// finding — it is the factor that actually flips the platform choice
/// between "many workstations on a switch" and "one SMP".
pub fn sweep_map(budget: f64) -> String {
    use memhier_cost::render_map;
    use memhier_cost::sweep::sweep_with_sharing;
    let rho_grid = [0.05, 0.15, 0.25, 0.35, 0.45, 0.6];
    let beta_grid = [25.0, 50.0, 100.0, 200.0, 400.0, 1200.0];
    let mut out = String::new();
    let mut all_cells = Vec::new();
    for sharing in [0.0, 0.12, 0.25] {
        let cells = sweep_with_sharing(
            budget,
            1.3,
            sharing,
            &rho_grid,
            &beta_grid,
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
            &CandidateSpace::paper_market(),
        );
        out.push_str(&format!(
            "== Optimal platform by (rho, beta) at ${budget:.0}, sharing = {sharing:.2} ==\n{}\n",
            render_map(&cells, &rho_grid, &beta_grid)
        ));
        all_cells.push((sharing, cells));
    }
    save_json(&format!("sweep_map_{}", budget as u64), &all_cells);
    out
}

/// E14 (ablation) — the model's two reconstruction choices (DESIGN.md
/// §2.3): Open vs SelfConsistent arrivals, Untruncated vs Truncated
/// locality tails.  Shows where the paper-literal open model diverges and
/// what footprint truncation removes.
pub fn ablation() -> Table {
    use memhier_core::model::{ArrivalModel, TailMode};
    let clusters = [configs::c5(), configs::c8(), configs::c11()];
    let mut t = Table::new(
        "Ablation: arrival model x tail mode, E(Instr) seconds",
        &[
            "Config",
            "App",
            "Open/Raw",
            "Open/Trunc",
            "SelfCons/Raw",
            "SelfCons/Trunc",
        ],
    );
    let mut artifact = Vec::new();
    for cfg in &clusters {
        for w in params::paper_workloads() {
            let eval = |arrival, tail_mode| {
                let m = AnalyticModel {
                    arrival,
                    tail_mode,
                    ..AnalyticModel::default()
                };
                m.evaluate_or_inf(cfg, &w)
            };
            let cells = [
                eval(ArrivalModel::Open, TailMode::Untruncated),
                eval(ArrivalModel::Open, TailMode::Truncated),
                eval(ArrivalModel::SelfConsistent, TailMode::Untruncated),
                eval(ArrivalModel::SelfConsistent, TailMode::Truncated),
            ];
            let fmt = |x: f64| {
                if x.is_finite() {
                    fmt_seconds(x)
                } else {
                    "diverges".to_string()
                }
            };
            t.row(vec![
                cfg.name.clone().unwrap_or_default(),
                w.name.clone(),
                fmt(cells[0]),
                fmt(cells[1]),
                fmt(cells[2]),
                fmt(cells[3]),
            ]);
            artifact.push((cfg.name.clone(), w.name.clone(), cells));
        }
    }
    save_json("ablation", &artifact);
    t
}

/// E15 (extension) — network utilization, model vs simulator: the M/D/1
/// utilization the model predicts for the remote level against the
/// fraction of wall-clock the simulated network medium was busy.  A
/// second, independent axis of validation beyond E(Instr).
pub fn utilization(sizes: Sizes, chars: &[Characterization]) -> Table {
    let model = AnalyticModel::default();
    let mut t = Table::new(
        "Cluster network utilization: model (M/D/1, other-clients) vs simulated (busy/wall)",
        &["Config", "App", "model util", "sim util"],
    );
    let mut artifact = Vec::new();
    let clusters = [configs::c7(), configs::c8(), configs::c10()];
    let kinds: Vec<WorkloadKind> = chars.iter().map(|ch| kind_of(&ch.name)).collect();
    let plan = SweepPlan::new("utilization", sizes).cross(&clusters, &kinds);
    for r in run_sweep(&plan) {
        let ch = &chars[r.index % chars.len()];
        let cfg = &r.point.cluster;
        let w = ch.to_model_params();
        let m_util = model
            .evaluate(cfg, &w)
            .ok()
            .and_then(|p| {
                p.levels
                    .iter()
                    .find(|l| l.name == "remote")
                    .map(|l| l.utilization)
            })
            .unwrap_or(f64::NAN);
        let s_util = r.run.report.network_utilization();
        t.row(vec![
            cfg.name.clone().unwrap_or_default(),
            ch.name.clone(),
            format!("{m_util:.3}"),
            format!("{s_util:.3}"),
        ]);
        artifact.push((cfg.name.clone(), ch.name.clone(), m_util, s_util));
    }
    save_json("utilization", &artifact);
    t
}

/// E11 — the §6 recommendation matrix over the five characterized
/// workloads.
pub fn recommendations() -> Table {
    let mut t = Table::new(
        "Recommendations (paper section 6)",
        &["Workload", "rho", "beta", "Platform", "Upgrade advice"],
    );
    let mut workloads = params::paper_workloads();
    workloads.push(params::workload_tpcc());
    let mut artifact = Vec::new();
    for w in &workloads {
        let r = recommend(w);
        t.row(vec![
            w.name.clone(),
            format!("{:.2}", w.rho),
            format!("{:.1}", w.locality.beta),
            format!("{:?}", r.platform),
            r.upgrade_advice.to_string(),
        ]);
        artifact.push((w.name.clone(), r));
    }
    save_json("recommendations", &artifact);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_platforms() {
        let t = table1();
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("gray blocks A, B, and C"));
    }

    #[test]
    fn table2_small_runs() {
        let (t, chars) = table2(Sizes::Small, false);
        assert_eq!(chars.len(), 4);
        assert_eq!(t.rows.len(), 4);
        for c in &chars {
            assert!(c.alpha > 1.0 && c.beta > 1.0, "{c:?}");
        }
    }

    #[test]
    fn recommendations_cover_five_classes() {
        let t = recommendations();
        assert_eq!(t.rows.len(), 5);
        let s = t.render();
        assert!(s.contains("SingleSmp"));
        assert!(s.contains("SmpOrFastClusterOfSmps"));
    }

    #[test]
    fn case_fft_4x_shows_large_gap() {
        let t = case_fft_4x();
        let s = t.render();
        assert!(s.contains("x"), "{s}");
    }

    #[test]
    fn case_budget_small_runs() {
        let t = case_budget(5000.0, false);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn figure_small_smoke() {
        // One config, one kernel, small size: the full pipeline holds
        // together and produces finite numbers.
        let (_, chars) = table2(Sizes::Small, false);
        let (t, rows, _) = figure_experiment(
            "smoke",
            "smoke",
            &[configs::c1()],
            Sizes::Small,
            &chars[..1],
        );
        assert_eq!(rows.len(), 1);
        assert!(rows[0].sim_seconds.is_finite() && rows[0].sim_seconds > 0.0);
        assert!(rows[0].model_calibrated_seconds.is_finite());
        assert!(t.rows.len() >= 2);
    }
}
