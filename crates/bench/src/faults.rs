//! Deterministic fault-injection plane.
//!
//! Long sweeps and the `memhierd` service both need their failure paths
//! exercised *reproducibly*: a panic that only appears under one racy
//! load test is a panic nobody can debug.  This module provides a
//! [`FaultPlan`] — a small set of rules parsed from a spec string
//! (typically the `MEMHIER_FAULTS` environment variable) — whose
//! decisions are pure functions of `(rule seed, site, index, attempt)`.
//! No wall clock, no global RNG: the same plan over the same workload
//! injects the same failures byte-for-byte, on any machine, at any
//! `--jobs` width.
//!
//! ## Spec grammar
//!
//! ```text
//! spec    := rule ("," rule)*
//! rule    := site ":" kind (":" param)*
//! site    := "point" | "ckpt" | "serve"
//! kind    := "panic" | "io" | "delay"
//! param   := "rate=" FLOAT      probability per decision, in [0, 1]
//!          | "nth=" N           fire on every N-th decision (1-based)
//!          | "ms=" N            delay duration (delay kind only)
//!          | "seed=" N          per-rule RNG seed (rate rules)
//! ```
//!
//! Examples:
//!
//! ```text
//! MEMHIER_FAULTS="point:panic:rate=0.05:seed=7"          5% of sweep points panic
//! MEMHIER_FAULTS="ckpt:io:nth=3"                         every 3rd journal write fails
//! MEMHIER_FAULTS="serve:delay:ms=200:rate=0.1,serve:panic:nth=50"
//! ```
//!
//! A rule with neither `rate` nor `nth` always fires.  When several
//! rules match one site, the **first** firing rule in spec order wins.
//!
//! ## Sites
//!
//! | site | decision index | injected by |
//! |------|----------------|-------------|
//! | `point` | grid index of the sweep point (per attempt) | `run_sweep_checkpointed` |
//! | `ckpt`  | journal record sequence number | the checkpoint writer |
//! | `serve` | request sequence number | the `memhierd` worker loop |
//!
//! See `docs/ROBUSTNESS.md` for the full contract.

use std::fmt;
use std::time::Duration;

/// Where a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSite {
    /// One sweep grid point about to simulate.
    Point,
    /// One checkpoint-journal record about to be written.
    Ckpt,
    /// One admitted `memhierd` request about to be served.
    Serve,
}

impl FaultSite {
    fn parse(s: &str) -> Result<FaultSite, String> {
        match s {
            "point" => Ok(FaultSite::Point),
            "ckpt" => Ok(FaultSite::Ckpt),
            "serve" => Ok(FaultSite::Serve),
            other => Err(format!(
                "unknown fault site `{other}` (want point|ckpt|serve)"
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FaultSite::Point => "point",
            FaultSite::Ckpt => "ckpt",
            FaultSite::Serve => "serve",
        }
    }

    /// Site component folded into the decision hash, so the same index
    /// at different sites draws independent values.
    fn salt(&self) -> u64 {
        match self {
            FaultSite::Point => 0x70_6f_69_6e_74, // "point"
            FaultSite::Ckpt => 0x63_6b_70_74,     // "ckpt"
            FaultSite::Serve => 0x73_65_72_76_65, // "serve"
        }
    }
}

/// What kind of failure a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// `panic!` at the decision site (exercises unwind/quarantine paths).
    Panic,
    /// A synthetic I/O error (exercises error-return paths).
    Io,
    /// A fixed delay before proceeding (exercises deadline/backlog paths).
    Delay,
}

impl FaultKind {
    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "io" => Ok(FaultKind::Io),
            "delay" => Ok(FaultKind::Delay),
            other => Err(format!(
                "unknown fault kind `{other}` (want panic|io|delay)"
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Delay => "delay",
        }
    }
}

/// The action a firing rule asks the injection site to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Panic with an `injected fault:`-prefixed message.
    Panic,
    /// Fail with a synthetic I/O error.
    Io,
    /// Sleep for this long, then proceed normally.
    Delay(Duration),
}

/// One parsed rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Site the rule applies to.
    pub site: FaultSite,
    /// Failure kind it injects.
    pub kind: FaultKind,
    /// Firing probability per decision (`rate=`); `None` with no `nth`
    /// means "always fire".
    pub rate: Option<f64>,
    /// Fire on every `nth`-th decision, 1-based (`nth=`).
    pub nth: Option<u64>,
    /// Delay duration in milliseconds (`ms=`, delay rules only).
    pub ms: u64,
    /// Seed for rate decisions (`seed=`, default 0).
    pub seed: u64,
}

impl FaultRule {
    fn parse(clause: &str) -> Result<FaultRule, String> {
        let mut parts = clause.split(':');
        let site = FaultSite::parse(parts.next().unwrap_or_default().trim())?;
        let kind = FaultKind::parse(
            parts
                .next()
                .ok_or_else(|| format!("fault rule `{clause}` is missing a kind"))?
                .trim(),
        )?;
        let mut rule = FaultRule {
            site,
            kind,
            rate: None,
            nth: None,
            ms: 0,
            seed: 0,
        };
        for param in parts {
            let (key, value) = param
                .split_once('=')
                .ok_or_else(|| format!("fault parameter `{param}` is not key=value"))?;
            let bad = |what: &str| format!("fault parameter `{param}`: {what}");
            match key.trim() {
                "rate" => {
                    let r: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("rate must be a number"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(bad("rate must be within [0, 1]"));
                    }
                    rule.rate = Some(r);
                }
                "nth" => {
                    let n: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("nth must be a positive integer"))?;
                    if n == 0 {
                        return Err(bad("nth must be >= 1"));
                    }
                    rule.nth = Some(n);
                }
                "ms" => {
                    rule.ms = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("ms must be a non-negative integer"))?;
                }
                "seed" => {
                    rule.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("seed must be a non-negative integer"))?;
                }
                other => return Err(format!("unknown fault parameter `{other}` in `{clause}`")),
            }
        }
        if rule.kind == FaultKind::Delay && rule.ms == 0 {
            return Err(format!("delay rule `{clause}` needs ms=N"));
        }
        Ok(rule)
    }

    /// Whether this rule fires for decision `index` on retry `attempt`.
    /// Pure: same inputs, same answer, forever.
    fn fires(&self, index: u64, attempt: u32) -> bool {
        if let Some(nth) = self.nth {
            return (index + 1).is_multiple_of(nth);
        }
        match self.rate {
            None => true,
            Some(rate) => {
                let h = mix64(
                    self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ self.site.salt().wrapping_mul(0xbf58_476d_1ce4_e5b9)
                        ^ index.wrapping_mul(0x94d0_49bb_1331_11eb)
                        ^ u64::from(attempt).wrapping_mul(0xd6e8_feb8_6659_fd93),
                );
                // Top 53 bits → uniform in [0, 1).
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                unit < rate
            }
        }
    }

    /// The action this rule injects.
    fn action(&self) -> FaultAction {
        match self.kind {
            FaultKind::Panic => FaultAction::Panic,
            FaultKind::Io => FaultAction::Io,
            FaultKind::Delay => FaultAction::Delay(Duration::from_millis(self.ms)),
        }
    }
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.site.name(), self.kind.name())?;
        if let Some(r) = self.rate {
            write!(f, ":rate={r}")?;
        }
        if let Some(n) = self.nth {
            write!(f, ":nth={n}")?;
        }
        if self.ms > 0 {
            write!(f, ":ms={}", self.ms)?;
        }
        if self.seed != 0 {
            write!(f, ":seed={}", self.seed)?;
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A parsed set of fault rules.  The default plan is empty (injects
/// nothing) and costs one slice-emptiness check per decision.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).  An
    /// empty or whitespace-only spec yields the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            rules.push(FaultRule::parse(clause)?);
        }
        Ok(FaultPlan { rules })
    }

    /// Plan from the `MEMHIER_FAULTS` environment variable (empty plan
    /// when unset).  A malformed spec is an error, not a silent no-op:
    /// an operator who asked for fault injection must not get a clean
    /// run instead.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("MEMHIER_FAULTS") {
            Ok(spec) => {
                FaultPlan::parse(&spec).map_err(|e| format!("MEMHIER_FAULTS: {e} (in `{spec}`)"))
            }
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The parsed rules, in spec order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Decide what (if anything) to inject at `site` for decision
    /// `index`, on retry `attempt` (0 = first try).  First firing rule
    /// in spec order wins.
    pub fn check(&self, site: FaultSite, index: u64, attempt: u32) -> Option<FaultAction> {
        self.rules
            .iter()
            .find(|r| r.site == site && r.fires(index, attempt))
            .map(|r| r.action())
    }

    /// Panic if a panic fault fires at `site`/`index`/`attempt`; returns
    /// any non-panic action for the caller to apply.  The panic message
    /// carries the site and index so quarantine reports are actionable.
    pub fn maybe_panic(&self, site: FaultSite, index: u64, attempt: u32) -> Option<FaultAction> {
        match self.check(site, index, attempt) {
            Some(FaultAction::Panic) => panic!(
                "injected fault: {}:panic (index {index}, attempt {attempt})",
                site.name()
            ),
            other => other,
        }
    }

    /// A synthetic I/O error when an io fault fires at `site`/`index`.
    pub fn maybe_io_error(&self, site: FaultSite, index: u64, attempt: u32) -> std::io::Result<()> {
        match self.check(site, index, attempt) {
            Some(FaultAction::Io) => Err(std::io::Error::other(format!(
                "injected fault: {}:io (index {index}, attempt {attempt})",
                site.name()
            ))),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_the_issue_spec() {
        let plan = FaultPlan::parse(
            "point:panic:rate=0.05:seed=7,ckpt:io:nth=3,serve:delay:ms=200:rate=0.1",
        )
        .unwrap();
        assert_eq!(plan.rules().len(), 3);
        let p = &plan.rules()[0];
        assert_eq!(p.site, FaultSite::Point);
        assert_eq!(p.kind, FaultKind::Panic);
        assert_eq!(p.rate, Some(0.05));
        assert_eq!(p.seed, 7);
        let c = &plan.rules()[1];
        assert_eq!(c.nth, Some(3));
        let s = &plan.rules()[2];
        assert_eq!(s.kind, FaultKind::Delay);
        assert_eq!(s.ms, 200);
    }

    #[test]
    fn display_roundtrips() {
        let spec = "point:panic:rate=0.05:seed=7,ckpt:io:nth=3,serve:delay:rate=0.1:ms=200";
        let plan = FaultPlan::parse(spec).unwrap();
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn malformed_specs_are_errors() {
        for bad in [
            "disk:panic",           // unknown site
            "point:explode",        // unknown kind
            "point:panic:rate=2.0", // rate out of range
            "point:panic:nth=0",    // nth must be >= 1
            "point:panic:rate",     // not key=value
            "point:panic:foo=1",    // unknown parameter
            "serve:delay",          // delay needs ms
            "point",                // missing kind
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn empty_specs_yield_empty_plans() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
        assert_eq!(FaultPlan::default().check(FaultSite::Point, 0, 0), None);
    }

    #[test]
    fn nth_fires_periodically() {
        let plan = FaultPlan::parse("ckpt:io:nth=3").unwrap();
        let fired: Vec<u64> = (0..9)
            .filter(|&i| plan.check(FaultSite::Ckpt, i, 0).is_some())
            .collect();
        assert_eq!(fired, vec![2, 5, 8]);
        // Other sites are untouched.
        assert_eq!(plan.check(FaultSite::Point, 2, 0), None);
    }

    #[test]
    fn rate_decisions_are_deterministic_and_calibrated() {
        let plan = FaultPlan::parse("point:panic:rate=0.05:seed=7").unwrap();
        let decide = |i: u64| plan.check(FaultSite::Point, i, 0).is_some();
        // Deterministic: the same index always answers the same.
        for i in 0..64 {
            assert_eq!(decide(i), decide(i));
        }
        // Calibrated: over many decisions the empirical rate is ~5%.
        let fired = (0..10_000u64).filter(|&i| decide(i)).count();
        assert!(
            (300..=700).contains(&fired),
            "expected ~500 of 10000 decisions at rate 0.05, got {fired}"
        );
    }

    #[test]
    fn different_seeds_pick_different_points() {
        let a = FaultPlan::parse("point:panic:rate=0.2:seed=1").unwrap();
        let b = FaultPlan::parse("point:panic:rate=0.2:seed=2").unwrap();
        let hits = |p: &FaultPlan| -> Vec<u64> {
            (0..256)
                .filter(|&i| p.check(FaultSite::Point, i, 0).is_some())
                .collect()
        };
        assert_ne!(hits(&a), hits(&b));
    }

    #[test]
    fn attempts_draw_independent_values() {
        // A rate rule must be able to clear on retry: over many indices,
        // attempt 0 and attempt 1 decisions must differ somewhere.
        let plan = FaultPlan::parse("point:io:rate=0.5").unwrap();
        let differs = (0..64).any(|i| {
            plan.check(FaultSite::Point, i, 0).is_some()
                != plan.check(FaultSite::Point, i, 1).is_some()
        });
        assert!(differs, "attempt number must enter the decision hash");
    }

    #[test]
    fn always_fire_rule_and_ordering() {
        // First firing rule wins: the always-firing delay shadows the
        // later panic at the same site.
        let plan = FaultPlan::parse("serve:delay:ms=10,serve:panic").unwrap();
        assert_eq!(
            plan.check(FaultSite::Serve, 0, 0),
            Some(FaultAction::Delay(Duration::from_millis(10)))
        );
    }

    #[test]
    fn io_helper_surfaces_injected_error() {
        let plan = FaultPlan::parse("ckpt:io:nth=1").unwrap();
        let err = plan.maybe_io_error(FaultSite::Ckpt, 0, 0).unwrap_err();
        assert!(err.to_string().contains("injected fault: ckpt:io"));
        assert!(plan.maybe_io_error(FaultSite::Point, 0, 0).is_ok());
    }

    #[test]
    fn panic_helper_panics_with_site_in_message() {
        let plan = FaultPlan::parse("point:panic:nth=1").unwrap();
        let caught = std::panic::catch_unwind(|| plan.maybe_panic(FaultSite::Point, 4, 1));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("point:panic"), "{msg}");
        assert!(msg.contains("index 4"), "{msg}");
    }

    #[test]
    fn from_env_parses_and_rejects() {
        // Serialize access to the process-global env var.
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::remove_var("MEMHIER_FAULTS");
        assert!(FaultPlan::from_env().unwrap().is_empty());
        std::env::set_var("MEMHIER_FAULTS", "point:panic:rate=0.5");
        assert_eq!(FaultPlan::from_env().unwrap().rules().len(), 1);
        std::env::set_var("MEMHIER_FAULTS", "bogus");
        assert!(FaultPlan::from_env().is_err());
        std::env::remove_var("MEMHIER_FAULTS");
    }
}
