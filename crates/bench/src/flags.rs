//! One typed flag parser for every entry point.
//!
//! The CLI and all 18 experiment binaries used to hand-roll their own
//! `std::env::args()` loops, each with slightly different spellings and
//! error behavior.  [`FlagParser`] gives them a single declarative
//! surface: registered switches (`--paper`) and valued options
//! (`--jobs N` / `--jobs=N`), auto-generated `--help`, rejection of
//! unknown flags, and shared bundles for the common knobs
//! ([`FlagParser::sweep_flags`], [`FlagParser::observer_flags`]) so
//! `--jobs`, `--metrics`, `--trace`, sizes, and `--help` behave
//! identically everywhere.

use crate::faults::FaultPlan;
use crate::runner::{ObserverConfig, Sizes};
use crate::sweeprun::CheckpointConfig;
use std::fmt::Write as _;

/// Default time-series window width (cycles) when `--metrics` is given
/// without `--window`.
pub const DEFAULT_METRICS_WINDOW: u64 = 100_000;
/// Default trace capacity (events) when `--trace` is given without
/// `--trace-cap`.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

#[derive(Debug, Clone, Copy)]
struct Spec {
    name: &'static str,
    metavar: Option<&'static str>,
    help: &'static str,
}

/// Declarative argument parser shared by the CLI and the bench binaries.
#[derive(Debug, Clone)]
pub struct FlagParser {
    bin: &'static str,
    about: &'static str,
    specs: Vec<Spec>,
    positional_usage: Option<&'static str>,
}

impl FlagParser {
    /// Parser for binary `bin`, described by `about`.  `--help` is always
    /// registered.
    pub fn new(bin: &'static str, about: &'static str) -> Self {
        FlagParser {
            bin,
            about,
            specs: vec![Spec {
                name: "--help",
                metavar: None,
                help: "print this help and exit",
            }],
            positional_usage: None,
        }
    }

    /// Register a boolean switch (`--name`).
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.specs.push(Spec {
            name,
            metavar: None,
            help,
        });
        self
    }

    /// Register a valued option (`--name VALUE` or `--name=VALUE`).
    pub fn option(mut self, name: &'static str, metavar: &'static str, help: &'static str) -> Self {
        self.specs.push(Spec {
            name,
            metavar: Some(metavar),
            help,
        });
        self
    }

    /// Accept positional arguments, documented as `usage` in help output.
    /// Without this, any positional argument is an error.
    pub fn positionals(mut self, usage: &'static str) -> Self {
        self.positional_usage = Some(usage);
        self
    }

    /// The common sweep knobs: `--small`, `--paper`, `--jobs N`, plus
    /// the crash-safety bundle (`--checkpoint`, `--resume`,
    /// `--max-retries`, `--faults`).
    pub fn sweep_flags(self) -> Self {
        self.switch("--small", "tiny problem sizes (CI tier)")
            .switch("--paper", "the paper's \u{a7}5.2 problem sizes")
            .option(
                "--jobs",
                "N",
                "worker threads for sweeps (also MEMHIER_JOBS)",
            )
            .option(
                "--sim-threads",
                "N",
                "host threads inside one simulation — the epoch-parallel \
                 engine; 0 = classic engine (also MEMHIER_SIM_THREADS)",
            )
            .option(
                "--checkpoint",
                "PATH",
                "append completed sweep points to this JSONL journal",
            )
            .switch(
                "--resume",
                "skip points already completed in the --checkpoint journal",
            )
            .option(
                "--max-retries",
                "N",
                "retries per point after a failure or panic (default 1)",
            )
            .option(
                "--faults",
                "SPEC",
                "deterministic fault-injection spec (also MEMHIER_FAULTS)",
            )
    }

    /// The observability knobs: `--metrics`, `--window`, `--trace`,
    /// `--trace-cap`.
    pub fn observer_flags(self) -> Self {
        self.option("--metrics", "PATH", "write windowed metrics JSON here")
            .option(
                "--window",
                "CYCLES",
                "metrics window width in cycles (default 100000)",
            )
            .option("--trace", "PATH", "write a bounded JSONL event trace here")
            .option(
                "--trace-cap",
                "N",
                "max trace events retained (default 65536)",
            )
    }

    fn find(&self, name: &str) -> Option<&Spec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Rendered help text.
    pub fn usage(&self) -> String {
        let mut u = format!("{} — {}\n\nUsage: {}", self.bin, self.about, self.bin);
        if let Some(pos) = self.positional_usage {
            let _ = write!(u, " {pos}");
        }
        u.push_str(" [flags]\n\nFlags:\n");
        let width = self
            .specs
            .iter()
            .map(|s| s.name.len() + s.metavar.map(|m| m.len() + 1).unwrap_or(0))
            .max()
            .unwrap_or(0);
        for s in &self.specs {
            let head = match s.metavar {
                Some(m) => format!("{} {m}", s.name),
                None => s.name.to_string(),
            };
            let _ = writeln!(u, "  {head:<width$}  {}", s.help);
        }
        u
    }

    /// Parse `args` (without the program name).  Returns an error message
    /// for unknown flags, missing values, or unexpected positionals.
    /// Registered single-dash names (e.g. `-o`) are accepted too;
    /// unregistered ones fall through to positional handling.
    pub fn parse(&self, args: &[String]) -> Result<Matches, String> {
        let mut m = Matches {
            switches: Vec::new(),
            options: Vec::new(),
            positionals: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some((name, value)) = a.split_once('=').filter(|_| a.starts_with("--")) {
                let spec = self
                    .find(name)
                    .ok_or_else(|| format!("unknown flag `{name}`"))?;
                if spec.metavar.is_none() {
                    return Err(format!("`{name}` takes no value"));
                }
                m.options.push((spec.name, value.to_string()));
            } else if a.starts_with("--") || (a.starts_with('-') && self.find(a).is_some()) {
                let spec = self.find(a).ok_or_else(|| format!("unknown flag `{a}`"))?;
                match spec.metavar {
                    None => m.switches.push(spec.name),
                    Some(metavar) => {
                        let v = it
                            .next()
                            .ok_or_else(|| format!("`{a}` needs a {metavar} value"))?;
                        m.options.push((spec.name, v.clone()));
                    }
                }
            } else if self.positional_usage.is_some() {
                m.positionals.push(a.clone());
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(m)
    }

    /// Parse the process arguments.  On a parse error, print it plus the
    /// usage to stderr and exit 2; on `--help`, print usage and exit 0.
    /// A present `--jobs` is installed process-wide (same contract as
    /// [`crate::sweeprun::configure_from_args`]), as is the sweep
    /// crash-safety config when any of its flags (or `MEMHIER_FAULTS`)
    /// is present.
    pub fn parse_env_or_exit(&self) -> Matches {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.parse(&args) {
            Ok(m) => {
                if m.has("--help") {
                    print!("{}", self.usage());
                    std::process::exit(0);
                }
                if let Err(e) = m.apply_sweep_config() {
                    eprint!("error: {e}\n\n{}", self.usage());
                    std::process::exit(2);
                }
                m
            }
            Err(e) => {
                eprint!("error: {e}\n\n{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

/// Parsed arguments.
#[derive(Debug, Clone, Default)]
pub struct Matches {
    switches: Vec<&'static str>,
    options: Vec<(&'static str, String)>,
    positionals: Vec<String>,
}

impl Matches {
    /// Whether switch `name` (or a valued `name`) was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(&name) || self.get(name).is_some()
    }

    /// Last value given for option `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse option `name` as `T`, erroring with the flag name on a
    /// malformed value.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("malformed value `{v}` for `{name}`")),
        }
    }

    /// Positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Problem-size tier from `--small`/`--paper` (default medium).
    pub fn sizes(&self) -> Sizes {
        if self.has("--paper") {
            Sizes::Paper
        } else if self.has("--small") {
            Sizes::Small
        } else {
            Sizes::Medium
        }
    }

    /// Observer configuration from `--metrics`/`--window`/`--trace`/
    /// `--trace-cap`: observers are attached only when an output path
    /// was requested.
    pub fn observers(&self) -> Result<ObserverConfig, String> {
        let window = self.parsed::<u64>("--window")?;
        let cap = self.parsed::<usize>("--trace-cap")?;
        Ok(ObserverConfig {
            metrics_window: self
                .get("--metrics")
                .map(|_| window.unwrap_or(DEFAULT_METRICS_WINDOW).max(1)),
            trace_capacity: self
                .get("--trace")
                .map(|_| cap.unwrap_or(DEFAULT_TRACE_CAP)),
        })
    }

    /// Install a present, well-formed `--jobs N` process-wide (override +
    /// `MEMHIER_JOBS`, matching `configure_from_args`).
    pub fn apply_jobs(&self) {
        if let Ok(Some(n)) = self.parsed::<usize>("--jobs") {
            if n > 0 {
                crate::sweeprun::set_jobs(n);
                std::env::set_var("MEMHIER_JOBS", n.to_string());
            } else {
                eprintln!("warning: ignoring malformed --jobs (want a positive integer)");
            }
        } else if self.get("--jobs").is_some() {
            eprintln!("warning: ignoring malformed --jobs (want a positive integer)");
        }
    }

    /// Install a present, well-formed `--sim-threads N` process-wide
    /// (override + `MEMHIER_SIM_THREADS`).  `0` explicitly selects the
    /// classic engine, clearing any inherited environment setting.
    pub fn apply_sim_threads(&self) {
        match self.parsed::<usize>("--sim-threads") {
            Ok(Some(n)) => {
                crate::sweeprun::set_sim_threads(n);
                if n > 0 {
                    std::env::set_var("MEMHIER_SIM_THREADS", n.to_string());
                } else {
                    std::env::remove_var("MEMHIER_SIM_THREADS");
                }
            }
            Ok(None) => {}
            Err(_) => {
                eprintln!("warning: ignoring malformed --sim-threads (want a non-negative integer)")
            }
        }
    }

    /// The fault plan from `--faults SPEC`, falling back to
    /// `MEMHIER_FAULTS` (a missing flag and env var is the empty plan; a
    /// malformed spec in either is an error).
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        match self.get("--faults") {
            Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}")),
            None => FaultPlan::from_env(),
        }
    }

    /// The sweep crash-safety config from `--checkpoint`/`--resume`/
    /// `--max-retries`/`--faults`.
    pub fn checkpoint_config(&self) -> Result<CheckpointConfig, String> {
        if self.resume_requested() && self.get("--checkpoint").is_none() {
            return Err("--resume needs --checkpoint PATH".to_string());
        }
        Ok(CheckpointConfig {
            path: self.get("--checkpoint").map(std::path::PathBuf::from),
            resume: self.resume_requested(),
            max_retries: self
                .parsed::<u32>("--max-retries")?
                .unwrap_or(crate::sweeprun::DEFAULT_MAX_RETRIES),
            faults: self.fault_plan()?,
        })
    }

    fn resume_requested(&self) -> bool {
        self.switches.contains(&"--resume")
    }

    /// Install `--jobs` plus, when any crash-safety knob is active, the
    /// process-wide [`CheckpointConfig`] that routes
    /// [`run_sweep`](crate::sweeprun::run_sweep) through the
    /// checkpointed path.
    pub fn apply_sweep_config(&self) -> Result<(), String> {
        self.apply_jobs();
        self.apply_sim_threads();
        let cfg = self.checkpoint_config()?;
        if cfg.is_active() {
            crate::sweeprun::set_checkpoint_config(Some(cfg));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn parser() -> FlagParser {
        FlagParser::new("test", "a test parser")
            .sweep_flags()
            .observer_flags()
    }

    #[test]
    fn switches_and_options_both_forms() {
        let m = parser()
            .parse(&args(&["--paper", "--jobs", "4", "--metrics=m.json"]))
            .unwrap();
        assert!(m.has("--paper"));
        assert!(!m.has("--small"));
        assert_eq!(m.parsed::<usize>("--jobs").unwrap(), Some(4));
        assert_eq!(m.get("--metrics"), Some("m.json"));
        assert_eq!(m.sizes(), Sizes::Paper);
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = parser().parse(&args(&["--bogus"])).unwrap_err();
        assert!(e.contains("--bogus"), "{e}");
        let e = parser().parse(&args(&["stray"])).unwrap_err();
        assert!(e.contains("stray"), "{e}");
    }

    #[test]
    fn positionals_when_allowed() {
        let p = FlagParser::new("t", "t").positionals("BUDGET");
        let m = p.parse(&args(&["20000"])).unwrap();
        assert_eq!(m.positionals(), &["20000".to_string()]);
    }

    #[test]
    fn missing_value_is_error() {
        let e = parser().parse(&args(&["--jobs"])).unwrap_err();
        assert!(e.contains("--jobs"), "{e}");
        let e = parser().parse(&args(&["--paper=yes"])).unwrap_err();
        assert!(e.contains("no value"), "{e}");
    }

    #[test]
    fn observer_config_defaults() {
        let m = parser().parse(&args(&["--metrics", "m.json"])).unwrap();
        let cfg = m.observers().unwrap();
        assert_eq!(cfg.metrics_window, Some(DEFAULT_METRICS_WINDOW));
        assert_eq!(cfg.trace_capacity, None);
        let m = parser()
            .parse(&args(&[
                "--metrics",
                "m.json",
                "--window",
                "500",
                "--trace",
                "t.jsonl",
                "--trace-cap",
                "9",
            ]))
            .unwrap();
        let cfg = m.observers().unwrap();
        assert_eq!(cfg.metrics_window, Some(500));
        assert_eq!(cfg.trace_capacity, Some(9));
        // No paths → no observers, regardless of tuning flags.
        let m = parser().parse(&args(&["--window", "500"])).unwrap();
        assert!(!m.observers().unwrap().is_active());
    }

    #[test]
    fn usage_lists_every_flag() {
        let u = parser().usage();
        for f in [
            "--help",
            "--small",
            "--paper",
            "--jobs",
            "--metrics",
            "--trace",
        ] {
            assert!(u.contains(f), "usage missing {f}:\n{u}");
        }
    }

    #[test]
    fn malformed_integer_is_an_error_not_a_panic() {
        // Parsing succeeds (the flag takes any string)…
        let m = parser().parse(&args(&["--jobs", "four"])).unwrap();
        // …but typed extraction reports the bad literal and the flag name.
        let e = m.parsed::<usize>("--jobs").unwrap_err();
        assert!(e.contains("--jobs"), "{e}");
        assert!(e.contains("four"), "{e}");
        // A negative literal is consumed as the value, then rejected by
        // the unsigned typed extraction.
        let m = parser().parse(&args(&["--jobs", "-3"])).unwrap();
        assert!(m.parsed::<usize>("--jobs").is_err());
        let m = parser().parse(&args(&["--window", "1e9"])).unwrap();
        assert!(m.parsed::<u64>("--window").is_err());
    }

    #[test]
    fn help_flag_is_always_accepted() {
        let m = parser().parse(&args(&["--help"])).unwrap();
        assert!(m.has("--help"));
        // --help wins even alongside other valid flags.
        let m = parser().parse(&args(&["--paper", "--help"])).unwrap();
        assert!(m.has("--help"));
    }

    #[test]
    fn checkpoint_config_from_flags() {
        let m = parser()
            .parse(&args(&[
                "--checkpoint",
                "ck.jsonl",
                "--resume",
                "--max-retries",
                "3",
                "--faults",
                "point:io:nth=2",
            ]))
            .unwrap();
        let cfg = m.checkpoint_config().unwrap();
        assert_eq!(cfg.path.as_deref(), Some(std::path::Path::new("ck.jsonl")));
        assert!(cfg.resume);
        assert_eq!(cfg.max_retries, 3);
        assert_eq!(cfg.faults.rules().len(), 1);
        assert!(cfg.is_active());
        // No crash-safety flags → inert config.
        let m = parser().parse(&args(&["--paper"])).unwrap();
        std::env::remove_var("MEMHIER_FAULTS");
        let cfg = m.checkpoint_config().unwrap();
        assert!(!cfg.is_active());
        assert_eq!(cfg.max_retries, crate::sweeprun::DEFAULT_MAX_RETRIES);
    }

    #[test]
    fn resume_without_checkpoint_is_an_error() {
        let m = parser().parse(&args(&["--resume"])).unwrap();
        let e = m.checkpoint_config().unwrap_err();
        assert!(e.contains("--checkpoint"), "{e}");
    }

    #[test]
    fn malformed_faults_flag_is_an_error() {
        let m = parser().parse(&args(&["--faults", "bogus"])).unwrap();
        let e = m.checkpoint_config().unwrap_err();
        assert!(e.contains("--faults"), "{e}");
    }

    #[test]
    fn usage_header_names_the_binary_and_about() {
        let u = FlagParser::new("serve_load", "closed-loop load generator").usage();
        assert!(u.contains("serve_load"), "{u}");
        assert!(u.contains("closed-loop load generator"), "{u}");
    }
}
