//! # memhier-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures (DESIGN.md experiment index E1–E11).
//!
//! * [`runner`] — glue between workloads, the trace analyzer, the
//!   simulator, and the analytic model: `characterize` (Table 2's α/β/ρ
//!   pipeline) and `simulate_workload` (one config × workload run).
//! * [`sweeprun`] — the parallel, memoizing sweep runner: explicit
//!   `SweepPlan` grids fanned out over a rayon pool (`--jobs N` /
//!   `MEMHIER_JOBS`), with a process-wide characterization cache and
//!   grid-ordered (deterministic) results.
//! * [`optimrun`] — the fleet-scale optimizer pipeline: analytic
//!   pruning over a candidate grid (`memhier-cost`), then simulation
//!   confirmation of the finalists through the sweep runner.
//! * [`calib`] — the §5.3.2 "adjust the rates until the model tracks the
//!   simulator" calibration, generalized to a small grid search.
//! * [`tables`] — aligned text tables plus JSON result dumps under
//!   `target/experiments/`.
//! * [`experiments`] — one function per paper artifact (Table 1/2,
//!   Figures 2–4, the speed claim, the §6 case studies and
//!   recommendations).
//!
//! Each experiment also has a binary in `src/bin/` (e.g. `fig2_smp`) and
//! the Criterion benches under `benches/` cover the performance claims.

pub mod calib;
pub mod experiments;
pub mod faults;
pub mod flags;
pub mod loadgen;
pub mod names;
pub mod optimrun;
pub mod record;
pub mod registry_info;
pub mod runner;
pub mod scenario;
pub mod sweeprun;
pub mod tables;

pub use faults::{FaultAction, FaultKind, FaultPlan, FaultRule, FaultSite};
pub use flags::{FlagParser, Matches};
pub use loadgen::{quantile_us, LoadClient, LoadError, Reply};
pub use names::{config_by_name, paper_params, sizes_by_name, workload_kind_by_name};
pub use optimrun::{run_optimize, run_recommend};
pub use record::{record_scenario, RecordSummary, TraceRecorder};
pub use registry_info::registry_json;
pub use runner::{
    characterize, simulate_workload, simulate_workload_observed, simulate_workload_threads,
    simulate_workload_with, Characterization, ObservedRun, ObserverConfig, SimRun, Sizes,
};
pub use scenario::{size_name, Scenario, ScenarioBuilder, ScenarioError};
pub use sweeprun::{
    characterize_cached, characterize_many, configure_from_args, run_sweep, run_sweep_checkpointed,
    set_checkpoint_config, set_jobs, set_sim_threads, sim_threads, CheckpointConfig, GridPoint,
    PointOutcome, PointResult, SweepOutcome, SweepPlan,
};
