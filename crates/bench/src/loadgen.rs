//! A keep-alive HTTP/1.1 load client for `memhierd`.
//!
//! `serve_load` and `serve_soak` both drive the daemon through
//! [`LoadClient`]: one persistent connection per client thread, with
//! `content-length` framing (the server is keep-alive by default, so
//! read-to-EOF no longer terminates a response).  The client classifies
//! transport failures the way an SLO cares about them:
//!
//! * [`LoadError::Connect`] — TCP connect refused/failed; the service is
//!   not reachable at all.
//! * [`LoadError::PrematureClose`] — the server dropped the connection
//!   **mid-response** (or before answering a fresh connection's first
//!   request).  This is the "dropped in-flight request" signal the soak
//!   SLO gates on: a healthy drain or worker respawn must never produce
//!   one.
//! * [`LoadError::Transport`] / [`LoadError::Malformed`] — I/O errors
//!   and unparseable response bytes.
//!
//! One race is *not* an error: the server may reap an idle keep-alive
//! connection (its `keepalive_timeout`) at the same instant the client
//! reuses it.  HTTP/1.1 clients handle this by retrying the request once
//! on a fresh connection; [`LoadClient::exchange`] does exactly that
//! (the retry is visible in [`LoadClient::reconnects`], not in the error
//! counts) — but only when the old connection died **before yielding any
//! response bytes**, so a genuine mid-response drop is never masked.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest response the client will buffer before declaring the stream
/// malformed (the daemon's own response cap is far smaller).
const MAX_RESPONSE: usize = 64 * 1024 * 1024;

/// Nearest-rank quantile of an ascending-sorted latency sample
/// (microseconds); 0 for an empty sample.
pub fn quantile_us(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// A transport-level failure, classified for SLO accounting.
#[derive(Debug)]
pub enum LoadError {
    /// TCP connect failed (service down or unreachable).
    Connect(String),
    /// The connection closed before a complete response arrived.
    PrematureClose,
    /// A read or write error mid-exchange.
    Transport(String),
    /// Response bytes that do not parse as framed HTTP/1.1.
    Malformed(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Connect(e) => write!(f, "connect: {e}"),
            LoadError::PrematureClose => write!(f, "connection closed mid-response"),
            LoadError::Transport(e) => write!(f, "transport: {e}"),
            LoadError::Malformed(e) => write!(f, "malformed response: {e}"),
        }
    }
}

/// One complete response off the wire.
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// The raw head (status line + headers, without the blank line).
    pub head: String,
    /// The response body.
    pub body: Vec<u8>,
    /// Wall time from first write byte to last body byte.
    pub latency: Duration,
}

impl Reply {
    /// Case-insensitive header lookup (trimmed value).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().skip(1).find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }

    /// `Retry-After` in whole seconds, when present and numeric.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after")?.parse().ok()
    }

    /// Did the server frame this response `connection: close`?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// How one exchange attempt failed, before the retry policy is applied.
enum Attempt {
    Connect(String),
    /// The write failed on a reused connection (stale keep-alive).
    WriteFailed(String),
    /// EOF arrived before any byte of this response.
    EofBeforeResponse,
    /// EOF arrived mid-response.
    EofMidResponse,
    Io(String),
    Malformed(String),
}

/// A persistent keep-alive connection to one `memhierd` address.
pub struct LoadClient {
    addr: String,
    stream: Option<TcpStream>,
    /// Bytes read past the end of the previous response (pipelining
    /// slack); consumed before touching the socket again.
    carry: Vec<u8>,
    read_timeout: Duration,
    reconnects: u64,
}

impl LoadClient {
    /// A client for `addr`; no connection is opened until the first
    /// [`exchange`](Self::exchange).
    pub fn new(addr: impl Into<String>, read_timeout: Duration) -> Self {
        LoadClient {
            addr: addr.into(),
            stream: None,
            carry: Vec::new(),
            read_timeout,
            reconnects: 0,
        }
    }

    /// How many times a stale keep-alive connection was transparently
    /// replaced (the idle-close race; not an error).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Send `wire` and read one framed response, reusing the connection
    /// across calls.  A stale keep-alive connection (write failure or
    /// clean EOF before any response byte on a **reused** stream) is
    /// replaced and the request retried once.
    pub fn exchange(&mut self, wire: &[u8]) -> Result<Reply, LoadError> {
        let reused = self.stream.is_some();
        match self.attempt(wire) {
            Ok(reply) => Ok(reply),
            Err(Attempt::WriteFailed(_)) | Err(Attempt::EofBeforeResponse)
                if reused && self.carry.is_empty() =>
            {
                // Idle-close race: the server reaped the connection
                // between our requests.  Retry once, fresh.
                self.stream = None;
                self.reconnects += 1;
                self.attempt(wire).map_err(|e| self.classify(e))
            }
            Err(e) => Err(self.classify(e)),
        }
    }

    /// Drop the connection (the next exchange reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.carry.clear();
    }

    fn classify(&mut self, e: Attempt) -> LoadError {
        self.stream = None;
        match e {
            Attempt::Connect(m) => LoadError::Connect(m),
            Attempt::EofBeforeResponse | Attempt::EofMidResponse => LoadError::PrematureClose,
            Attempt::WriteFailed(m) | Attempt::Io(m) => LoadError::Transport(m),
            Attempt::Malformed(m) => LoadError::Malformed(m),
        }
    }

    fn attempt(&mut self, wire: &[u8]) -> Result<Reply, Attempt> {
        if self.stream.is_none() {
            let stream =
                TcpStream::connect(&self.addr).map_err(|e| Attempt::Connect(e.to_string()))?;
            stream
                .set_read_timeout(Some(self.read_timeout))
                .map_err(|e| Attempt::Io(e.to_string()))?;
            self.carry.clear();
            self.stream = Some(stream);
        }
        let started = Instant::now();
        {
            let stream = self.stream.as_mut().expect("connected above");
            if let Err(e) = stream.write_all(wire) {
                self.stream = None;
                return Err(Attempt::WriteFailed(e.to_string()));
            }
        }
        let reply = self.read_one(started)?;
        if reply.wants_close() {
            self.stream = None;
            self.carry.clear();
        }
        Ok(reply)
    }

    /// Read exactly one `content-length`-framed response, leaving any
    /// extra bytes in `carry`.
    fn read_one(&mut self, started: Instant) -> Result<Reply, Attempt> {
        let mut acc = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(head_end) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&acc[..head_end]).to_string();
                let clen: usize = head
                    .lines()
                    .skip(1)
                    .find_map(|l| {
                        let (n, v) = l.split_once(':')?;
                        n.trim()
                            .eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse().ok())?
                    })
                    .ok_or_else(|| Attempt::Malformed("missing content-length".into()))?;
                let total = head_end + 4 + clen;
                if total > MAX_RESPONSE {
                    return Err(Attempt::Malformed(format!("response of {total} bytes")));
                }
                if acc.len() >= total {
                    let status: u16 = head
                        .strip_prefix("HTTP/1.1 ")
                        .and_then(|r| r.get(..3))
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| Attempt::Malformed("bad status line".into()))?;
                    self.carry = acc.split_off(total);
                    let body = acc.split_off(head_end + 4);
                    return Ok(Reply {
                        status,
                        head,
                        body,
                        latency: started.elapsed(),
                    });
                }
            }
            let n = match self.stream.as_mut().expect("connected").read(&mut chunk) {
                Ok(n) => n,
                Err(e) => {
                    self.stream = None;
                    return Err(Attempt::Io(e.to_string()));
                }
            };
            if n == 0 {
                self.stream = None;
                return Err(if acc.is_empty() {
                    Attempt::EofBeforeResponse
                } else {
                    Attempt::EofMidResponse
                });
            }
            acc.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn framed(status: &str, body: &str, close: bool) -> String {
        let conn = if close { "close" } else { "keep-alive" };
        format!(
            "HTTP/1.1 {status}\r\ncontent-length: {}\r\nconnection: {conn}\r\n\r\n{body}",
            body.len()
        )
    }

    /// Accept connections and run `script` per connection: each entry is
    /// (bytes to read before answering, bytes to write, hang up after).
    fn scripted_server(
        scripts: Vec<Vec<(usize, String)>>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for script in scripts {
                let (mut s, _) = listener.accept().expect("accept");
                for (read_n, reply) in script {
                    let mut buf = vec![0u8; read_n];
                    s.read_exact(&mut buf).expect("scripted read");
                    s.write_all(reply.as_bytes()).expect("scripted write");
                }
                // Connection drops when `s` goes out of scope.
            }
        });
        (addr, handle)
    }

    const REQ: &str = "GET /x HTTP/1.1\r\n\r\n";

    #[test]
    fn keepalive_reuses_one_connection() {
        let (addr, server) = scripted_server(vec![vec![
            (REQ.len(), framed("200 OK", "one", false)),
            (REQ.len(), framed("200 OK", "two", false)),
        ]]);
        let mut c = LoadClient::new(addr.to_string(), Duration::from_secs(5));
        for expect in ["one", "two"] {
            let r = c.exchange(REQ.as_bytes()).expect("exchange");
            assert_eq!(r.status, 200);
            assert_eq!(r.body, expect.as_bytes());
        }
        assert_eq!(c.reconnects(), 0, "same connection served both");
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn idle_close_race_reconnects_once_not_an_error() {
        // First connection answers one request then hangs up; the second
        // request must transparently land on a new connection.
        let (addr, server) = scripted_server(vec![
            vec![(REQ.len(), framed("200 OK", "first", false))],
            vec![(REQ.len(), framed("200 OK", "second", false))],
        ]);
        let mut c = LoadClient::new(addr.to_string(), Duration::from_secs(5));
        assert_eq!(c.exchange(REQ.as_bytes()).expect("first").body, b"first");
        let r = c
            .exchange(REQ.as_bytes())
            .expect("second (after reconnect)");
        assert_eq!(r.body, b"second");
        assert_eq!(c.reconnects(), 1);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn mid_response_drop_is_a_premature_close() {
        // Half a response, then hang up: this must NOT be retried.
        let half = "HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\npartial";
        let (addr, server) = scripted_server(vec![vec![(REQ.len(), half.to_string())]]);
        let mut c = LoadClient::new(addr.to_string(), Duration::from_secs(5));
        match c.exchange(REQ.as_bytes()) {
            Err(LoadError::PrematureClose) => {}
            other => panic!("expected PrematureClose, got {:?}", other.map(|r| r.status)),
        }
        assert_eq!(c.reconnects(), 0);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn connection_close_header_is_honored() {
        // The server frames `connection: close`; the client must open a
        // fresh connection for the next request without counting a
        // reconnect (it is an orderly close, not a race).
        let (addr, server) = scripted_server(vec![
            vec![(REQ.len(), framed("200 OK", "a", true))],
            vec![(REQ.len(), framed("200 OK", "b", false))],
        ]);
        let mut c = LoadClient::new(addr.to_string(), Duration::from_secs(5));
        assert!(c.exchange(REQ.as_bytes()).expect("a").wants_close());
        assert_eq!(c.exchange(REQ.as_bytes()).expect("b").body, b"b");
        assert_eq!(c.reconnects(), 0);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn connect_failure_is_classified() {
        // A bound-then-dropped listener yields a port nothing listens on.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut c = LoadClient::new(format!("127.0.0.1:{port}"), Duration::from_secs(1));
        assert!(matches!(
            c.exchange(REQ.as_bytes()),
            Err(LoadError::Connect(_))
        ));
    }

    #[test]
    fn pipelining_slack_is_carried_between_calls() {
        // Two responses arrive in one burst; the second exchange must be
        // satisfied from the carry buffer without reading the socket.
        let burst = format!(
            "{}{}",
            framed("200 OK", "one", false),
            framed("200 OK", "two", false)
        );
        let (addr, server) = scripted_server(vec![vec![
            (REQ.len(), burst),
            // Second request is read by the server but needs no reply:
            // the client already holds response two.
            (REQ.len(), String::new()),
        ]]);
        let mut c = LoadClient::new(addr.to_string(), Duration::from_secs(5));
        assert_eq!(c.exchange(REQ.as_bytes()).expect("one").body, b"one");
        assert_eq!(c.exchange(REQ.as_bytes()).expect("two").body, b"two");
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn retry_after_and_headers_parse() {
        let r = Reply {
            status: 429,
            head: "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 7\r\nX-Cache: miss".into(),
            body: Vec::new(),
            latency: Duration::ZERO,
        };
        assert_eq!(r.retry_after_secs(), Some(7));
        assert_eq!(r.header("x-cache"), Some("miss"));
        assert_eq!(r.header("absent"), None);
        assert!(!r.wants_close());
    }
}
