//! Canonical string names for configs, workloads, and size tiers.
//!
//! The CLI, the experiment binaries, and the `memhierd` service all take
//! the same spellings (`C1..C15`, `FFT|LU|Radix|EDGE|TPC-C`,
//! `small|medium|paper`); resolving them lives here so every entry point
//! accepts and rejects exactly the same inputs.

use crate::runner::Sizes;
use memhier_core::locality::WorkloadParams;
use memhier_core::params::{self, configs};
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::WorkloadKind;

/// Resolve a paper configuration by name (`C1`..`C15`).
pub fn config_by_name(name: &str) -> Result<ClusterSpec, String> {
    configs::all_configs()
        .into_iter()
        .find(|c| c.name.as_deref() == Some(name))
        .ok_or_else(|| format!("unknown config `{name}` (try `memhier configs`)"))
}

/// Resolve a workload kind by its display name (case-insensitive).
pub fn workload_kind_by_name(name: &str) -> Result<WorkloadKind, String> {
    match name.to_ascii_uppercase().as_str() {
        "FFT" => Ok(WorkloadKind::Fft),
        "LU" => Ok(WorkloadKind::Lu),
        "RADIX" => Ok(WorkloadKind::Radix),
        "EDGE" => Ok(WorkloadKind::Edge),
        "TPC-C" | "TPCC" => Ok(WorkloadKind::Tpcc),
        other => Err(format!("unknown workload `{other}`")),
    }
}

/// Resolve a problem-size tier by name.
pub fn sizes_by_name(name: &str) -> Result<Sizes, String> {
    match name.to_ascii_lowercase().as_str() {
        "small" => Ok(Sizes::Small),
        "medium" => Ok(Sizes::Medium),
        "paper" => Ok(Sizes::Paper),
        other => Err(format!("unknown size `{other}` (small|medium|paper)")),
    }
}

/// The paper's Table-2 `(α, β, ρ)` parameters for a kernel.
pub fn paper_params(kind: WorkloadKind) -> WorkloadParams {
    match kind {
        WorkloadKind::Fft => params::workload_fft(),
        WorkloadKind::Lu => params::workload_lu(),
        WorkloadKind::Radix => params::workload_radix(),
        WorkloadKind::Edge => params::workload_edge(),
        WorkloadKind::Tpcc => params::workload_tpcc(),
        // WorkloadKind is non_exhaustive; workload_kind_by_name only emits
        // the five above.
        other => unreachable!("no paper parameters for {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_lookup_roundtrips() {
        for c in configs::all_configs() {
            let name = c.name.clone().unwrap();
            assert_eq!(config_by_name(&name).unwrap().name.as_deref(), Some(&*name));
        }
        assert!(config_by_name("C99").is_err());
    }

    #[test]
    fn workload_names_case_insensitive() {
        assert_eq!(workload_kind_by_name("fft").unwrap(), WorkloadKind::Fft);
        assert_eq!(workload_kind_by_name("TPCC").unwrap(), WorkloadKind::Tpcc);
        assert!(workload_kind_by_name("SORT").is_err());
    }

    #[test]
    fn size_names() {
        assert_eq!(sizes_by_name("small").unwrap(), Sizes::Small);
        assert_eq!(sizes_by_name("PAPER").unwrap(), Sizes::Paper);
        assert!(sizes_by_name("huge").is_err());
    }
}
