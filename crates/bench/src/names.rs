//! Canonical string names for configs, workloads, and size tiers.
//!
//! The CLI, the experiment binaries, and the `memhierd` service all take
//! the same spellings (`C1..C15` plus the extended `N4/N8/FT8/FT16`
//! configs, any workload-registry key, `small|medium|paper`); resolving
//! them lives here so every entry point accepts and rejects exactly the
//! same inputs.

use crate::runner::Sizes;
use memhier_core::locality::WorkloadParams;
use memhier_core::params::{self, configs};
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::WorkloadKind;
use memhier_workloads::{workload_by_key, workload_keys};

/// Resolve a named configuration: the paper's `C1`..`C15` or the
/// extended `N4`/`N8`/`FT8`/`FT16` NUMA and fat-tree configs.
pub fn config_by_name(name: &str) -> Result<ClusterSpec, String> {
    configs::all_configs()
        .into_iter()
        .chain(configs::extended_configs())
        .find(|c| c.name.as_deref() == Some(name))
        .ok_or_else(|| format!("unknown config `{name}` (try `memhier configs`)"))
}

/// Resolve a workload kind by registry key or alias (case-insensitive).
pub fn workload_kind_by_name(name: &str) -> Result<WorkloadKind, String> {
    workload_by_key(name)
        .and_then(|spec| spec.kind())
        .ok_or_else(|| format!("unknown workload `{name}` ({})", workload_keys().join("|")))
}

/// Resolve a problem-size tier by name.
pub fn sizes_by_name(name: &str) -> Result<Sizes, String> {
    match name.to_ascii_lowercase().as_str() {
        "small" => Ok(Sizes::Small),
        "medium" => Ok(Sizes::Medium),
        "paper" => Ok(Sizes::Paper),
        other => Err(format!("unknown size `{other}` (small|medium|paper)")),
    }
}

/// The paper's Table-2 `(α, β, ρ)` parameters for a kernel.
pub fn paper_params(kind: WorkloadKind) -> WorkloadParams {
    match kind {
        WorkloadKind::Fft => params::workload_fft(),
        WorkloadKind::Lu => params::workload_lu(),
        WorkloadKind::Radix => params::workload_radix(),
        WorkloadKind::Edge => params::workload_edge(),
        WorkloadKind::Tpcc => params::workload_tpcc(),
        WorkloadKind::Stencil4D => params::workload_stencil4d(),
        WorkloadKind::Stream => params::workload_stream(),
        WorkloadKind::GraphWalk => params::workload_graphwalk(),
        WorkloadKind::Inference => params::workload_inference(),
        // WorkloadKind is non_exhaustive; workload_kind_by_name only emits
        // the kinds above.
        other => unreachable!("no paper parameters for {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_lookup_roundtrips() {
        for c in configs::all_configs() {
            let name = c.name.clone().unwrap();
            assert_eq!(config_by_name(&name).unwrap().name.as_deref(), Some(&*name));
        }
        assert!(config_by_name("C99").is_err());
    }

    #[test]
    fn workload_names_case_insensitive() {
        assert_eq!(workload_kind_by_name("fft").unwrap(), WorkloadKind::Fft);
        assert_eq!(workload_kind_by_name("TPCC").unwrap(), WorkloadKind::Tpcc);
        assert_eq!(
            workload_kind_by_name("stencil").unwrap(),
            WorkloadKind::Stencil4D
        );
        assert_eq!(
            workload_kind_by_name("GraphWalk").unwrap(),
            WorkloadKind::GraphWalk
        );
        let err = workload_kind_by_name("SORT").unwrap_err();
        assert!(
            err.contains("Stencil4D"),
            "error lists registry keys: {err}"
        );
    }

    #[test]
    fn extended_configs_resolve_by_name() {
        for name in ["N4", "N8", "FT8", "FT16"] {
            assert_eq!(config_by_name(name).unwrap().name.as_deref(), Some(name));
        }
    }

    #[test]
    fn every_kind_has_paper_params() {
        for kind in WorkloadKind::ALL {
            let p = paper_params(kind);
            assert!(p.locality.alpha > 1.0, "{}", kind.name());
        }
    }

    #[test]
    fn size_names() {
        assert_eq!(sizes_by_name("small").unwrap(), Sizes::Small);
        assert_eq!(sizes_by_name("PAPER").unwrap(), Sizes::Paper);
        assert!(sizes_by_name("huge").is_err());
    }
}
