//! The fleet-scale optimizer's simulation-confirmation stage: the glue
//! between `memhier-cost`'s analytic search and the sweep runner.
//!
//! [`run_optimize`] is the one entry point behind both `memhier
//! optimize` and `memhierd`'s `POST /v1/optimize`:
//!
//! 1. **Prune analytically** — [`memhier_cost::analyze_eval`] enumerates
//!    the request's candidate grid (thousands of configurations),
//!    prices every candidate, and ranks the feasible survivors by the
//!    closed-form model, counting every pruned candidate.
//! 2. **Confirm by simulation** — the top `confirm` finalists run
//!    through the full program-driven simulator via a [`SweepPlan`], so
//!    they inherit the whole sweep substrate for free: the `--jobs`
//!    rayon pool, `MEMHIER_SIM_THREADS`, and — when a process-wide
//!    [`CheckpointConfig`](crate::sweeprun::CheckpointConfig) is
//!    installed — the crash-safe JSONL journal with `--resume`.
//!
//! Results are deterministic at any `--jobs`/`--sim-threads` width
//! (grid-ordered sweep results + thread-invariant engine), so the
//! report is byte-identical however it was scheduled — pinned by
//! `tests/optimize_determinism.rs`.

use crate::names::{sizes_by_name, workload_kind_by_name};
use crate::sweeprun::{run_sweep, SweepPlan};
use memhier_cost::{CostError, OptimizeReport, OptimizeRequest, SimConfirmation, WorkloadSpec};

/// Execute an optimize request end to end: analytic pruning, then
/// simulation confirmation of the `confirm` best-ranked finalists.
///
/// With `confirm = 0` this is exactly the analytic
/// [`analyze`](memhier_cost::analyze).  With `confirm > 0` the workload
/// must be a named paper kernel (custom `(α, β, ρ)` parameters have no
/// simulator kernel — [`CostError::Unsimulatable`]); each finalist's
/// entry gains a `simulated` block, `search.confirmed` and the pruning
/// ratio are updated, and `best` becomes the **simulation-confirmed**
/// winner (minimum simulated seconds, ties broken by lower cost).
///
/// Grid points the kernel cannot be decomposed across (see
/// [`Workload::supports_processes`](memhier_workloads::registry::Workload::supports_processes))
/// are passed over in rank order for the next feasible candidate, so a
/// searched grid never panics the simulator.
pub fn run_optimize(req: &OptimizeRequest) -> Result<OptimizeReport, CostError> {
    let (mut report, eval) = memhier_cost::analyze_eval(req)?;
    let finalists = req.confirm.min(eval.feasible.len());
    if req.confirm == 0 || finalists == 0 {
        return Ok(report);
    }

    let kind = match &req.workload {
        WorkloadSpec::Named(name) => workload_kind_by_name(name)
            .map_err(|_| CostError::Unsimulatable(format!("no simulator kernel for `{name}`")))?,
        WorkloadSpec::Custom { .. } => {
            return Err(CostError::Unsimulatable(
                "custom (alpha, beta, rho) workloads have no simulator kernel; \
                 set `confirm` to 0 for analytic-only search"
                    .to_string(),
            ))
        }
    };
    let sizes =
        sizes_by_name(&req.confirm_size).map_err(|e| CostError::Invalid("confirm_size", e))?;
    let workload = sizes.workload(kind);

    // Pick the finalists in rank order, passing over grid points the
    // kernel has no decomposition for (e.g. Radix needs the process
    // count to divide the key count) in favor of the next-ranked
    // candidate — a searched grid is not a curated config list.
    let selected: Vec<usize> = eval
        .feasible
        .iter()
        .enumerate()
        .filter(|(_, r)| workload.supports_processes(r.spec.total_procs() as usize))
        .map(|(i, _)| i)
        .take(finalists)
        .collect();

    // The shortlist must show every simulated finalist; skipping can
    // push a finalist past the `top.max(confirm)` prefix `analyze_eval`
    // ranked, so extend it (it stays a rank-ordered prefix of the
    // feasible set).
    if let Some(&deepest) = selected.last() {
        while report.ranked.len() <= deepest {
            let next = &eval.feasible[report.ranked.len()];
            report
                .ranked
                .push(memhier_cost::RankedEntry::from_ranked(next));
        }
    }

    // One grid point per selected finalist, in rank order, so sweep
    // index `i` maps onto `report.ranked[selected[i]]`.  The plan
    // inherits the ambient jobs pool, sim-threads setting, and
    // checkpoint journal.
    let mut plan = SweepPlan::new("optimize", sizes);
    for &i in &selected {
        plan = plan.point(&eval.feasible[i].spec, kind);
    }
    let results = run_sweep(&plan);

    for pr in &results {
        debug_assert!(pr.index < selected.len());
        if let Some(entry) = report.ranked.get_mut(selected[pr.index]) {
            entry.simulated = Some(SimConfirmation {
                size: req.confirm_size.clone(),
                seconds: pr.run.report.e_instr_seconds,
                wall_cycles: pr.run.report.wall_cycles,
            });
        }
    }
    // Quarantined points (fault injection / panics) are dropped by the
    // sweep runner, so `confirmed` counts what actually ran.
    report.search.set_confirmed(results.len());

    // The recommendation follows the simulator once it has spoken.
    report.best = report
        .ranked
        .iter()
        .filter(|e| e.simulated.is_some())
        .min_by(|a, b| {
            let (sa, sb) = (
                a.simulated.as_ref().expect("filtered").seconds,
                b.simulated.as_ref().expect("filtered").seconds,
            );
            sa.total_cmp(&sb).then(a.cost.total_cmp(&b.cost))
        })
        .cloned()
        .or(report.best);
    Ok(report)
}

/// Resolve a recommend request into the typed report, running the
/// trace-measurement and budget-ranking stages as asked: the one entry
/// point behind `memhier recommend` and `memhierd`'s `/v1/recommend`.
pub fn run_recommend(
    req: &memhier_cost::RecommendRequest,
) -> Result<memhier_cost::RecommendReport, CostError> {
    let params = match (&req.workload, req.measure) {
        (WorkloadSpec::Named(name), true) => {
            let kind = workload_kind_by_name(name).map_err(|_| {
                CostError::Invalid("measure", format!("no simulator kernel for `{name}`"))
            })?;
            let sizes = sizes_by_name(req.size.as_deref().unwrap_or("small"))
                .map_err(|e| CostError::Invalid("size", e))?;
            crate::sweeprun::characterize_cached(&sizes.workload(kind), 64).to_model_params()
        }
        _ => req.workload.resolve()?,
    };
    let rec = memhier_cost::recommend(&params);
    let ranked = match req.budget {
        None => None,
        Some(budget) => {
            let ranked = memhier_cost::optimize(
                budget,
                &params,
                &memhier_core::model::AnalyticModel::default(),
                &req.prices,
                &memhier_cost::CandidateSpace::paper_market(),
            );
            Some(
                ranked
                    .iter()
                    .take(req.top.max(1))
                    .map(memhier_cost::RankedEntry::from_ranked)
                    .collect(),
            )
        }
    };
    Ok(memhier_cost::RecommendReport::new(&params, &rec, ranked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_cost::WorkloadSpec;

    fn small_request(confirm: usize) -> OptimizeRequest {
        let mut req = OptimizeRequest::new(WorkloadSpec::named("LU").unwrap(), 8_000.0);
        // A compact grid keeps the test fast while still exercising the
        // prune → confirm pipeline.
        req.search_space.max_machines = 4;
        req.search_space.memory_mb = vec![32, 64];
        req.confirm = confirm;
        req
    }

    #[test]
    fn analytic_only_leaves_confirmed_zero() {
        let report = run_optimize(&small_request(0)).unwrap();
        assert_eq!(report.search.confirmed, 0);
        assert!(report.ranked.iter().all(|e| e.simulated.is_none()));
        assert_eq!(report.search.pruning_ratio, 1.0);
    }

    #[test]
    fn confirmation_attaches_sims_and_updates_ratio() {
        let report = run_optimize(&small_request(2)).unwrap();
        assert_eq!(report.search.confirmed, 2);
        let simulated: Vec<_> = report
            .ranked
            .iter()
            .filter(|e| e.simulated.is_some())
            .collect();
        assert_eq!(simulated.len(), 2);
        // The two finalists are the head of the ranked list.
        assert!(report.ranked[0].simulated.is_some());
        assert!(report.ranked[1].simulated.is_some());
        let best = report.best.as_ref().unwrap();
        assert!(best.simulated.is_some(), "best must be sim-confirmed");
        assert!(
            report.search.pruning_ratio < 1.0
                && report.search.pruning_ratio > 1.0 - 3.0 / report.search.candidates as f64
        );
    }

    #[test]
    fn undivisible_grid_points_are_passed_over() {
        // small Radix sorts 16 K keys: no 3-process decomposition exists
        // (3 ∤ 2^14), so the 3-machine workstation cluster must be
        // skipped in favor of the next-ranked finalist, not panic the
        // simulator.
        let mut req = OptimizeRequest::new(WorkloadSpec::named("Radix").unwrap(), 30_000.0);
        req.search_space.proc_counts = vec![1];
        req.search_space.cache_kb = vec![256];
        req.search_space.memory_mb = vec![64];
        req.search_space.max_machines = 3;
        req.confirm = 8;
        let report = run_optimize(&req).unwrap();

        let eval = memhier_cost::analyze_eval(&req).unwrap().1;
        let workload = sizes_by_name(&req.confirm_size)
            .unwrap()
            .workload(workload_kind_by_name("Radix").unwrap());
        let compatible = eval
            .feasible
            .iter()
            .filter(|r| workload.supports_processes(r.spec.total_procs() as usize))
            .count();
        assert!(
            compatible < eval.feasible.len(),
            "grid must contain an undivisible point for this test to bite"
        );
        assert_eq!(report.search.confirmed, compatible);
        assert!(report.best.unwrap().simulated.is_some());
    }

    #[test]
    fn custom_workload_cannot_confirm() {
        let mut req = OptimizeRequest::new(
            WorkloadSpec::Custom {
                alpha: 1.3,
                beta: 90.0,
                rho: 0.31,
            },
            8_000.0,
        );
        req.confirm = 2;
        assert!(matches!(
            run_optimize(&req),
            Err(CostError::Unsimulatable(_))
        ));
        req.confirm = 0;
        assert!(run_optimize(&req).is_ok());
    }
}
