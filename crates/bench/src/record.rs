//! Trace recording: tap a simulated scenario's address stream into a
//! `.mtr` file (the front half of the paper's §7 toolchain — "an
//! efficient tool to collect application program memory access traces").
//!
//! [`TraceRecorder`] is a [`SimObserver`] that appends every observed
//! access address to a streaming [`TraceWriter`]; [`record_scenario`]
//! runs a [`Scenario`] with the recorder attached and finalizes the file
//! with the run's total instruction count (so `memhier fit` can recover
//! ρ).  Observer event order is engine-thread-invariant (pinned by the
//! `thread_invariance` tests), so the recorded bytes are identical at
//! any `--sim-threads` and any `--jobs` setting.

use crate::scenario::Scenario;
use memhier_core::machine::LatencyParams;
use memhier_sim::backend::ClusterBackend;
use memhier_sim::engine::{ProcSource, SimSession};
use memhier_sim::observe::{AccessObservation, SimObserver};
use memhier_trace::format::{TraceError, TraceWriter};
use memhier_workloads::spmd::{home_map_for, stream_spmd};
use std::any::Any;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

/// A [`SimObserver`] that streams every accessed address into an open
/// [`TraceWriter`].  The first write error stops recording and is
/// surfaced when the recorder is finalized.
pub struct TraceRecorder {
    writer: Option<TraceWriter<BufWriter<File>>>,
    error: Option<TraceError>,
}

impl TraceRecorder {
    /// Start recording into a fresh trace file at `path` (raw byte
    /// addresses: header granularity 1; analysis granularity is chosen
    /// at fit time).
    pub fn create(path: &Path) -> Result<Self, TraceError> {
        Ok(TraceRecorder {
            writer: Some(TraceWriter::create(path, 1)?),
            error: None,
        })
    }

    /// Addresses recorded so far.
    pub fn records(&self) -> u64 {
        self.writer.as_ref().map_or(0, |w| w.records())
    }

    /// Finalize the trace file with the run's total instruction count,
    /// returning the record count (or the first error the recorder hit).
    pub fn finish(mut self, total_instructions: u64) -> Result<u64, TraceError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer
            .take()
            .expect("writer present unless an error was taken")
            .finish(total_instructions)
    }
}

impl SimObserver for TraceRecorder {
    fn on_access(&mut self, o: &AccessObservation) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.record(o.addr) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// What [`record_scenario`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSummary {
    /// Address records written.
    pub records: u64,
    /// Total instructions (memory + compute) the run executed — the ρ
    /// denominator, also stored in the trace header.
    pub total_instructions: u64,
}

/// Run `scenario` with a [`TraceRecorder`] tapped in and write its
/// address stream to `path` as a finalized `.mtr` trace.
///
/// The recorder rides alongside whatever observers the scenario already
/// configures; like all observers it cannot perturb simulated time, so
/// recording a run does not change its report.
pub fn record_scenario(scenario: &Scenario, path: &Path) -> Result<RecordSummary, TraceError> {
    let workload = scenario.size.workload(scenario.workload);
    let cluster = scenario.config.clone();
    let latency = LatencyParams::paper();
    let sim_threads = scenario.resolved_sim_threads();
    let procs = cluster.total_procs() as usize;
    if !workload.supports_processes(procs) {
        return Err(TraceError::Invalid(
            "scenario",
            format!(
                "{:?} does not decompose into {procs} processes on this config",
                scenario.workload
            ),
        ));
    }
    let recorder = TraceRecorder::create(path)?;
    let program = workload.instantiate(procs);
    let home = home_map_for(
        &*program,
        cluster.machines as usize,
        cluster.machine.n_procs as usize,
        256,
    );
    let backend = ClusterBackend::new(&cluster, latency, home);
    let (mut out, counters) = stream_spmd(program, move |rxs| {
        SimSession::new(backend)
            .with_sources(rxs.into_iter().map(ProcSource::Channel).collect())
            .observe(recorder)
            .sim_threads(sim_threads)
            .run()
    });
    let recorder = out
        .take_observer::<TraceRecorder>()
        .expect("recorder attached above");
    let total_instructions = counters.total_instructions();
    let records = recorder.finish(total_instructions)?;
    Ok(RecordSummary {
        records,
        total_instructions,
    })
}
