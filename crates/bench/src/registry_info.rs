//! The registry listing: one JSON document describing every registered
//! workload, platform back-end, and network medium, with their typed
//! parameter schemas.
//!
//! `memhier workloads`, `memhier platforms`, and memhierd's
//! `GET /v1/registry` all render from [`registry_json`], so the CLI and
//! the service stay byte-for-byte interchangeable (pinned by
//! `serve_parity.rs`).

use crate::names::paper_params;
use memhier_core::machine::NetworkKind;
use memhier_core::{platform_specs, ParamInfo};
use memhier_workloads::workload_specs;
use serde_json::Value;

fn str_array(items: &[&str]) -> Value {
    Value::Array(items.iter().map(|s| Value::String(s.to_string())).collect())
}

fn params_json(params: &[ParamInfo]) -> Value {
    Value::Array(
        params
            .iter()
            .map(|p| {
                serde_json::json!({
                    "name": p.name,
                    "kind": p.kind,
                    "about": p.about,
                    "default": p.default,
                })
            })
            .collect(),
    )
}

/// Every registered workload, in registration order (built-ins first).
/// Kinds with paper-style `(α, β, ρ)` characterizations carry them under
/// `paper`.
pub fn workloads_json() -> Value {
    Value::Array(
        workload_specs()
            .iter()
            .map(|spec| {
                let mut fields = vec![
                    ("key".to_string(), Value::String(spec.key().to_string())),
                    ("aliases".to_string(), str_array(spec.aliases())),
                    (
                        "description".to_string(),
                        Value::String(spec.description().to_string()),
                    ),
                    ("params".to_string(), params_json(spec.params())),
                ];
                if let Some(kind) = spec.kind() {
                    let w = paper_params(kind);
                    fields.push((
                        "paper".to_string(),
                        serde_json::json!({
                            "alpha": w.locality.alpha,
                            "beta": w.locality.beta,
                            "rho": w.rho,
                        }),
                    ));
                }
                Value::Object(fields)
            })
            .collect(),
    )
}

/// Every registered platform back-end, in registration order.
pub fn platforms_json() -> Value {
    Value::Array(
        platform_specs()
            .iter()
            .map(|spec| {
                serde_json::json!({
                    "key": spec.key(),
                    "aliases": str_array(spec.aliases()),
                    "description": spec.description(),
                    "params": params_json(spec.params()),
                })
            })
            .collect(),
    )
}

/// Every registered network medium, in registration order.
pub fn networks_json() -> Value {
    Value::Array(
        NetworkKind::registered()
            .iter()
            .map(|net| {
                let s = net.spec();
                serde_json::json!({
                    "key": s.key,
                    "wire": s.wire,
                    "aliases": str_array(s.aliases),
                    "description": s.description,
                    "mbps": s.mbps,
                })
            })
            .collect(),
    )
}

/// The full registry document: workloads, platforms, and networks.
pub fn registry_json() -> Value {
    serde_json::json!({
        "workloads": workloads_json(),
        "platforms": platforms_json(),
        "networks": networks_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_every_builtin() {
        let doc = registry_json();
        let keys = |section: &str| -> Vec<String> {
            doc.get(section)
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|e| e.get("key").and_then(Value::as_str).unwrap().to_string())
                .collect()
        };
        let workloads = keys("workloads");
        for k in [
            "FFT",
            "LU",
            "Radix",
            "EDGE",
            "TPC-C",
            "Stencil4D",
            "Stream",
            "GraphWalk",
            "Inference",
        ] {
            assert!(workloads.contains(&k.to_string()), "workload {k}");
        }
        let platforms = keys("platforms");
        for k in [
            "uniprocessor",
            "smp",
            "cow",
            "clump",
            "numa-smp",
            "fattree-cow",
        ] {
            assert!(platforms.contains(&k.to_string()), "platform {k}");
        }
        let networks = keys("networks");
        for k in ["Ethernet10", "Ethernet100", "Atm155", "FatTree"] {
            assert!(networks.contains(&k.to_string()), "network {k}");
        }
    }

    #[test]
    fn every_entry_has_a_schema_and_description() {
        let doc = registry_json();
        for section in ["workloads", "platforms"] {
            for e in doc.get(section).and_then(Value::as_array).unwrap() {
                assert!(!e
                    .get("description")
                    .and_then(Value::as_str)
                    .unwrap()
                    .is_empty());
                let params = e.get("params").and_then(Value::as_array).unwrap();
                assert!(!params.is_empty(), "{section} entries declare parameters");
                for p in params {
                    for field in ["name", "kind", "about", "default"] {
                        assert!(p.get(field).and_then(Value::as_str).is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn builtin_workloads_carry_paper_params() {
        let doc = registry_json();
        for e in doc.get("workloads").and_then(Value::as_array).unwrap() {
            let paper = e.get("paper").expect("built-ins have paper params");
            assert!(paper.get("alpha").and_then(Value::as_f64).unwrap() > 1.0);
        }
    }
}
