//! Glue between the workloads, the trace analyzer, the simulator, and the
//! analytic model.

use memhier_core::locality::WorkloadParams;
use memhier_core::machine::LatencyParams;
use memhier_core::platform::ClusterSpec;
use memhier_sim::backend::ClusterBackend;
use memhier_sim::engine::{ProcSource, SimSession};
use memhier_sim::observe::{EventTracer, MetricsSeries, TimeSeriesCollector, TraceLog};
use memhier_sim::report::SimReport;
use memhier_trace::{fit_locality, StackDistanceAnalyzer};
use memhier_workloads::registry::{Workload, WorkloadKind};
use memhier_workloads::spmd::{home_map_for, stream_spmd, ProcCounters};
use serde::{Deserialize, Serialize};

/// Problem-size tier for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sizes {
    /// Tiny (CI tests).
    Small,
    /// Default for the experiment binaries: minutes, not hours.
    Medium,
    /// The paper's §5.2 sizes (pass `--paper` to the binaries).
    Paper,
}

/// Serializes as the lowercase tier name the CLI flags and `memhierd`
/// bodies use (`"small" | "medium" | "paper"`).
impl Serialize for Sizes {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::Value::String(crate::scenario::size_name(*self).to_string())
    }
}

impl Deserialize for Sizes {
    fn from_json_value(v: serde_json::Value) -> Result<Self, String> {
        let name = v.as_str().ok_or("size must be a string")?;
        crate::names::sizes_by_name(name)
    }
}

impl Sizes {
    /// Resolve a workload at this tier.
    pub fn workload(&self, kind: WorkloadKind) -> Workload {
        match self {
            Sizes::Small => Workload::small(kind),
            Sizes::Medium => Workload::medium(kind),
            Sizes::Paper => Workload::paper(kind),
        }
    }

    /// Parse from a CLI flag (`--paper`, `--small`, default medium).
    pub fn from_args(args: &[String]) -> Sizes {
        if args.iter().any(|a| a == "--paper") {
            Sizes::Paper
        } else if args.iter().any(|a| a == "--small") {
            Sizes::Small
        } else {
            Sizes::Medium
        }
    }
}

/// One simulation run's outputs.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The simulator's report.
    pub report: SimReport,
    /// The workload's instruction counters.
    pub counters: ProcCounters,
}

/// Run `workload` on `cluster` through the full program-driven simulator
/// with the paper's latency table.
pub fn simulate_workload(workload: &Workload, cluster: &ClusterSpec) -> SimRun {
    simulate_workload_with(workload, cluster, &LatencyParams::paper())
}

/// [`simulate_workload`] with an explicit latency table — the primitive
/// the sweep runner fans out over worker threads, so everything it
/// touches must be owned or `Send` (checked at compile time below).
pub fn simulate_workload_with(
    workload: &Workload,
    cluster: &ClusterSpec,
    latency: &LatencyParams,
) -> SimRun {
    simulate_workload_observed(workload, cluster, latency, &ObserverConfig::default()).run
}

/// Which observers to attach to a simulated run.  The default attaches
/// none, which keeps the engine's hot loop snapshot-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverConfig {
    /// Attach a [`TimeSeriesCollector`] with this window width (cycles).
    pub metrics_window: Option<u64>,
    /// Attach an [`EventTracer`] bounded to this many events.
    pub trace_capacity: Option<usize>,
}

impl ObserverConfig {
    /// Whether any observer is requested.
    pub fn is_active(&self) -> bool {
        self.metrics_window.is_some() || self.trace_capacity.is_some()
    }
}

/// A simulation run plus whatever the configured observers collected.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The plain run outputs.
    pub run: SimRun,
    /// Windowed metrics, when [`ObserverConfig::metrics_window`] was set.
    pub metrics: Option<MetricsSeries>,
    /// Bounded event trace, when [`ObserverConfig::trace_capacity`] was set.
    pub trace: Option<TraceLog>,
}

/// [`simulate_workload_with`] plus observers: the full observability
/// entry point the sweep runner and the CLI's `--metrics`/`--trace`
/// flags go through.  The engine choice comes from the ambient
/// `--sim-threads` / `MEMHIER_SIM_THREADS` setting (see
/// [`crate::sweeprun::sim_threads`]); use [`simulate_workload_threads`]
/// to pin it explicitly.
pub fn simulate_workload_observed(
    workload: &Workload,
    cluster: &ClusterSpec,
    latency: &LatencyParams,
    observers: &ObserverConfig,
) -> ObservedRun {
    simulate_workload_threads(
        workload,
        cluster,
        latency,
        observers,
        crate::sweeprun::sim_threads().unwrap_or(0),
    )
}

/// [`simulate_workload_observed`] with an explicit engine selection:
/// `sim_threads = 0` runs the classic conservative engine (the golden
/// fixtures' pinned semantics), `n ≥ 1` runs the epoch-parallel engine
/// on `n` host threads (results identical for every `n`).
pub fn simulate_workload_threads(
    workload: &Workload,
    cluster: &ClusterSpec,
    latency: &LatencyParams,
    observers: &ObserverConfig,
    sim_threads: usize,
) -> ObservedRun {
    let procs = cluster.total_procs() as usize;
    let program = workload.instantiate(procs);
    let home = home_map_for(
        &*program,
        cluster.machines as usize,
        cluster.machine.n_procs as usize,
        256,
    );
    let backend = ClusterBackend::new(cluster, latency.clone(), home);
    let cfg = *observers;
    let (out, counters) = stream_spmd(program, move |rxs| {
        let mut session = SimSession::new(backend)
            .with_sources(rxs.into_iter().map(ProcSource::Channel).collect())
            .sim_threads(sim_threads);
        if let Some(window) = cfg.metrics_window {
            session = session.observe(TimeSeriesCollector::new(window));
        }
        if let Some(cap) = cfg.trace_capacity {
            session = session.observe(EventTracer::new(cap));
        }
        session.run()
    });
    let metrics = out
        .observer::<TimeSeriesCollector>()
        .map(|c| c.series().clone());
    let trace = out.observer::<EventTracer>().map(|t| t.log().clone());
    ObservedRun {
        run: SimRun {
            report: out.report,
            counters,
        },
        metrics,
        trace,
    }
}

// Send audit for the sweep runner: every input a worker thread closes
// over when running one grid point.  A non-`Send` field sneaking into
// any of these types turns into a compile error here instead of a
// trait-bound error deep inside rayon.
#[allow(dead_code)]
fn _sweep_inputs_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Workload>();
    assert_send::<ClusterSpec>();
    assert_send::<LatencyParams>();
    assert_send::<ClusterBackend>();
    assert_send::<SimRun>();
    assert_send::<ObserverConfig>();
    assert_send::<ObservedRun>();
    assert_send::<Characterization>();
}

/// A workload's measured characterization — our reproduction of Table 2's
/// per-program `(α, β, ρ)` row, with fit quality and footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Characterization {
    /// Workload name.
    pub name: String,
    /// Fitted locality shape `α`.
    pub alpha: f64,
    /// Fitted locality scale `β` (bytes).
    pub beta: f64,
    /// Log-domain fit quality.
    pub r_squared: f64,
    /// Measured `ρ = M/(m+M)`.
    pub rho: f64,
    /// Measured barriers per instruction.
    pub barrier_rate: f64,
    /// Unique bytes touched.
    pub footprint_bytes: f64,
    /// Memory references analyzed.
    pub refs: u64,
    /// Store share of references (informs the model's dirty fraction).
    pub write_fraction: f64,
    /// Fraction of references touching data owned by another process,
    /// measured on a 4-process decomposition (drives the model's
    /// remote-level sharing flow).
    pub sharing_fraction: f64,
}

impl Characterization {
    /// Convert to the analytic model's workload parameters.
    pub fn to_model_params(&self) -> WorkloadParams {
        WorkloadParams::new(
            self.name.clone(),
            self.alpha.max(1.0001),
            self.beta.max(1.01),
            self.rho,
        )
        .expect("measured parameters are in range")
        .with_footprint(self.footprint_bytes.max(1.0))
        .with_barrier_rate(self.barrier_rate)
        .with_dirty_fraction((self.write_fraction * 0.7).clamp(0.05, 0.6))
        .with_sharing_fraction(self.sharing_fraction)
    }
}

/// Run `workload` on one process, stream its address trace through the
/// exact stack-distance analyzer, and fit `(α, β)` — the paper's §5.2
/// methodology ("we first collected the values of α and β of the four
/// applications on a one-processor system").
pub fn characterize(workload: &Workload, granularity: u64) -> Characterization {
    let program = workload.instantiate(1);
    let name = program.name().to_string();
    let (analyzer, counters) = stream_spmd(program, |rxs| {
        let rx = rxs.into_iter().next().expect("one process");
        let mut an = StackDistanceAnalyzer::new(granularity);
        while let Ok(batch) = rx.recv() {
            for ev in batch {
                if let Some(addr) = ev.address() {
                    an.access(addr);
                }
            }
        }
        an
    });
    let hist = analyzer.histogram();
    let fit = fit_locality(&hist.cdf_points()).unwrap_or(memhier_trace::FitResult {
        alpha: 1.5,
        beta: 100.0,
        r_squared: 0.0,
        points: 0,
    });
    Characterization {
        name,
        alpha: fit.alpha,
        beta: fit.beta,
        r_squared: fit.r_squared,
        rho: counters.rho(),
        barrier_rate: counters.barriers as f64 / counters.total_instructions().max(1) as f64,
        footprint_bytes: analyzer.unique_blocks() as f64 * granularity as f64,
        refs: counters.mem_refs(),
        write_fraction: counters.writes as f64 / counters.mem_refs().max(1) as f64,
        sharing_fraction: measure_sharing(workload, 4),
    }
}

/// Measure the fraction of references touching data owned by another
/// process, on a `procs`-way decomposition of `workload`.  Unpartitioned
/// addresses (e.g. a shared table) count as shared.
pub fn measure_sharing(workload: &Workload, procs: usize) -> f64 {
    let program = workload.instantiate(procs);
    // Sorted partition table for binary-search ownership lookup.
    let mut parts = program.partitions();
    parts.sort_unstable();
    let owner = move |addr: u64| -> Option<usize> {
        let pos = parts.partition_point(|&(s, _, _)| s <= addr);
        if pos > 0 {
            let (s, e, p) = parts[pos - 1];
            if addr >= s && addr < e {
                return Some(p);
            }
        }
        None
    };
    let owner = std::sync::Arc::new(owner);
    let ((shared, total), _) = stream_spmd(program, move |rxs| {
        // One counting thread per process stream (fair, deadlock-free).
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(pid, rx)| {
                let owner = std::sync::Arc::clone(&owner);
                std::thread::spawn(move || {
                    let mut shared = 0u64;
                    let mut total = 0u64;
                    while let Ok(batch) = rx.recv() {
                        for ev in batch {
                            if let Some(addr) = ev.address() {
                                total += 1;
                                if owner(addr) != Some(pid) {
                                    shared += 1;
                                }
                            }
                        }
                    }
                    (shared, total)
                })
            })
            .collect();
        let mut shared = 0u64;
        let mut total = 0u64;
        for h in handles {
            let (s, t) = h.join().expect("counter thread");
            shared += s;
            total += t;
        }
        (shared, total)
    });
    if total == 0 {
        0.0
    } else {
        shared as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::{MachineSpec, NetworkKind};

    #[test]
    fn characterize_small_fft() {
        let c = characterize(&Sizes::Small.workload(WorkloadKind::Fft), 64);
        assert_eq!(c.name, "FFT");
        assert!(c.alpha > 1.0, "alpha {}", c.alpha);
        assert!(c.beta > 1.0);
        assert!(c.rho > 0.1 && c.rho < 0.9, "rho {}", c.rho);
        assert!(c.refs > 10_000);
        assert!(c.footprint_bytes > 0.0);
        // Model params conversion is valid.
        let w = c.to_model_params();
        assert_eq!(w.name, "FFT");
    }

    #[test]
    fn simulate_small_fft_on_smp() {
        let cluster = ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0));
        let run = simulate_workload(&Sizes::Small.workload(WorkloadKind::Fft), &cluster);
        assert!(run.report.wall_cycles > 0);
        assert!(run.report.e_instr_cycles > 0.5);
        assert_eq!(run.report.total_refs, run.counters.mem_refs());
        assert!(run.report.levels.l1_hits > run.report.levels.local_memory);
    }

    #[test]
    fn simulate_small_radix_on_cow() {
        let cluster = ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet100,
        );
        let run = simulate_workload(&Sizes::Small.workload(WorkloadKind::Radix), &cluster);
        // Radix's permute phase must generate remote traffic.
        let remote = run.report.levels.remote_clean + run.report.levels.remote_dirty;
        assert!(remote > 0, "no remote traffic: {:?}", run.report.levels);
        assert!(run.report.barriers > 0);
    }

    #[test]
    fn sizes_from_args() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(Sizes::from_args(&a(&["--paper"])), Sizes::Paper);
        assert_eq!(Sizes::from_args(&a(&["--small"])), Sizes::Small);
        assert_eq!(Sizes::from_args(&a(&[])), Sizes::Medium);
    }
}
