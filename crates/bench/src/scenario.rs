//! The unified `Scenario` API: one canonical description of "run this
//! workload on this platform, with these observers and faults".
//!
//! Before this module, the CLI, `memhierd`, and the sweep runner each
//! grew their own config path (flag strings, ad-hoc JSON fields, and
//! `SweepPlan` construction respectively).  A [`Scenario`] is now the
//! single value all three construct and hand to the simulator:
//!
//! * the CLI's `simulate`/`sweep` subcommands parse their flags into
//!   `Scenario`s;
//! * `memhierd`'s `/v1/simulate` body **is** a `Scenario` in its JSON
//!   form, and `/v1/sweep` expands into one `Scenario` per grid point;
//! * [`Scenario::sweep_plan`] turns a uniform batch into a
//!   [`SweepPlan`] for the parallel runner.
//!
//! # Forms
//!
//! A scenario has three interchangeable spellings, all accepted by its
//! [`FromStr`] impl and round-tripped by [`Display`](fmt::Display) /
//! [`Scenario::to_json`]:
//!
//! * **builder** — [`Scenario::builder()`] with typed setters;
//! * **compact string** — `CONFIG:WORKLOAD[:SIZE]`, e.g. `C5:FFT:small`
//!   (size defaults to `medium`, matching the CLI);
//! * **JSON object** — `{"config": "C5", "workload": "FFT", "size":
//!   "small", "metrics_window": 1000, "trace_capacity": 4096, "faults":
//!   "point:panic:nth=2"}`.  `config` is the paper name (`C1`..`C15`) or
//!   a full inline [`ClusterSpec`] object; optional fields are omitted
//!   when at their defaults, so *builder → JSON → parse → JSON* is a
//!   fixed point (locked in by `tests/scenario_roundtrip.rs`).
//!
//! Parsing reports typed [`ScenarioError`]s, which convert into
//! `memhier::MemhierError` (and `memhierd`'s HTTP 400s) instead of the
//! bare `String`s the entry points used before.

use crate::faults::FaultPlan;
use crate::names::{config_by_name, sizes_by_name, workload_kind_by_name};
use crate::runner::{simulate_workload_threads, ObservedRun, ObserverConfig, Sizes};
use crate::sweeprun::SweepPlan;
use memhier_core::machine::LatencyParams;
use memhier_core::platform::ClusterSpec;
use memhier_core::{platform_by_key, platform_keys};
use memhier_workloads::registry::{Workload, WorkloadKind};
use memhier_workloads::{workload_by_key, workload_keys, ResolvedWorkload};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;
use std::str::FromStr;

/// Why a [`Scenario`] could not be built or parsed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The named configuration is not one of the paper's `C1`..`C15`.
    UnknownConfig(String),
    /// The named workload is not a known kernel.
    UnknownWorkload(String),
    /// The named problem-size tier is not `small|medium|paper`.
    UnknownSize(String),
    /// A required field was never supplied.
    Missing(&'static str),
    /// A field was present but malformed (field name, why).
    Invalid(&'static str, String),
    /// An object key no scenario field matches (typo guard).
    UnknownField(String),
    /// The input was not valid JSON / not a recognized compact form.
    Syntax(String),
    /// A batch operation needs every scenario to agree on a field.
    Mixed(&'static str),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownConfig(name) => {
                write!(f, "unknown config `{name}` (try `memhier configs`)")
            }
            ScenarioError::UnknownWorkload(name) => {
                // The alternatives come from the live registry, so a
                // workload registered at runtime appears here too.
                write!(
                    f,
                    "unknown workload `{name}` ({})",
                    workload_keys().join("|")
                )
            }
            ScenarioError::UnknownSize(name) => {
                write!(f, "unknown size `{name}` (small|medium|paper)")
            }
            ScenarioError::Missing(field) => write!(f, "`{field}` is required"),
            ScenarioError::Invalid(field, why) => write!(f, "`{field}`: {why}"),
            ScenarioError::UnknownField(key) => write!(f, "unknown scenario field `{key}`"),
            ScenarioError::Syntax(why) => write!(f, "malformed scenario: {why}"),
            ScenarioError::Mixed(field) => {
                write!(f, "scenarios in one sweep must share the same `{field}`")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Everything needed to simulate one run: the platform, the workload and
/// its problem size, which observers to attach, and what faults to
/// inject.  Construct via [`Scenario::builder`], a compact string, or
/// JSON (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The cluster to simulate.
    pub config: ClusterSpec,
    /// The kernel to run on it.
    pub workload: WorkloadKind,
    /// Registry parameter overrides for the workload (the JSON `params`
    /// map of the `{"key": ..., "params": {...}}` form); `None` runs the
    /// size tier's stock problem.  Validated against the workload's
    /// parameter schema when the scenario is built.
    pub workload_params: Option<Value>,
    /// Problem-size tier.
    pub size: Sizes,
    /// Observers attached to the run (default: none — the engine's hot
    /// loop stays observer-free).
    pub observers: ObserverConfig,
    /// Intra-scenario engine threads: `Some(n)` pins the epoch-parallel
    /// engine on `n` host threads (`Some(0)` pins the classic engine),
    /// `None` defers to the ambient `--sim-threads` /
    /// `MEMHIER_SIM_THREADS` setting.
    pub sim_threads: Option<usize>,
    /// Deterministic fault-injection plan (default: empty).
    pub faults: FaultPlan,
}

impl Scenario {
    /// Start a builder (size defaults to [`Sizes::Medium`], matching a
    /// flagless `memhier simulate`).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Run the scenario through the program-driven simulator with the
    /// paper's latency table.
    pub fn run(&self) -> ObservedRun {
        simulate_workload_threads(
            &self.resolved_workload(),
            &self.config,
            &LatencyParams::paper(),
            &self.observers,
            self.resolved_sim_threads(),
        )
    }

    /// The sized workload this scenario simulates: the size tier's stock
    /// problem, with any registry parameter overrides applied.
    pub fn resolved_workload(&self) -> Workload {
        match &self.workload_params {
            None => self.size.workload(self.workload),
            Some(params) => resolve_workload_params(self.workload, self.size, params)
                .expect("workload params were validated when the scenario was built"),
        }
    }

    /// The engine selection this scenario runs with: its own pin, else
    /// the ambient [`crate::sweeprun::sim_threads`] setting, else the
    /// classic engine.
    pub fn resolved_sim_threads(&self) -> usize {
        self.sim_threads
            .or_else(crate::sweeprun::sim_threads)
            .unwrap_or(0)
    }

    /// The canonical JSON form.  `config` collapses to its paper name
    /// when it has one; fields at their defaults are omitted, so parsing
    /// this value back yields `self` and re-serializing yields the same
    /// JSON (the round-trip fixed point).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            (
                "config".to_string(),
                match &self.config.name {
                    Some(name) => Value::String(name.clone()),
                    None => serde_json::to_value(&self.config).unwrap_or(Value::Null),
                },
            ),
            (
                "workload".to_string(),
                match &self.workload_params {
                    None => Value::String(self.workload.name().to_string()),
                    Some(params) => Value::Object(vec![
                        (
                            "key".to_string(),
                            Value::String(self.workload.name().to_string()),
                        ),
                        ("params".to_string(), params.clone()),
                    ]),
                },
            ),
            (
                "size".to_string(),
                Value::String(size_name(self.size).to_string()),
            ),
        ];
        if let Some(w) = self.observers.metrics_window {
            fields.push((
                "metrics_window".to_string(),
                serde_json::to_value(&w).unwrap(),
            ));
        }
        if let Some(cap) = self.observers.trace_capacity {
            fields.push((
                "trace_capacity".to_string(),
                serde_json::to_value(&cap).unwrap(),
            ));
        }
        if let Some(threads) = self.sim_threads {
            fields.push((
                "sim_threads".to_string(),
                serde_json::to_value(&(threads as u64)).unwrap(),
            ));
        }
        if !self.faults.is_empty() {
            fields.push(("faults".to_string(), Value::String(self.faults.to_string())));
        }
        Value::Object(fields)
    }

    /// Parse the JSON form (see the module docs).  Missing `size`
    /// defaults to `medium`; unknown keys are rejected so a typo'd field
    /// fails loudly instead of being silently ignored.
    pub fn from_json(v: &Value) -> Result<Scenario, ScenarioError> {
        Scenario::from_json_default(v, Sizes::Medium)
    }

    /// [`Scenario::from_json`] with an explicit default for a missing
    /// `size` field (`memhierd`'s sweep endpoint defaults to `small`
    /// where the CLI defaults to `medium`).
    pub fn from_json_default(v: &Value, default_size: Sizes) -> Result<Scenario, ScenarioError> {
        let fields = match v {
            Value::Object(fields) => fields,
            _ => {
                return Err(ScenarioError::Syntax(
                    "a scenario must be a JSON object".to_string(),
                ))
            }
        };
        let mut b = Scenario::builder().size(default_size);
        for (key, value) in fields {
            match key.as_str() {
                "config" => {
                    b = match value {
                        Value::String(name) => b.config_name(name),
                        Value::Object(_) if value.get("platform").is_some() => {
                            b.config(platform_config_from_json(value)?)
                        }
                        Value::Object(_) => {
                            let spec = ClusterSpec::from_json_value(value.clone())
                                .map_err(|e| ScenarioError::Invalid("config", e))?;
                            b.config(spec)
                        }
                        _ => {
                            return Err(ScenarioError::Invalid(
                                "config",
                                "must be a name string, a {platform, params} object, \
                                 or a cluster-spec object"
                                    .to_string(),
                            ))
                        }
                    };
                }
                "workload" => {
                    b = match value {
                        Value::String(name) => b.workload_name(name),
                        Value::Object(fields) => {
                            for (k, _) in fields {
                                if k != "key" && k != "params" {
                                    return Err(ScenarioError::UnknownField(format!(
                                        "workload.{k}"
                                    )));
                                }
                            }
                            let key = value.get("key").and_then(Value::as_str).ok_or(
                                ScenarioError::Invalid(
                                    "workload",
                                    "object form needs a `key` string".to_string(),
                                ),
                            )?;
                            let params = value.get("params").cloned().unwrap_or(Value::Null);
                            b.workload_name(key).workload_params(params)
                        }
                        _ => {
                            return Err(ScenarioError::Invalid(
                                "workload",
                                "must be a string or a {key, params} object".to_string(),
                            ))
                        }
                    };
                }
                "size" => {
                    let name = value.as_str().ok_or(ScenarioError::Invalid(
                        "size",
                        "must be a string".to_string(),
                    ))?;
                    b = b.size_name(name);
                }
                "metrics_window" => {
                    let w = value
                        .as_u64()
                        .filter(|&w| w > 0)
                        .ok_or(ScenarioError::Invalid(
                            "metrics_window",
                            "must be a positive integer (cycles)".to_string(),
                        ))?;
                    b = b.metrics_window(w);
                }
                "trace_capacity" => {
                    let cap = value.as_u64().ok_or(ScenarioError::Invalid(
                        "trace_capacity",
                        "must be a non-negative integer".to_string(),
                    ))?;
                    b = b.trace_capacity(cap as usize);
                }
                "sim_threads" => {
                    let threads = value.as_u64().ok_or(ScenarioError::Invalid(
                        "sim_threads",
                        "must be a non-negative integer (0 = classic engine)".to_string(),
                    ))?;
                    b = b.sim_threads(threads as usize);
                }
                "faults" => {
                    let spec = value.as_str().ok_or(ScenarioError::Invalid(
                        "faults",
                        "must be a fault-spec string".to_string(),
                    ))?;
                    let plan =
                        FaultPlan::parse(spec).map_err(|e| ScenarioError::Invalid("faults", e))?;
                    b = b.faults(plan);
                }
                other => return Err(ScenarioError::UnknownField(other.to_string())),
            }
        }
        b.build()
    }

    /// Expand a sweep-grid request — `{"configs": [..], "workloads":
    /// [..], "size"?}` — into one scenario per `configs × workloads`
    /// point, cluster-major (all workloads on the first config, then the
    /// second, ...).  This is the shape of `memhierd`'s `/v1/sweep` body
    /// and of the CLI's `--configs`/`--workloads` lists.
    pub fn expand_grid(v: &Value, default_size: Sizes) -> Result<Vec<Scenario>, ScenarioError> {
        let names = |key: &'static str| -> Result<Vec<&str>, ScenarioError> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or(ScenarioError::Invalid(
                    key,
                    "must be an array of strings".to_string(),
                ))?
                .iter()
                .map(|e| {
                    e.as_str().ok_or(ScenarioError::Invalid(
                        key,
                        "must contain only strings".to_string(),
                    ))
                })
                .collect()
        };
        let configs = names("configs")?;
        let workloads = names("workloads")?;
        let size = match v.get("size").filter(|f| !f.is_null()) {
            None => default_size,
            Some(f) => {
                let name = f.as_str().ok_or(ScenarioError::Invalid(
                    "size",
                    "must be a string".to_string(),
                ))?;
                sizes_by_name(name).map_err(|_| ScenarioError::UnknownSize(name.to_string()))?
            }
        };
        let sim_threads = match v.get("sim_threads").filter(|f| !f.is_null()) {
            None => None,
            Some(f) => Some(f.as_u64().ok_or(ScenarioError::Invalid(
                "sim_threads",
                "must be a non-negative integer (0 = classic engine)".to_string(),
            ))? as usize),
        };
        let mut out = Vec::with_capacity(configs.len() * workloads.len());
        for config in &configs {
            for workload in &workloads {
                let mut b = Scenario::builder()
                    .config_name(config)
                    .workload_name(workload)
                    .size(size);
                if let Some(threads) = sim_threads {
                    b = b.sim_threads(threads);
                }
                out.push(b.build()?);
            }
        }
        Ok(out)
    }

    /// Parse a plan file's contents: a JSON array whose elements are
    /// scenario objects or compact `CONFIG:WORKLOAD[:SIZE]` strings
    /// (the `memhier sweep --configs @plan.json` format).
    pub fn parse_batch(v: &Value) -> Result<Vec<Scenario>, ScenarioError> {
        let items = v.as_array().ok_or(ScenarioError::Syntax(
            "a scenario plan must be a JSON array".to_string(),
        ))?;
        items
            .iter()
            .map(|item| match item {
                Value::String(s) => s.parse(),
                other => Scenario::from_json(other),
            })
            .collect()
    }

    /// Build a [`SweepPlan`] from a batch of scenarios.  Every scenario
    /// contributes one grid point; the plan-wide size and observers come
    /// from the batch, so all scenarios must agree on them (the runner
    /// applies them per plan, not per point).
    pub fn sweep_plan(
        name: impl Into<String>,
        scenarios: &[Scenario],
    ) -> Result<SweepPlan, ScenarioError> {
        let first = scenarios
            .first()
            .ok_or(ScenarioError::Missing("scenarios"))?;
        if scenarios.iter().any(|s| s.size != first.size) {
            return Err(ScenarioError::Mixed("size"));
        }
        if scenarios.iter().any(|s| s.observers != first.observers) {
            return Err(ScenarioError::Mixed("observers"));
        }
        if scenarios.iter().any(|s| s.sim_threads != first.sim_threads) {
            return Err(ScenarioError::Mixed("sim_threads"));
        }
        if scenarios.iter().any(|s| s.workload_params.is_some()) {
            // Sweep grids are (config × kind) points at the plan's size
            // tier; per-point parameter maps have nowhere to live there.
            return Err(ScenarioError::Invalid(
                "workload",
                "parameter maps are not supported in sweep batches".to_string(),
            ));
        }
        let mut plan = SweepPlan::new(name, first.size)
            .with_observers(first.observers)
            .with_sim_threads(first.sim_threads);
        for s in scenarios {
            plan = plan.point(&s.config, s.workload);
        }
        Ok(plan)
    }
}

/// Compact form when the config has a paper name, JSON otherwise; both
/// spellings parse back via [`FromStr`].
impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let plain = self.observers == ObserverConfig::default()
            && self.faults.is_empty()
            && self.sim_threads.is_none()
            && self.workload_params.is_none();
        match (&self.config.name, plain) {
            (Some(name), true) => write!(
                f,
                "{name}:{}:{}",
                self.workload.name(),
                size_name(self.size)
            ),
            _ => write!(
                f,
                "{}",
                serde_json::to_string(&self.to_json()).map_err(|_| fmt::Error)?
            ),
        }
    }
}

impl FromStr for Scenario {
    type Err = ScenarioError;

    /// Accepts the JSON object form (anything starting with `{`) or the
    /// compact `CONFIG:WORKLOAD[:SIZE]` form.
    fn from_str(s: &str) -> Result<Scenario, ScenarioError> {
        let s = s.trim();
        if s.starts_with('{') {
            let v: Value =
                serde_json::from_str(s).map_err(|e| ScenarioError::Syntax(e.to_string()))?;
            return Scenario::from_json(&v);
        }
        let mut parts = s.split(':');
        let config = parts.next().unwrap_or_default().trim();
        if config.is_empty() {
            return Err(ScenarioError::Missing("config"));
        }
        let workload = parts
            .next()
            .map(str::trim)
            .ok_or(ScenarioError::Missing("workload"))?;
        let mut b = Scenario::builder()
            .config_name(config)
            .workload_name(workload);
        if let Some(size) = parts.next() {
            b = b.size_name(size.trim());
        }
        if let Some(extra) = parts.next() {
            return Err(ScenarioError::Syntax(format!(
                "unexpected `:{extra}` after CONFIG:WORKLOAD:SIZE"
            )));
        }
        b.build()
    }
}

impl Serialize for Scenario {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

impl Deserialize for Scenario {
    fn from_json_value(v: Value) -> Result<Self, String> {
        Scenario::from_json(&v).map_err(|e| e.to_string())
    }
}

/// Typed, infallible-until-`build` builder for [`Scenario`].  Name
/// setters (`config_name`, `workload_name`, `size_name`) defer
/// resolution to [`ScenarioBuilder::build`], so the builder chains
/// without intermediate `Result`s.
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    config: Option<Result<ClusterSpec, ScenarioError>>,
    workload: Option<Result<WorkloadKind, ScenarioError>>,
    workload_params: Option<Value>,
    size: Option<Result<Sizes, ScenarioError>>,
    observers: ObserverConfig,
    sim_threads: Option<usize>,
    faults: FaultPlan,
}

impl ScenarioBuilder {
    /// Set the cluster by full spec.
    pub fn config(mut self, spec: ClusterSpec) -> Self {
        self.config = Some(Ok(spec));
        self
    }

    /// Set the cluster by paper name (`C1`..`C15`); resolved at `build`.
    pub fn config_name(mut self, name: &str) -> Self {
        self.config =
            Some(config_by_name(name).map_err(|_| ScenarioError::UnknownConfig(name.to_string())));
        self
    }

    /// Set the workload kind.
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = Some(Ok(kind));
        self
    }

    /// Set the workload by display name (case-insensitive); resolved at
    /// `build`.
    pub fn workload_name(mut self, name: &str) -> Self {
        self.workload = Some(
            workload_kind_by_name(name)
                .map_err(|_| ScenarioError::UnknownWorkload(name.to_string())),
        );
        self
    }

    /// Set registry parameter overrides for the workload (validated
    /// against its schema at `build`).  `Null` or an empty object means
    /// "no overrides".
    pub fn workload_params(mut self, params: Value) -> Self {
        let empty = matches!(&params, Value::Object(f) if f.is_empty());
        self.workload_params = if params.is_null() || empty {
            None
        } else {
            Some(params)
        };
        self
    }

    /// Set the problem-size tier.
    pub fn size(mut self, size: Sizes) -> Self {
        self.size = Some(Ok(size));
        self
    }

    /// Set the size tier by name (`small|medium|paper`); resolved at
    /// `build`.
    pub fn size_name(mut self, name: &str) -> Self {
        self.size =
            Some(sizes_by_name(name).map_err(|_| ScenarioError::UnknownSize(name.to_string())));
        self
    }

    /// Attach a [`TimeSeriesCollector`](memhier_sim::observe::TimeSeriesCollector)
    /// with this window width (cycles).
    pub fn metrics_window(mut self, cycles: u64) -> Self {
        self.observers.metrics_window = Some(cycles);
        self
    }

    /// Attach an [`EventTracer`](memhier_sim::observe::EventTracer)
    /// bounded to this many events.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.observers.trace_capacity = Some(events);
        self
    }

    /// Replace the whole observer config.
    pub fn observers(mut self, observers: ObserverConfig) -> Self {
        self.observers = observers;
        self
    }

    /// Pin the intra-scenario engine: `n ≥ 1` runs the epoch-parallel
    /// engine on `n` host threads, `0` pins the classic engine (unset
    /// defers to the ambient `--sim-threads` / `MEMHIER_SIM_THREADS`).
    pub fn sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = Some(threads);
        self
    }

    /// Set the fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Resolve deferred names and produce the scenario.  `config` and
    /// `workload` are required; `size` defaults to [`Sizes::Medium`].
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let workload = self.workload.ok_or(ScenarioError::Missing("workload"))??;
        let size = self.size.unwrap_or(Ok(Sizes::Medium))?;
        if let Some(params) = &self.workload_params {
            // Validate against the registry schema now so `run` can't
            // fail later.
            resolve_workload_params(workload, size, params)?;
        }
        Ok(Scenario {
            config: self.config.ok_or(ScenarioError::Missing("config"))??,
            workload,
            workload_params: self.workload_params,
            size,
            observers: self.observers,
            sim_threads: self.sim_threads,
            faults: self.faults,
        })
    }
}

/// The canonical lowercase name of a size tier (inverse of
/// [`sizes_by_name`]).
pub fn size_name(size: Sizes) -> &'static str {
    match size {
        Sizes::Small => "small",
        Sizes::Medium => "medium",
        Sizes::Paper => "paper",
    }
}

/// Build a [`ClusterSpec`] from the `{"platform": key, "params": {...}}`
/// config form via the platform registry.
fn platform_config_from_json(v: &Value) -> Result<ClusterSpec, ScenarioError> {
    if let Value::Object(fields) = v {
        for (k, _) in fields {
            if k != "platform" && k != "params" {
                return Err(ScenarioError::UnknownField(format!("config.{k}")));
            }
        }
    }
    let key = v
        .get("platform")
        .and_then(Value::as_str)
        .ok_or(ScenarioError::Invalid(
            "config",
            "`platform` must be a registry key string".to_string(),
        ))?;
    let spec = platform_by_key(key).ok_or_else(|| {
        ScenarioError::Invalid(
            "config",
            format!(
                "unknown platform `{key}` (known: {})",
                platform_keys().join("|")
            ),
        )
    })?;
    let params = v.get("params").cloned().unwrap_or(Value::Null);
    spec.build(&params)
        .map_err(|e| ScenarioError::Invalid("config", e.to_string()))
}

/// Resolve a workload parameter map against the registry: the scenario's
/// size tier supplies the base problem, the map overrides its fields.
fn resolve_workload_params(
    kind: WorkloadKind,
    size: Sizes,
    params: &Value,
) -> Result<Workload, ScenarioError> {
    if params.get("size").is_some() {
        return Err(ScenarioError::Invalid(
            "workload",
            "set `size` at the scenario level, not inside `params`".to_string(),
        ));
    }
    let mut fields = match params {
        Value::Object(f) => f.clone(),
        Value::Null => Vec::new(),
        _ => {
            return Err(ScenarioError::Invalid(
                "workload",
                "`params` must be a JSON object".to_string(),
            ))
        }
    };
    fields.push((
        "size".to_string(),
        Value::String(size_name(size).to_string()),
    ));
    let spec = workload_by_key(kind.name())
        .ok_or_else(|| ScenarioError::UnknownWorkload(kind.name().to_string()))?;
    match spec.build(&Value::Object(fields)) {
        Ok(ResolvedWorkload::Sized(w)) => Ok(w),
        Ok(ResolvedWorkload::Program(_)) => Err(ScenarioError::Invalid(
            "workload",
            format!("`{}` does not build a sized workload", kind.name()),
        )),
        Err(e) => Err(ScenarioError::Invalid("workload", e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::MachineSpec;

    fn c5_fft() -> Scenario {
        Scenario::builder()
            .config_name("C5")
            .workload_name("FFT")
            .size(Sizes::Small)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_resolves_names() {
        let s = c5_fft();
        assert_eq!(s.config.name.as_deref(), Some("C5"));
        assert_eq!(s.workload, WorkloadKind::Fft);
        assert_eq!(s.size, Sizes::Small);
        assert!(!s.observers.is_active());
        assert!(s.faults.is_empty());
    }

    #[test]
    fn builder_reports_first_bad_name() {
        let e = Scenario::builder()
            .config_name("C99")
            .workload_name("FFT")
            .build()
            .unwrap_err();
        assert_eq!(e, ScenarioError::UnknownConfig("C99".to_string()));
        let e = Scenario::builder()
            .workload(WorkloadKind::Lu)
            .build()
            .unwrap_err();
        assert_eq!(e, ScenarioError::Missing("config"));
    }

    #[test]
    fn compact_string_round_trips() {
        let s = c5_fft();
        assert_eq!(s.to_string(), "C5:FFT:small");
        assert_eq!("C5:FFT:small".parse::<Scenario>().unwrap(), s);
        // Size defaults to medium, as in the CLI.
        let m = "C5:FFT".parse::<Scenario>().unwrap();
        assert_eq!(m.size, Sizes::Medium);
    }

    #[test]
    fn json_round_trips_and_is_a_fixed_point() {
        let s = Scenario::builder()
            .config_name("C8")
            .workload(WorkloadKind::Radix)
            .size(Sizes::Paper)
            .metrics_window(5_000)
            .faults(FaultPlan::parse("point:panic:nth=2").unwrap())
            .build()
            .unwrap();
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn display_falls_back_to_json_for_unnamed_configs() {
        let s = Scenario::builder()
            .config(ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0)))
            .workload(WorkloadKind::Edge)
            .build()
            .unwrap();
        let text = s.to_string();
        assert!(text.starts_with('{'), "{text}");
        assert_eq!(text.parse::<Scenario>().unwrap(), s);
    }

    #[test]
    fn from_json_rejects_typos_and_bad_shapes() {
        let bad: Value =
            serde_json::from_str(r#"{"config": "C5", "workload": "FFT", "metrics_windw": 10}"#)
                .unwrap();
        assert_eq!(
            Scenario::from_json(&bad).unwrap_err(),
            ScenarioError::UnknownField("metrics_windw".to_string())
        );
        let bad: Value = serde_json::from_str(r#"{"config": 7, "workload": "FFT"}"#).unwrap();
        assert!(matches!(
            Scenario::from_json(&bad).unwrap_err(),
            ScenarioError::Invalid("config", _)
        ));
        assert!(matches!(
            "C5".parse::<Scenario>().unwrap_err(),
            ScenarioError::Missing("workload")
        ));
        assert!(matches!(
            "C5:FFT:small:extra".parse::<Scenario>().unwrap_err(),
            ScenarioError::Syntax(_)
        ));
    }

    #[test]
    fn sweep_plan_requires_uniform_batches() {
        let a = c5_fft();
        let mut b = a.clone();
        b.workload = WorkloadKind::Lu;
        let plan = Scenario::sweep_plan("test", &[a.clone(), b.clone()]).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.sizes, Sizes::Small);
        b.size = Sizes::Paper;
        assert_eq!(
            Scenario::sweep_plan("test", &[a, b]).unwrap_err(),
            ScenarioError::Mixed("size")
        );
        assert_eq!(
            Scenario::sweep_plan("test", &[]).unwrap_err(),
            ScenarioError::Missing("scenarios")
        );
    }

    #[test]
    fn scenario_runs_the_simulator() {
        let out = "C1:EDGE:small".parse::<Scenario>().unwrap().run();
        assert!(out.run.report.wall_cycles > 0);
        assert!(out.metrics.is_none());
    }

    #[test]
    fn new_workloads_parse_in_compact_form() {
        for (text, kind) in [
            ("N4:Stencil4D:small", WorkloadKind::Stencil4D),
            ("FT8:Stream:small", WorkloadKind::Stream),
            ("N8:graphwalk:small", WorkloadKind::GraphWalk),
            ("FT16:INFER:small", WorkloadKind::Inference),
        ] {
            let s = text.parse::<Scenario>().unwrap();
            assert_eq!(s.workload, kind, "{text}");
        }
    }

    #[test]
    fn unknown_workload_error_lists_registry_keys() {
        let e = "C5:WAVELET:small".parse::<Scenario>().unwrap_err();
        assert_eq!(e, ScenarioError::UnknownWorkload("WAVELET".to_string()));
        let msg = e.to_string();
        for key in ["FFT", "Stencil4D", "Stream", "GraphWalk", "Inference"] {
            assert!(msg.contains(key), "`{msg}` should list `{key}`");
        }
    }

    #[test]
    fn platform_registry_config_form() {
        let v: Value = serde_json::from_str(
            r#"{"config": {"platform": "numa-smp", "params": {"procs": 8, "domains": 4}},
                "workload": "Stencil4D", "size": "small"}"#,
        )
        .unwrap();
        let s = Scenario::from_json(&v).unwrap();
        assert_eq!(s.config.machine.n_procs, 8);
        assert_eq!(s.config.machine.numa_domains(), 4);
        // parse(to_json) is still an involution even though the platform
        // spelling canonicalizes to a full cluster spec.
        let json = s.to_json();
        assert_eq!(Scenario::from_json(&json).unwrap(), s);

        let bad: Value =
            serde_json::from_str(r#"{"config": {"platform": "warp-drive"}, "workload": "FFT"}"#)
                .unwrap();
        let msg = Scenario::from_json(&bad).unwrap_err().to_string();
        assert!(msg.contains("numa-smp"), "{msg}");
    }

    #[test]
    fn workload_parameter_map_form() {
        let v: Value = serde_json::from_str(
            r#"{"config": "C5", "size": "small",
                "workload": {"key": "stencil4d", "params": {"iterations": 3}}}"#,
        )
        .unwrap();
        let s = Scenario::from_json(&v).unwrap();
        assert_eq!(s.workload, WorkloadKind::Stencil4D);
        assert_eq!(
            s.resolved_workload(),
            Workload::Stencil4D {
                l: 8,
                iterations: 3
            }
        );
        // The JSON form round-trips with the canonical key.
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json);

        // Bad parameter names fail at parse, with the schema's keys.
        let bad: Value = serde_json::from_str(
            r#"{"config": "C5", "workload": {"key": "Stream", "params": {"stride": 2}}}"#,
        )
        .unwrap();
        let msg = Scenario::from_json(&bad).unwrap_err().to_string();
        assert!(msg.contains("no parameter `stride`"), "{msg}");

        // `size` belongs to the scenario, not the params map.
        let bad: Value = serde_json::from_str(
            r#"{"config": "C5", "workload": {"key": "FFT", "params": {"size": "small"}}}"#,
        )
        .unwrap();
        assert!(Scenario::from_json(&bad).is_err());

        // An empty params map collapses to the plain string form.
        let v: Value =
            serde_json::from_str(r#"{"config": "C5", "workload": {"key": "FFT", "params": {}}}"#)
                .unwrap();
        let s = Scenario::from_json(&v).unwrap();
        assert!(s.workload_params.is_none());
        assert_eq!(s.to_string(), "C5:FFT:medium");
    }
}
