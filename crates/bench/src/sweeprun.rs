//! Parallel, memoizing sweep runner for the experiment harness.
//!
//! Every figure/table experiment is a *sweep*: a grid of
//! `(workload kind × cluster config)` points, each point one full
//! program-driven simulation.  This module makes that grid explicit
//! ([`SweepPlan`]), fans the points out over a rayon pool ([`run_sweep`]),
//! and memoizes the expensive single-processor characterizations
//! ([`characterize_cached`]) so each address stream is generated and
//! stack-distance-analyzed exactly once per process, no matter how many
//! experiments ask for it.
//!
//! Determinism contract: `run_sweep` returns results **ordered by grid
//! index**, and each simulation is itself deterministic (fixed workload
//! seeds, single-threaded event engine per point).  Serializing the
//! results of a `--jobs 1` run and a `--jobs 8` run therefore yields
//! byte-identical JSON — `crates/bench/tests/determinism.rs` locks this
//! in.
//!
//! Worker count resolution, highest priority first:
//! 1. [`set_jobs`] (the binaries' `--jobs N` flag via
//!    [`configure_from_args`]);
//! 2. the `MEMHIER_JOBS` environment variable;
//! 3. the host's available parallelism.

use crate::runner::{
    characterize, simulate_workload_observed, Characterization, ObservedRun, ObserverConfig,
    SimRun, Sizes,
};
use memhier_core::machine::LatencyParams;
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::{Workload, WorkloadKind};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-wide `--jobs` override (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Fix the worker count for every subsequent sweep (0 clears the
/// override).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolve the worker count: [`set_jobs`] override, else `MEMHIER_JOBS`,
/// else available parallelism.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("MEMHIER_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse `--jobs N` / `--jobs=N` from a binary's argument list and
/// install the override (also exported through `MEMHIER_JOBS` so library
/// code that sizes its own rayon pools — e.g. the cost optimizer — sees
/// the same setting).  Returns the resolved worker count.
pub fn configure_from_args(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = if a == "--jobs" {
            it.next().and_then(|v| v.parse::<usize>().ok())
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            v.parse::<usize>().ok()
        } else {
            continue;
        };
        match parsed {
            Some(n) if n > 0 => {
                set_jobs(n);
                std::env::set_var("MEMHIER_JOBS", n.to_string());
            }
            _ => eprintln!("warning: ignoring malformed --jobs (want a positive integer)"),
        }
    }
    jobs()
}

/// One grid point: a workload kind on a cluster configuration.  The
/// problem size and latency table live on the [`SweepPlan`] so a plan
/// stays a plain cross-product.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Which kernel to run.
    pub kind: WorkloadKind,
    /// Where to run it.
    pub cluster: ClusterSpec,
}

/// An ordered grid of simulation points.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Label used in progress output and artifacts.
    pub name: String,
    /// Problem-size tier applied to every point.
    pub sizes: Sizes,
    /// Memory-hierarchy latency table applied to every point.
    pub latency: LatencyParams,
    /// Observer configuration applied to every point (default: none —
    /// the engine's hot loop stays snapshot-free).
    pub observers: ObserverConfig,
    points: Vec<GridPoint>,
}

impl SweepPlan {
    /// Empty plan at `sizes` with the paper's latency table.
    pub fn new(name: impl Into<String>, sizes: Sizes) -> Self {
        SweepPlan {
            name: name.into(),
            sizes,
            latency: LatencyParams::paper(),
            observers: ObserverConfig::default(),
            points: Vec::new(),
        }
    }

    /// Replace the latency table.
    pub fn with_latency(mut self, latency: LatencyParams) -> Self {
        self.latency = latency;
        self
    }

    /// Attach observers to every point: each worker builds its own
    /// `SimSession` from this config, so observer state never crosses
    /// threads and grid-order determinism is preserved.
    pub fn with_observers(mut self, observers: ObserverConfig) -> Self {
        self.observers = observers;
        self
    }

    /// Append the full `clusters × kinds` cross-product, cluster-major
    /// (matching the reading order of the paper's figures: all kernels on
    /// C1, then all on C2, ...).
    pub fn cross(mut self, clusters: &[ClusterSpec], kinds: &[WorkloadKind]) -> Self {
        for cluster in clusters {
            for &kind in kinds {
                self.points.push(GridPoint {
                    kind,
                    cluster: cluster.clone(),
                });
            }
        }
        self
    }

    /// Append a single point.
    pub fn point(mut self, cluster: &ClusterSpec, kind: WorkloadKind) -> Self {
        self.points.push(GridPoint {
            kind,
            cluster: cluster.clone(),
        });
        self
    }

    /// The grid, in index order.
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One completed grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Index into the plan's grid.
    pub index: usize,
    /// The point that ran.
    pub point: GridPoint,
    /// Simulation outputs.
    pub run: SimRun,
    /// Windowed metrics, when the plan's observers requested them.
    pub metrics: Option<memhier_sim::observe::MetricsSeries>,
    /// Bounded event trace, when the plan's observers requested it.
    pub trace: Option<memhier_sim::observe::TraceLog>,
}

/// Execute every point of `plan` on a rayon pool of [`jobs`] workers and
/// return the results **in grid order** (independent of scheduling).
/// Per-point progress and total wall-clock go to stderr; stdout stays
/// clean for tables.
pub fn run_sweep(plan: &SweepPlan) -> Vec<PointResult> {
    let n = plan.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs().min(n);
    let t0 = Instant::now();
    eprintln!("[sweep {}] {n} point(s) on {workers} worker(s)", plan.name);
    let done = AtomicUsize::new(0);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("sweep thread pool");
    let mut results: Vec<PointResult> = pool.install(|| {
        plan.points
            .iter()
            .cloned()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(index, point)| {
                let tp = Instant::now();
                let workload = plan.sizes.workload(point.kind);
                let ObservedRun {
                    run,
                    metrics,
                    trace,
                } = simulate_workload_observed(
                    &workload,
                    &point.cluster,
                    &plan.latency,
                    &plan.observers,
                );
                let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                eprintln!(
                    "[sweep {}] {finished}/{n}: {} on {} ({:.2}s)",
                    plan.name,
                    point.kind.name(),
                    point.cluster.name.as_deref().unwrap_or("unnamed"),
                    tp.elapsed().as_secs_f64(),
                );
                PointResult {
                    index,
                    point,
                    run,
                    metrics,
                    trace,
                }
            })
            .collect()
    });
    // The shim pool already preserves order; sort anyway so the contract
    // holds under any work-stealing scheduler (including real rayon).
    results.sort_unstable_by_key(|r| r.index);
    eprintln!(
        "[sweep {}] finished {n} point(s) in {:.2}s",
        plan.name,
        t0.elapsed().as_secs_f64()
    );
    results
}

/// Key of one memoized characterization.  A [`Workload`] value carries
/// kind, problem size, and decomposition, so `(workload, granularity)`
/// pins down the address stream exactly (the internal sharing probe's
/// 4-process decomposition is part of `characterize`'s definition).
type CharKey = (Workload, u64);

static CHAR_CACHE: OnceLock<Mutex<HashMap<CharKey, Arc<Characterization>>>> = OnceLock::new();

fn char_cache() -> &'static Mutex<HashMap<CharKey, Arc<Characterization>>> {
    CHAR_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized [`characterize`]: the first caller pays for trace generation
/// and stack-distance analysis; everyone after gets the cached result.
/// `characterize` is deterministic, so a racing double-computation (the
/// lock is not held across the analysis) is wasted work, never a wrong
/// answer.
pub fn characterize_cached(workload: &Workload, granularity: u64) -> Arc<Characterization> {
    let key = (*workload, granularity);
    if let Some(hit) = char_cache().lock().unwrap().get(&key) {
        return Arc::clone(hit);
    }
    let t0 = Instant::now();
    let fresh = Arc::new(characterize(workload, granularity));
    eprintln!(
        "[characterize] {} ({:.2}s, cached)",
        fresh.name,
        t0.elapsed().as_secs_f64()
    );
    char_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(fresh)
        .clone()
}

/// Characterize several kinds in parallel (each via the cache), returned
/// in input order.
pub fn characterize_many(
    sizes: Sizes,
    kinds: &[WorkloadKind],
    granularity: u64,
) -> Vec<Characterization> {
    let workers = jobs().min(kinds.len().max(1));
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("characterization thread pool");
    pool.install(|| {
        kinds
            .to_vec()
            .into_par_iter()
            .map(|kind| (*characterize_cached(&sizes.workload(kind), granularity)).clone())
            .collect()
    })
}

/// Number of distinct characterizations currently memoized (test hook).
pub fn char_cache_len() -> usize {
    char_cache().lock().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::MachineSpec;

    fn tiny_cluster(name: &str, procs: u32) -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(procs, 256, 64, 200.0)).named(name)
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn configure_from_args_parses_both_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(configure_from_args(&args(&["--jobs", "2"])), 2);
        assert_eq!(configure_from_args(&args(&["--jobs=5"])), 5);
        set_jobs(0);
        std::env::remove_var("MEMHIER_JOBS");
    }

    #[test]
    fn sweep_returns_grid_order() {
        let clusters = [tiny_cluster("A", 1), tiny_cluster("B", 2)];
        let kinds = [WorkloadKind::Fft, WorkloadKind::Lu];
        let plan = SweepPlan::new("order", Sizes::Small).cross(&clusters, &kinds);
        assert_eq!(plan.len(), 4);
        let results = run_sweep(&plan);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.point.kind, plan.points()[i].kind);
            assert_eq!(r.point.cluster, plan.points()[i].cluster);
            assert!(r.run.report.wall_cycles > 0);
        }
        // Cluster-major order: first two points run on A.
        assert_eq!(results[0].point.cluster.name.as_deref(), Some("A"));
        assert_eq!(results[1].point.cluster.name.as_deref(), Some("A"));
        assert_eq!(results[2].point.cluster.name.as_deref(), Some("B"));
    }

    #[test]
    fn characterization_cache_hits() {
        let w = Sizes::Small.workload(WorkloadKind::Lu);
        let a = characterize_cached(&w, 64);
        let before = char_cache_len();
        let b = characterize_cached(&w, 64);
        assert_eq!(
            char_cache_len(),
            before,
            "second call must not grow the cache"
        );
        assert!(Arc::ptr_eq(&a, &b), "second call must be the cached Arc");
        // A different granularity is a different stream.
        let c = characterize_cached(&w, 256);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.name, c.name);
    }
}
