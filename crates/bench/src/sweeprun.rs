//! Parallel, memoizing sweep runner for the experiment harness.
//!
//! Every figure/table experiment is a *sweep*: a grid of
//! `(workload kind × cluster config)` points, each point one full
//! program-driven simulation.  This module makes that grid explicit
//! ([`SweepPlan`]), fans the points out over a rayon pool ([`run_sweep`]),
//! and memoizes the expensive single-processor characterizations
//! ([`characterize_cached`]) so each address stream is generated and
//! stack-distance-analyzed exactly once per process, no matter how many
//! experiments ask for it.
//!
//! Determinism contract: `run_sweep` returns results **ordered by grid
//! index**, and each simulation is itself deterministic (fixed workload
//! seeds, single-threaded event engine per point).  Serializing the
//! results of a `--jobs 1` run and a `--jobs 8` run therefore yields
//! byte-identical JSON — `crates/bench/tests/determinism.rs` locks this
//! in.
//!
//! Worker count resolution, highest priority first:
//! 1. [`set_jobs`] (the binaries' `--jobs N` flag via
//!    [`configure_from_args`]);
//! 2. the `MEMHIER_JOBS` environment variable;
//! 3. the host's available parallelism.

use crate::faults::{FaultAction, FaultPlan, FaultSite};
use crate::runner::{
    characterize, simulate_workload_threads, Characterization, ObservedRun, ObserverConfig, SimRun,
    Sizes,
};
use memhier_core::machine::LatencyParams;
use memhier_core::platform::ClusterSpec;
use memhier_sim::observe::{MetricsSeries, TraceLog};
use memhier_sim::report::SimReport;
use memhier_workloads::registry::{Workload, WorkloadKind};
use memhier_workloads::spmd::ProcCounters;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Process-wide `--jobs` override (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Fix the worker count for every subsequent sweep (0 clears the
/// override).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolve the worker count: [`set_jobs`] override, else `MEMHIER_JOBS`,
/// else available parallelism.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("MEMHIER_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide `--sim-threads` override (0 = unset).
static SIM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Fix the intra-scenario engine thread count for every subsequent run
/// (0 clears the override, falling back to `MEMHIER_SIM_THREADS`).
pub fn set_sim_threads(n: usize) {
    SIM_THREADS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolve the ambient intra-scenario thread count: [`set_sim_threads`]
/// override, else `MEMHIER_SIM_THREADS`, else `None` — which selects the
/// classic single-threaded engine.  `Some(n)` routes every simulation
/// through the epoch-parallel engine on `n` host threads; the epoch
/// engine's results are identical for every `n ≥ 1`, so this knob trades
/// host CPU for wall-clock without perturbing simulated results.
pub fn sim_threads() -> Option<usize> {
    let explicit = SIM_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return Some(explicit);
    }
    if let Ok(v) = std::env::var("MEMHIER_SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return Some(n);
            }
        }
    }
    None
}

/// Parse `--jobs N` / `--jobs=N` from a binary's argument list and
/// install the override (also exported through `MEMHIER_JOBS` so library
/// code that sizes its own rayon pools — e.g. the cost optimizer — sees
/// the same setting).  Returns the resolved worker count.
pub fn configure_from_args(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = if a == "--jobs" {
            it.next().and_then(|v| v.parse::<usize>().ok())
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            v.parse::<usize>().ok()
        } else {
            continue;
        };
        match parsed {
            Some(n) if n > 0 => {
                set_jobs(n);
                std::env::set_var("MEMHIER_JOBS", n.to_string());
            }
            _ => eprintln!("warning: ignoring malformed --jobs (want a positive integer)"),
        }
    }
    jobs()
}

/// One grid point: a workload kind on a cluster configuration.  The
/// problem size and latency table live on the [`SweepPlan`] so a plan
/// stays a plain cross-product.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Which kernel to run.
    pub kind: WorkloadKind,
    /// Where to run it.
    pub cluster: ClusterSpec,
}

/// An ordered grid of simulation points.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Label used in progress output and artifacts.
    pub name: String,
    /// Problem-size tier applied to every point.
    pub sizes: Sizes,
    /// Memory-hierarchy latency table applied to every point.
    pub latency: LatencyParams,
    /// Observer configuration applied to every point (default: none —
    /// the engine's hot loop stays snapshot-free).
    pub observers: ObserverConfig,
    /// Intra-scenario engine threads applied to every point: `Some(n)`
    /// pins the epoch-parallel engine on `n` host threads, `None` defers
    /// to the ambient [`sim_threads`] setting.  Part of the plan's
    /// identity ([`plan_fingerprint`]) because the two engines' defined
    /// semantics differ.
    pub sim_threads: Option<usize>,
    points: Vec<GridPoint>,
}

impl SweepPlan {
    /// Empty plan at `sizes` with the paper's latency table.
    pub fn new(name: impl Into<String>, sizes: Sizes) -> Self {
        SweepPlan {
            name: name.into(),
            sizes,
            latency: LatencyParams::paper(),
            observers: ObserverConfig::default(),
            sim_threads: None,
            points: Vec::new(),
        }
    }

    /// Replace the latency table.
    pub fn with_latency(mut self, latency: LatencyParams) -> Self {
        self.latency = latency;
        self
    }

    /// Pin the intra-scenario engine thread count for every point
    /// (`None` defers to the ambient [`sim_threads`] setting).
    pub fn with_sim_threads(mut self, threads: Option<usize>) -> Self {
        self.sim_threads = threads;
        self
    }

    /// The engine selection each point runs with: the plan's pin, else
    /// the ambient setting, else the classic engine.
    pub fn resolved_sim_threads(&self) -> usize {
        self.sim_threads.or_else(sim_threads).unwrap_or(0)
    }

    /// Attach observers to every point: each worker builds its own
    /// `SimSession` from this config, so observer state never crosses
    /// threads and grid-order determinism is preserved.
    pub fn with_observers(mut self, observers: ObserverConfig) -> Self {
        self.observers = observers;
        self
    }

    /// Append the full `clusters × kinds` cross-product, cluster-major
    /// (matching the reading order of the paper's figures: all kernels on
    /// C1, then all on C2, ...).
    pub fn cross(mut self, clusters: &[ClusterSpec], kinds: &[WorkloadKind]) -> Self {
        for cluster in clusters {
            for &kind in kinds {
                self.points.push(GridPoint {
                    kind,
                    cluster: cluster.clone(),
                });
            }
        }
        self
    }

    /// Append a single point.
    pub fn point(mut self, cluster: &ClusterSpec, kind: WorkloadKind) -> Self {
        self.points.push(GridPoint {
            kind,
            cluster: cluster.clone(),
        });
        self
    }

    /// The grid, in index order.
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One completed grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Index into the plan's grid.
    pub index: usize,
    /// The point that ran.
    pub point: GridPoint,
    /// Simulation outputs.
    pub run: SimRun,
    /// Windowed metrics, when the plan's observers requested them.
    pub metrics: Option<memhier_sim::observe::MetricsSeries>,
    /// Bounded event trace, when the plan's observers requested it.
    pub trace: Option<memhier_sim::observe::TraceLog>,
}

/// Execute every point of `plan` on a rayon pool of [`jobs`] workers and
/// return the results **in grid order** (independent of scheduling).
/// Per-point progress and total wall-clock go to stderr; stdout stays
/// clean for tables.
///
/// When a process-wide [`CheckpointConfig`] is installed (the binaries'
/// `--checkpoint`/`--resume`/`--max-retries`/`--faults` flags via
/// [`Matches::apply_sweep_config`](crate::flags::Matches::apply_sweep_config)),
/// the sweep routes through [`run_sweep_checkpointed`]: completed points
/// are journaled, quarantined points are dropped from the result with a
/// stderr warning, and a fingerprint mismatch on `--resume` aborts the
/// process.  With no config installed this is the plain in-memory path.
pub fn run_sweep(plan: &SweepPlan) -> Vec<PointResult> {
    if let Some(cfg) = checkpoint_config().filter(CheckpointConfig::is_active) {
        match run_sweep_checkpointed(plan, &cfg) {
            Ok(outcome) => {
                let quarantined = outcome.quarantined();
                if quarantined > 0 {
                    eprintln!(
                        "[sweep {}] warning: dropping {quarantined} quarantined point(s) \
                         from the result set",
                        plan.name
                    );
                }
                return outcome.into_results();
            }
            Err(e) => {
                eprintln!("error: checkpointed sweep `{}` failed: {e}", plan.name);
                std::process::exit(2);
            }
        }
    }
    run_sweep_direct(plan)
}

/// The plain in-memory sweep: no journal, no retries, panics propagate.
fn run_sweep_direct(plan: &SweepPlan) -> Vec<PointResult> {
    let n = plan.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs().min(n);
    let t0 = Instant::now();
    eprintln!("[sweep {}] {n} point(s) on {workers} worker(s)", plan.name);
    let done = AtomicUsize::new(0);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("sweep thread pool");
    let mut results: Vec<PointResult> = pool.install(|| {
        plan.points
            .iter()
            .cloned()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(index, point)| {
                let tp = Instant::now();
                let workload = plan.sizes.workload(point.kind);
                let ObservedRun {
                    run,
                    metrics,
                    trace,
                } = simulate_workload_threads(
                    &workload,
                    &point.cluster,
                    &plan.latency,
                    &plan.observers,
                    plan.resolved_sim_threads(),
                );
                let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                eprintln!(
                    "[sweep {}] {finished}/{n}: {} on {} ({:.2}s)",
                    plan.name,
                    point.kind.name(),
                    point.cluster.name.as_deref().unwrap_or("unnamed"),
                    tp.elapsed().as_secs_f64(),
                );
                PointResult {
                    index,
                    point,
                    run,
                    metrics,
                    trace,
                }
            })
            .collect()
    });
    // The shim pool already preserves order; sort anyway so the contract
    // holds under any work-stealing scheduler (including real rayon).
    results.sort_unstable_by_key(|r| r.index);
    eprintln!(
        "[sweep {}] finished {n} point(s) in {:.2}s",
        plan.name,
        t0.elapsed().as_secs_f64()
    );
    results
}

/// Key of one memoized characterization.  A [`Workload`] value carries
/// kind, problem size, and decomposition, so `(workload, granularity)`
/// pins down the address stream exactly (the internal sharing probe's
/// 4-process decomposition is part of `characterize`'s definition).
type CharKey = (Workload, u64);

static CHAR_CACHE: OnceLock<Mutex<HashMap<CharKey, Arc<Characterization>>>> = OnceLock::new();

fn char_cache() -> &'static Mutex<HashMap<CharKey, Arc<Characterization>>> {
    CHAR_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Lock a mutex, recovering from poisoning.  Every critical section in
/// this module leaves its data structurally valid at every await-free
/// step (a `HashMap` insert, a journal line append), so a panic that
/// poisoned the lock — e.g. an injected `point:panic` unwinding through a
/// worker — does not invalidate the data.  Refusing the lock forever
/// (the `.unwrap()` default) would turn one quarantined point into a
/// process-wide brick.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Memoized [`characterize`]: the first caller pays for trace generation
/// and stack-distance analysis; everyone after gets the cached result.
/// `characterize` is deterministic, so a racing double-computation (the
/// lock is not held across the analysis) is wasted work, never a wrong
/// answer.
pub fn characterize_cached(workload: &Workload, granularity: u64) -> Arc<Characterization> {
    let key = (*workload, granularity);
    if let Some(hit) = lock_unpoisoned(char_cache()).get(&key) {
        return Arc::clone(hit);
    }
    let t0 = Instant::now();
    let fresh = Arc::new(characterize(workload, granularity));
    eprintln!(
        "[characterize] {} ({:.2}s, cached)",
        fresh.name,
        t0.elapsed().as_secs_f64()
    );
    lock_unpoisoned(char_cache())
        .entry(key)
        .or_insert(fresh)
        .clone()
}

/// Characterize several kinds in parallel (each via the cache), returned
/// in input order.
pub fn characterize_many(
    sizes: Sizes,
    kinds: &[WorkloadKind],
    granularity: u64,
) -> Vec<Characterization> {
    let workers = jobs().min(kinds.len().max(1));
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("characterization thread pool");
    pool.install(|| {
        kinds
            .to_vec()
            .into_par_iter()
            .map(|kind| (*characterize_cached(&sizes.workload(kind), granularity)).clone())
            .collect()
    })
}

/// Number of distinct characterizations currently memoized (test hook).
pub fn char_cache_len() -> usize {
    lock_unpoisoned(char_cache()).len()
}

// ---------------------------------------------------------------------------
// Crash-safe checkpointing + panic quarantine
// ---------------------------------------------------------------------------

/// Deterministic retry backoff: `BACKOFF_BASE_MS << (attempt - 1)` before
/// retry `attempt` (1-based).  Pure function of the attempt number — a
/// resumed run waits exactly as long as the original would have.
const BACKOFF_BASE_MS: u64 = 25;

/// Default bound on per-point retries after a failure or panic.
pub const DEFAULT_MAX_RETRIES: u32 = 1;

/// How [`run_sweep_checkpointed`] journals, resumes, retries, and injects
/// faults.  The default config is fully inert: no journal, no resume,
/// [`DEFAULT_MAX_RETRIES`] retries, empty fault plan.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Append-only JSONL journal path (`--checkpoint PATH`).  `None`
    /// keeps the sweep in memory (retries and faults still apply).
    pub path: Option<PathBuf>,
    /// Verify the journal fingerprint and skip completed grid indices
    /// (`--resume`).
    pub resume: bool,
    /// Retries per point after a failure or panic (`--max-retries N`).
    pub max_retries: u32,
    /// Fault-injection plan (`--faults SPEC` / `MEMHIER_FAULTS`).
    pub faults: FaultPlan,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            path: None,
            resume: false,
            max_retries: DEFAULT_MAX_RETRIES,
            faults: FaultPlan::default(),
        }
    }
}

impl CheckpointConfig {
    /// Whether this config changes anything relative to the plain
    /// in-memory sweep (used by [`run_sweep`] to decide whether to route
    /// through the checkpointed path).
    pub fn is_active(&self) -> bool {
        self.path.is_some() || self.resume || !self.faults.is_empty()
    }
}

/// Process-wide checkpoint config installed by the binaries' flag layer
/// (same pattern as the `--jobs` override: sweep entry points are called
/// from deep inside experiment code that predates these flags).
static CKPT_CONFIG: Mutex<Option<CheckpointConfig>> = Mutex::new(None);

/// Install (or clear, with `None`) the process-wide checkpoint config
/// that [`run_sweep`] picks up.
pub fn set_checkpoint_config(cfg: Option<CheckpointConfig>) {
    *lock_unpoisoned(&CKPT_CONFIG) = cfg;
}

/// The installed process-wide checkpoint config, if any.
pub fn checkpoint_config() -> Option<CheckpointConfig> {
    lock_unpoisoned(&CKPT_CONFIG).clone()
}

/// Terminal state of one grid point after retries.
// `Ok` dwarfs the error variants, but it is also the overwhelmingly
// common case; boxing it would cost an allocation per healthy point.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PointOutcome {
    /// The point completed (possibly after retries).
    Ok {
        /// The completed result.
        result: PointResult,
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// Every attempt returned an error (today only injected `point:io`
    /// faults produce this; real simulation failures panic).
    Failed {
        /// Index into the plan's grid.
        index: usize,
        /// The point that failed.
        point: GridPoint,
        /// The final attempt's error.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Every attempt panicked; the point is quarantined instead of
    /// aborting the sweep.
    Panicked {
        /// Index into the plan's grid.
        index: usize,
        /// The point that panicked.
        point: GridPoint,
        /// The final panic payload (stringified).
        message: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl PointOutcome {
    /// Index into the plan's grid.
    pub fn index(&self) -> usize {
        match self {
            PointOutcome::Ok { result, .. } => result.index,
            PointOutcome::Failed { index, .. } | PointOutcome::Panicked { index, .. } => *index,
        }
    }

    /// Attempts consumed.
    pub fn attempts(&self) -> u32 {
        match self {
            PointOutcome::Ok { attempts, .. }
            | PointOutcome::Failed { attempts, .. }
            | PointOutcome::Panicked { attempts, .. } => *attempts,
        }
    }

    /// The completed result, if the point succeeded.
    pub fn result(&self) -> Option<&PointResult> {
        match self {
            PointOutcome::Ok { result, .. } => Some(result),
            _ => None,
        }
    }

    /// The quarantine reason, if the point did not succeed.
    pub fn error(&self) -> Option<&str> {
        match self {
            PointOutcome::Ok { .. } => None,
            PointOutcome::Failed { error, .. } => Some(error),
            PointOutcome::Panicked { message, .. } => Some(message),
        }
    }
}

/// Everything [`run_sweep_checkpointed`] produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One outcome per grid point, in grid order.
    pub outcomes: Vec<PointOutcome>,
    /// Points loaded from the journal instead of re-executed.
    pub resumed: usize,
    /// Journal appends that failed (real I/O errors or injected
    /// `ckpt:io` faults); the affected points completed but will re-run
    /// on resume.
    pub checkpoint_errors: usize,
}

impl SweepOutcome {
    /// Completed results in grid order (quarantined points omitted).
    pub fn results(&self) -> Vec<&PointResult> {
        self.outcomes
            .iter()
            .filter_map(PointOutcome::result)
            .collect()
    }

    /// Consume into completed results in grid order.
    pub fn into_results(self) -> Vec<PointResult> {
        self.outcomes
            .into_iter()
            .filter_map(|o| match o {
                PointOutcome::Ok { result, .. } => Some(result),
                _ => None,
            })
            .collect()
    }

    /// Number of quarantined (non-Ok) points.
    pub fn quarantined(&self) -> usize {
        self.outcomes.len() - self.results().len()
    }
}

/// Journal format version (bumped on incompatible record changes).
const JOURNAL_VERSION: u64 = 1;

/// Terminal status recorded in a journal line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum JournalStatus {
    /// Point completed; payload fields are populated.
    Ok,
    /// Point failed with an error on every attempt.
    Failed,
    /// Point panicked on every attempt.
    Panicked,
}

/// One journal line: the terminal outcome of one grid point, with the
/// full result payload for `Ok` so a resumed run can reproduce the
/// original output byte for byte without re-simulating.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalRecord {
    index: usize,
    status: JournalStatus,
    attempts: u32,
    error: Option<String>,
    report: Option<SimReport>,
    counters: Option<ProcCounters>,
    metrics: Option<MetricsSeries>,
    trace: Option<TraceLog>,
}

impl JournalRecord {
    fn from_outcome(outcome: &PointOutcome) -> JournalRecord {
        match outcome {
            PointOutcome::Ok { result, attempts } => JournalRecord {
                index: result.index,
                status: JournalStatus::Ok,
                attempts: *attempts,
                error: None,
                report: Some(result.run.report.clone()),
                counters: Some(result.run.counters),
                metrics: result.metrics.clone(),
                trace: result.trace.clone(),
            },
            PointOutcome::Failed {
                index,
                error,
                attempts,
                ..
            } => JournalRecord {
                index: *index,
                status: JournalStatus::Failed,
                attempts: *attempts,
                error: Some(error.clone()),
                report: None,
                counters: None,
                metrics: None,
                trace: None,
            },
            PointOutcome::Panicked {
                index,
                message,
                attempts,
                ..
            } => JournalRecord {
                index: *index,
                status: JournalStatus::Panicked,
                attempts: *attempts,
                error: Some(message.clone()),
                report: None,
                counters: None,
                metrics: None,
                trace: None,
            },
        }
    }

    /// Rebuild the in-memory outcome for a completed record (`None` for
    /// non-`Ok` records and for `Ok` records missing their payload —
    /// both re-run).
    fn into_outcome(self, plan: &SweepPlan) -> Option<PointOutcome> {
        if self.status != JournalStatus::Ok || self.index >= plan.len() {
            return None;
        }
        let point = plan.points()[self.index].clone();
        Some(PointOutcome::Ok {
            result: PointResult {
                index: self.index,
                point,
                run: SimRun {
                    report: self.report?,
                    counters: self.counters?,
                },
                metrics: self.metrics,
                trace: self.trace,
            },
            attempts: self.attempts,
        })
    }
}

/// FNV-1a 64-bit, the journal's fingerprint hash: tiny, dependency-free,
/// and stable across platforms and runs (unlike `DefaultHasher`, whose
/// algorithm is explicitly unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything that determines a sweep's output: crate
/// version, plan name, sizes, latency table, observers, and every grid
/// point (kind + full cluster spec).  The fault plan is deliberately
/// excluded — faults perturb *execution*, not the work's identity, so a
/// faulty run may be resumed with faults off to finish cleanly.
pub fn plan_fingerprint(plan: &SweepPlan) -> u64 {
    let mut desc = String::new();
    desc.push_str(env!("CARGO_PKG_VERSION"));
    desc.push('|');
    desc.push_str(&plan.name);
    desc.push('|');
    desc.push_str(&format!("{:?}", plan.sizes));
    desc.push('|');
    desc.push_str(&serde_json::to_string(&plan.latency).expect("latency serializes"));
    desc.push('|');
    desc.push_str(&format!("{:?}", plan.observers));
    desc.push('|');
    // The engine kind, not the thread count: the epoch engine's results
    // are identical for every n ≥ 1, so resuming a 2-thread journal on 8
    // threads is sound — resuming a classic journal on the epoch engine
    // (or vice versa) is not.
    desc.push_str(if plan.resolved_sim_threads() > 0 {
        "engine:epoch"
    } else {
        "engine:classic"
    });
    for p in plan.points() {
        desc.push('|');
        desc.push_str(p.kind.name());
        desc.push('|');
        desc.push_str(&serde_json::to_string(&p.cluster).expect("cluster serializes"));
    }
    fnv1a(desc.as_bytes())
}

/// What `load_journal` found on disk.
struct LoadedJournal {
    /// Last record per grid index (later lines win).
    records: HashMap<usize, JournalRecord>,
    /// Whether a valid, fingerprint-matching header line was present.
    header_ok: bool,
}

/// Read a journal, tolerating a torn trailing line (the SIGKILL case):
/// parsing stops at the first malformed line with a warning.  A
/// fingerprint mismatch is an error when `resume` is set (silently
/// continuing would merge two different experiments into one artifact)
/// and a fresh start otherwise.
fn load_journal(path: &Path, fingerprint: u64, resume: bool) -> Result<LoadedJournal, String> {
    let empty = LoadedJournal {
        records: HashMap::new(),
        header_ok: false,
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(empty),
        Err(e) => return Err(format!("cannot read checkpoint `{}`: {e}", path.display())),
    };
    let mut lines = std::io::BufReader::new(file).lines();
    let header_line = match lines.next() {
        Some(Ok(l)) if !l.trim().is_empty() => l,
        _ => return Ok(empty), // empty or unreadable file: fresh start
    };
    let header: serde_json::Value = match serde_json::from_str(header_line.trim()) {
        Ok(v) => v,
        Err(_) if !resume => return Ok(empty),
        Err(e) => {
            return Err(format!(
                "checkpoint `{}` has a malformed header: {e}",
                path.display()
            ))
        }
    };
    let found_version = header["memhier_journal"].as_u64();
    let found_fp = header["fingerprint"]
        .as_str()
        .unwrap_or_default()
        .to_string();
    let want_fp = format!("{fingerprint:016x}");
    if found_version != Some(JOURNAL_VERSION) || found_fp != want_fp {
        if resume {
            return Err(format!(
                "checkpoint `{}` does not match this sweep (journal fingerprint {found_fp}, \
                 plan fingerprint {want_fp}): refusing to resume across a changed plan, \
                 sizes, latency table, or crate version",
                path.display()
            ));
        }
        return Ok(empty);
    }
    let mut records = HashMap::new();
    for (lineno, line) in lines.enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!(
                    "[checkpoint] warning: stopping at unreadable line {}: {e}",
                    lineno + 2
                );
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalRecord>(line.trim()) {
            Ok(rec) => {
                records.insert(rec.index, rec);
            }
            Err(e) => {
                // A torn final append from a killed process is expected;
                // anything after it is unreachable by construction.
                eprintln!(
                    "[checkpoint] warning: stopping at malformed line {} (torn write?): {e}",
                    lineno + 2
                );
                break;
            }
        }
    }
    Ok(LoadedJournal {
        records,
        header_ok: true,
    })
}

/// The open journal: appends completed-point records, one flushed line
/// per record, so a SIGKILL loses at most the record being written.
struct JournalWriter {
    file: std::fs::File,
    /// Records appended so far (drives `ckpt` fault indices).
    seq: u64,
}

impl JournalWriter {
    fn open(
        path: &Path,
        fingerprint: u64,
        plan: &SweepPlan,
        append: bool,
        initial_seq: u64,
    ) -> Result<JournalWriter, String> {
        let mut opts = std::fs::OpenOptions::new();
        if append {
            opts.append(true);
        } else {
            opts.write(true).create(true).truncate(true);
        }
        let mut file = opts
            .create(true)
            .open(path)
            .map_err(|e| format!("cannot open checkpoint `{}`: {e}", path.display()))?;
        if !append {
            let header = serde_json::json!({
                "memhier_journal": JOURNAL_VERSION,
                "plan": plan.name.as_str(),
                "points": plan.len() as u64,
                "fingerprint": format!("{fingerprint:016x}"),
            });
            let line = serde_json::to_string(&header).expect("header serializes");
            file.write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.flush())
                .map_err(|e| format!("cannot write checkpoint header: {e}"))?;
        }
        Ok(JournalWriter {
            file,
            seq: initial_seq,
        })
    }

    /// Append one record (with `ckpt` fault injection applied first).
    fn append(&mut self, record: &JournalRecord, faults: &FaultPlan) -> std::io::Result<()> {
        let seq = self.seq;
        self.seq += 1;
        faults.maybe_io_error(FaultSite::Ckpt, seq, 0)?;
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::other(format!("record serialization: {e}")))?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// Stringify a `catch_unwind` payload (panics carry `&str` or `String`
/// in practice; anything else is reported as opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one point to its terminal outcome: up to `1 + max_retries`
/// attempts, each under `catch_unwind`, with deterministic exponential
/// backoff between attempts.  Fault checks draw fresh decisions per
/// attempt, so a `rate=`-injected fault can clear on retry while an
/// `nth=`-injected one (or a real bug) keeps failing until quarantined.
fn run_point_with_retries(
    plan: &SweepPlan,
    index: usize,
    point: &GridPoint,
    cfg: &CheckpointConfig,
) -> PointOutcome {
    let mut last: Option<PointOutcome> = None;
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            let backoff = Duration::from_millis(BACKOFF_BASE_MS << (attempt - 1));
            eprintln!(
                "[sweep {}] point {index}: retry {attempt}/{} after {backoff:?}",
                plan.name, cfg.max_retries
            );
            std::thread::sleep(backoff);
        }
        let attempt_run = catch_unwind(AssertUnwindSafe(|| -> Result<PointResult, String> {
            match cfg.faults.check(FaultSite::Point, index as u64, attempt) {
                Some(FaultAction::Panic) => {
                    panic!("injected fault: point:panic (index {index}, attempt {attempt})")
                }
                Some(FaultAction::Io) => {
                    return Err(format!(
                        "injected fault: point:io (index {index}, attempt {attempt})"
                    ))
                }
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                None => {}
            }
            let workload = plan.sizes.workload(point.kind);
            let ObservedRun {
                run,
                metrics,
                trace,
            } = simulate_workload_threads(
                &workload,
                &point.cluster,
                &plan.latency,
                &plan.observers,
                plan.resolved_sim_threads(),
            );
            Ok(PointResult {
                index,
                point: point.clone(),
                run,
                metrics,
                trace,
            })
        }));
        last = Some(match attempt_run {
            Ok(Ok(result)) => {
                return PointOutcome::Ok {
                    result,
                    attempts: attempt + 1,
                }
            }
            Ok(Err(error)) => PointOutcome::Failed {
                index,
                point: point.clone(),
                error,
                attempts: attempt + 1,
            },
            Err(payload) => PointOutcome::Panicked {
                index,
                point: point.clone(),
                message: panic_message(payload),
                attempts: attempt + 1,
            },
        });
    }
    last.expect("at least one attempt ran")
}

/// [`run_sweep`] with crash safety and panic quarantine.
///
/// * Every point runs under `catch_unwind` with bounded retry
///   ([`CheckpointConfig::max_retries`]) and deterministic backoff; a
///   point that keeps failing is quarantined as
///   [`PointOutcome::Failed`]/[`PointOutcome::Panicked`] instead of
///   aborting the sweep.
/// * With [`CheckpointConfig::path`] set, completed points append to a
///   JSONL journal (header = [`plan_fingerprint`]; one flushed line per
///   point), so a killed process loses at most one in-flight record.
/// * With [`CheckpointConfig::resume`], the journal's fingerprint is
///   verified (mismatch = error) and journaled `Ok` points are loaded
///   instead of re-executed — the serde shim's exact f64 round-trip
///   makes the combined output byte-identical to an uninterrupted run.
///
/// With faults off and no journal, the outcome's results are
/// byte-identical to [`run_sweep`]'s at any `--jobs` width
/// (`crates/bench/tests/checkpoint.rs` locks this in).
pub fn run_sweep_checkpointed(
    plan: &SweepPlan,
    cfg: &CheckpointConfig,
) -> Result<SweepOutcome, String> {
    let n = plan.len();
    let fingerprint = plan_fingerprint(plan);
    let mut outcomes: Vec<Option<PointOutcome>> = (0..n).map(|_| None).collect();
    let mut resumed = 0usize;
    let mut writer: Option<Mutex<JournalWriter>> = None;
    if let Some(path) = &cfg.path {
        let loaded = load_journal(path, fingerprint, cfg.resume)?;
        if cfg.resume {
            let record_count = loaded.records.len() as u64;
            for (_, rec) in loaded.records {
                let index = rec.index;
                if let Some(outcome) = rec.into_outcome(plan) {
                    outcomes[index] = Some(outcome);
                    resumed += 1;
                }
            }
            writer = Some(Mutex::new(JournalWriter::open(
                path,
                fingerprint,
                plan,
                loaded.header_ok,
                record_count,
            )?));
        } else {
            if loaded.header_ok || !loaded.records.is_empty() {
                eprintln!(
                    "[sweep {}] checkpoint `{}` exists; starting fresh (pass --resume to \
                     continue it)",
                    plan.name,
                    path.display()
                );
            }
            writer = Some(Mutex::new(JournalWriter::open(
                path,
                fingerprint,
                plan,
                false,
                0,
            )?));
        }
    }

    let pending: Vec<(usize, GridPoint)> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(i, _)| (i, plan.points()[i].clone()))
        .collect();
    let workers = jobs().min(pending.len().max(1));
    let t0 = Instant::now();
    eprintln!(
        "[sweep {}] {n} point(s), {} pending ({resumed} resumed) on {workers} worker(s)",
        plan.name,
        pending.len()
    );
    let done = AtomicUsize::new(0);
    let checkpoint_errors = AtomicUsize::new(0);
    let fresh: Vec<PointOutcome> = if pending.is_empty() {
        Vec::new()
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("sweep thread pool");
        let total_pending = pending.len();
        pool.install(|| {
            pending
                .into_par_iter()
                .map(|(index, point)| {
                    let tp = Instant::now();
                    let outcome = run_point_with_retries(plan, index, &point, cfg);
                    if let Some(w) = &writer {
                        let record = JournalRecord::from_outcome(&outcome);
                        if let Err(e) = lock_unpoisoned(w).append(&record, &cfg.faults) {
                            checkpoint_errors.fetch_add(1, Ordering::SeqCst);
                            eprintln!(
                                "[sweep {}] warning: checkpoint append for point {index} \
                                 failed ({e}); the point will re-run on resume",
                                plan.name
                            );
                        }
                    }
                    let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
                    let verdict = match &outcome {
                        PointOutcome::Ok { .. } => "ok".to_string(),
                        PointOutcome::Failed { .. } => "FAILED (quarantined)".to_string(),
                        PointOutcome::Panicked { .. } => "PANICKED (quarantined)".to_string(),
                    };
                    eprintln!(
                        "[sweep {}] {finished}/{total_pending}: {} on {} — {verdict} ({:.2}s)",
                        plan.name,
                        point.kind.name(),
                        point.cluster.name.as_deref().unwrap_or("unnamed"),
                        tp.elapsed().as_secs_f64(),
                    );
                    outcome
                })
                .collect()
        })
    };
    for outcome in fresh {
        let index = outcome.index();
        outcomes[index] = Some(outcome);
    }
    let outcomes: Vec<PointOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every grid index resolved"))
        .collect();
    let quarantined = outcomes.iter().filter(|o| o.result().is_none()).count();
    eprintln!(
        "[sweep {}] finished: {} ok, {quarantined} quarantined, {resumed} resumed ({:.2}s)",
        plan.name,
        n - quarantined,
        t0.elapsed().as_secs_f64()
    );
    if let Some(w) = writer {
        drop(w); // make the flush-ordering explicit: journal closes before return
    }
    Ok(SweepOutcome {
        outcomes,
        resumed,
        checkpoint_errors: checkpoint_errors.load(Ordering::SeqCst),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::MachineSpec;

    fn tiny_cluster(name: &str, procs: u32) -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(procs, 256, 64, 200.0)).named(name)
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn configure_from_args_parses_both_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(configure_from_args(&args(&["--jobs", "2"])), 2);
        assert_eq!(configure_from_args(&args(&["--jobs=5"])), 5);
        set_jobs(0);
        std::env::remove_var("MEMHIER_JOBS");
    }

    #[test]
    fn sweep_returns_grid_order() {
        let clusters = [tiny_cluster("A", 1), tiny_cluster("B", 2)];
        let kinds = [WorkloadKind::Fft, WorkloadKind::Lu];
        let plan = SweepPlan::new("order", Sizes::Small).cross(&clusters, &kinds);
        assert_eq!(plan.len(), 4);
        let results = run_sweep(&plan);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.point.kind, plan.points()[i].kind);
            assert_eq!(r.point.cluster, plan.points()[i].cluster);
            assert!(r.run.report.wall_cycles > 0);
        }
        // Cluster-major order: first two points run on A.
        assert_eq!(results[0].point.cluster.name.as_deref(), Some("A"));
        assert_eq!(results[1].point.cluster.name.as_deref(), Some("A"));
        assert_eq!(results[2].point.cluster.name.as_deref(), Some("B"));
    }

    #[test]
    fn char_cache_survives_poisoning() {
        // Panic while holding the cache lock (what an unwinding worker
        // used to do), then prove later callers still get answers
        // instead of a poisoned-lock panic cascade.
        let poison = std::thread::spawn(|| {
            let _guard = char_cache().lock().unwrap_or_else(PoisonError::into_inner);
            panic!("deliberate poison");
        });
        assert!(poison.join().is_err(), "poisoning thread must panic");
        let w = Sizes::Small.workload(WorkloadKind::Fft);
        let a = characterize_cached(&w, 64);
        let b = characterize_cached(&w, 64);
        assert!(Arc::ptr_eq(&a, &b), "cache still memoizes after poisoning");
        let _ = char_cache_len();
    }

    #[test]
    fn checkpoint_config_global_roundtrip() {
        // Uninstalled by default in this process…
        let prior = checkpoint_config();
        let cfg = CheckpointConfig {
            max_retries: 7,
            ..CheckpointConfig::default()
        };
        assert!(!cfg.is_active(), "retries alone do not activate routing");
        set_checkpoint_config(Some(cfg));
        assert_eq!(checkpoint_config().map(|c| c.max_retries), Some(7));
        set_checkpoint_config(prior);
    }

    #[test]
    fn fingerprint_tracks_plan_identity() {
        let base =
            SweepPlan::new("fp", Sizes::Small).point(&tiny_cluster("A", 1), WorkloadKind::Fft);
        let same =
            SweepPlan::new("fp", Sizes::Small).point(&tiny_cluster("A", 1), WorkloadKind::Fft);
        assert_eq!(plan_fingerprint(&base), plan_fingerprint(&same));
        let renamed =
            SweepPlan::new("fp2", Sizes::Small).point(&tiny_cluster("A", 1), WorkloadKind::Fft);
        assert_ne!(plan_fingerprint(&base), plan_fingerprint(&renamed));
        let regrown =
            SweepPlan::new("fp", Sizes::Small).point(&tiny_cluster("B", 2), WorkloadKind::Fft);
        assert_ne!(plan_fingerprint(&base), plan_fingerprint(&regrown));
        let resized =
            SweepPlan::new("fp", Sizes::Medium).point(&tiny_cluster("A", 1), WorkloadKind::Fft);
        assert_ne!(plan_fingerprint(&base), plan_fingerprint(&resized));
    }

    #[test]
    fn characterization_cache_hits() {
        let w = Sizes::Small.workload(WorkloadKind::Lu);
        let a = characterize_cached(&w, 64);
        let before = char_cache_len();
        let b = characterize_cached(&w, 64);
        assert_eq!(
            char_cache_len(),
            before,
            "second call must not grow the cache"
        );
        assert!(Arc::ptr_eq(&a, &b), "second call must be the cached Arc");
        // A different granularity is a different stream.
        let c = characterize_cached(&w, 256);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.name, c.name);
    }
}
