//! Plain-text result tables and JSON provenance dumps.

use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", c, width = widths[i.min(ncol - 1)]));
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Directory for experiment artifacts (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Dump a serializable result next to the printed table for provenance
/// (EXPERIMENTS.md references these files).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create json");
    let s = serde_json::to_string_pretty(value).expect("serialize");
    f.write_all(s.as_bytes()).expect("write json");
    eprintln!("[saved {}]", path.display());
}

/// Format seconds in the paper's per-figure scientific style.
pub fn fmt_seconds(s: f64) -> String {
    format!("{s:.3e}")
}

/// Format a relative difference as a signed percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb", "c"]);
        t.row(vec!["xx".into(), "y".into(), "zzz".into()]);
        let r = t.render();
        assert!(r.contains("== T =="));
        assert!(r.contains("a   bbbb  c"));
        assert!(r.contains("xx  y     zzz"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(0.0525), "+5.2%");
        assert_eq!(fmt_pct(-0.101), "-10.1%");
        assert!(fmt_seconds(9.3e-8).contains("e-8"));
    }

    #[test]
    fn json_roundtrip() {
        save_json("test_artifact", &serde_json::json!({"x": 1}));
        let p = experiments_dir().join("test_artifact.json");
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.contains("\"x\""));
    }
}
