//! The crash-safety contracts of `run_sweep_checkpointed`:
//!
//! * with faults off, its results are **byte-identical** to `run_sweep`
//!   at any `--jobs` width;
//! * injected faults quarantine individual points without perturbing the
//!   rest of the grid;
//! * a journal written by one run lets a resumed run skip completed
//!   points and still reproduce the uninterrupted output byte for byte
//!   (including attached observer artifacts);
//! * a fingerprint mismatch refuses to resume; a torn trailing line (the
//!   SIGKILL case) is tolerated.

use memhier_bench::faults::FaultPlan;
use memhier_bench::runner::{ObserverConfig, Sizes};
use memhier_bench::sweeprun::{
    run_sweep, run_sweep_checkpointed, set_jobs, CheckpointConfig, PointOutcome, PointResult,
    SweepPlan,
};
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::WorkloadKind;
use std::path::{Path, PathBuf};

/// `set_jobs` is process-global, so tests touching it must not overlap.
static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn plan() -> SweepPlan {
    let clusters = [
        ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0)).named("smp2"),
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet100,
        )
        .named("cow2"),
    ];
    let kinds = [WorkloadKind::Fft, WorkloadKind::Lu];
    SweepPlan::new("checkpoint", Sizes::Small).cross(&clusters, &kinds)
}

fn observed_plan() -> SweepPlan {
    plan().with_observers(ObserverConfig {
        metrics_window: Some(50_000),
        trace_capacity: Some(128),
    })
}

/// Serialize everything a sweep produces, the way the experiment
/// binaries do: report + counters + any observer artifacts.
fn render(results: &[&PointResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&serde_json::to_string_pretty(&r.run.report).unwrap());
        out.push_str(&serde_json::to_string(&r.run.counters).unwrap());
        if let Some(m) = &r.metrics {
            out.push_str(&serde_json::to_string_pretty(m).unwrap());
        }
        if let Some(t) = &r.trace {
            out.push_str(&t.to_jsonl());
        }
        out.push('\n');
    }
    out
}

fn temp_journal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("memhier-ckpt-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Keep the header plus the first `keep` records of a journal (what the
/// file looks like after a kill partway through the grid).
fn truncate_journal(path: &Path, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap().to_string();
    let kept: Vec<&str> = lines.take(keep).collect();
    std::fs::write(path, format!("{header}\n{}\n", kept.join("\n"))).unwrap();
}

fn faults(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec).unwrap()
}

#[test]
fn faults_off_checkpointed_is_byte_identical_to_run_sweep() {
    let _guard = JOBS_LOCK.lock().unwrap();
    set_jobs(1);
    let baseline = run_sweep(&plan());
    set_jobs(8);
    let outcome = run_sweep_checkpointed(&plan(), &CheckpointConfig::default()).unwrap();
    set_jobs(0);
    assert_eq!(outcome.resumed, 0);
    assert_eq!(outcome.checkpoint_errors, 0);
    assert_eq!(outcome.quarantined(), 0);
    assert!(outcome.outcomes.iter().all(|o| o.attempts() == 1));
    let base_refs: Vec<&PointResult> = baseline.iter().collect();
    assert!(
        render(&base_refs) == render(&outcome.results()),
        "checkpointed --jobs 8 output must be byte-identical to run_sweep --jobs 1"
    );
}

#[test]
fn nth_panic_faults_quarantine_only_their_points() {
    let _guard = JOBS_LOCK.lock().unwrap();
    set_jobs(2);
    let baseline = run_sweep(&plan());
    // nth fires on grid index alone, so retries cannot clear it: indices
    // 1 and 3 stay quarantined no matter the retry budget.
    let cfg = CheckpointConfig {
        faults: faults("point:panic:nth=2"),
        max_retries: 1,
        ..CheckpointConfig::default()
    };
    let outcome = run_sweep_checkpointed(&plan(), &cfg).unwrap();
    set_jobs(0);
    assert_eq!(outcome.outcomes.len(), 4);
    assert_eq!(outcome.quarantined(), 2);
    for (i, o) in outcome.outcomes.iter().enumerate() {
        if i % 2 == 1 {
            match o {
                PointOutcome::Panicked {
                    message, attempts, ..
                } => {
                    assert!(message.contains("injected fault: point:panic"), "{message}");
                    assert_eq!(*attempts, 2, "one try + one retry before quarantine");
                }
                other => panic!("index {i} should be quarantined, got {other:?}"),
            }
        } else {
            assert!(o.result().is_some(), "index {i} should succeed");
        }
    }
    // The surviving points are untouched by their neighbors' panics.
    let survivors = outcome.results();
    let expected: Vec<&PointResult> = baseline.iter().step_by(2).collect();
    assert!(render(&survivors) == render(&expected));
}

#[test]
fn io_faults_quarantine_as_failed_with_the_injected_error() {
    let _guard = JOBS_LOCK.lock().unwrap();
    set_jobs(1);
    let cfg = CheckpointConfig {
        faults: faults("point:io:nth=4"),
        max_retries: 0,
        ..CheckpointConfig::default()
    };
    let outcome = run_sweep_checkpointed(&plan(), &cfg).unwrap();
    set_jobs(0);
    match &outcome.outcomes[3] {
        PointOutcome::Failed {
            error, attempts, ..
        } => {
            assert!(error.contains("injected fault: point:io"), "{error}");
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(outcome.quarantined(), 1);
}

#[test]
fn rate_faults_with_retries_still_complete_deterministically() {
    let _guard = JOBS_LOCK.lock().unwrap();
    set_jobs(2);
    let cfg = CheckpointConfig {
        faults: faults("point:panic:rate=0.5:seed=11"),
        max_retries: 4,
        ..CheckpointConfig::default()
    };
    let a = run_sweep_checkpointed(&plan(), &cfg).unwrap();
    let b = run_sweep_checkpointed(&plan(), &cfg).unwrap();
    set_jobs(0);
    // Fault decisions are pure functions of (seed, site, index, attempt):
    // two runs agree exactly on which points survived and when.
    let shape = |o: &memhier_bench::sweeprun::SweepOutcome| -> Vec<(usize, bool, u32)> {
        o.outcomes
            .iter()
            .map(|p| (p.index(), p.result().is_some(), p.attempts()))
            .collect()
    };
    assert_eq!(shape(&a), shape(&b));
    assert!(render(&a.results()) == render(&b.results()));
    // With 5 attempts at rate 0.5 the chance a point stays quarantined is
    // ~3% — and whatever the draw, it is frozen by the seed.  At seed=11
    // every point completes.
    assert_eq!(a.quarantined(), 0);
}

#[test]
fn resume_skips_completed_points_and_reproduces_output() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let path = temp_journal("resume");
    set_jobs(1);
    let full = run_sweep_checkpointed(
        &observed_plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    let uninterrupted = render(&full.results());
    assert!(
        uninterrupted.contains("window_cycles"),
        "observers attached"
    );

    // Resume over the complete journal: nothing re-runs.
    let resumed = run_sweep_checkpointed(
        &observed_plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.resumed, 4);
    assert!(
        render(&resumed.results()) == uninterrupted,
        "journal-loaded results must round-trip byte-identically"
    );

    // Kill simulation: keep the first 2 records, resume the rest.
    truncate_journal(&path, 2);
    let partial = run_sweep_checkpointed(
        &observed_plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    set_jobs(0);
    assert_eq!(partial.resumed, 2, "only unfinished points re-execute");
    assert!(
        render(&partial.results()) == uninterrupted,
        "resumed output must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_trailing_line_is_tolerated_on_resume() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let path = temp_journal("torn");
    set_jobs(1);
    let full = run_sweep_checkpointed(
        &plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    let uninterrupted = render(&full.results());
    // A process killed mid-append leaves a torn final line.
    truncate_journal(&path, 3);
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("{\"index\":3,\"status\":\"Ok\",\"att");
    std::fs::write(&path, text).unwrap();
    let resumed = run_sweep_checkpointed(
        &plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    set_jobs(0);
    assert_eq!(resumed.resumed, 3, "the torn record re-runs");
    assert!(render(&resumed.results()) == uninterrupted);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fingerprint_mismatch_refuses_resume_but_restarts_fresh() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let path = temp_journal("fp");
    set_jobs(1);
    run_sweep_checkpointed(
        &plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    // A different plan (extra point) may not resume this journal…
    let other = plan().point(
        &ClusterSpec::single(MachineSpec::new(4, 256, 64, 200.0)).named("smp4"),
        WorkloadKind::Radix,
    );
    let err = run_sweep_checkpointed(
        &other,
        &CheckpointConfig {
            path: Some(path.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("refusing to resume"), "{err}");
    // …but without --resume it starts the journal over for the new plan.
    let fresh = run_sweep_checkpointed(
        &other,
        &CheckpointConfig {
            path: Some(path.clone()),
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    set_jobs(0);
    assert_eq!(fresh.resumed, 0);
    assert_eq!(fresh.outcomes.len(), 5);
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        text.lines().count(),
        6,
        "journal restarted: header + one record per point"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_checkpoint_io_errors_are_counted_and_recovered_on_resume() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let path = temp_journal("ckptio");
    set_jobs(1);
    let cfg = CheckpointConfig {
        path: Some(path.clone()),
        faults: faults("ckpt:io:nth=2"),
        ..CheckpointConfig::default()
    };
    let first = run_sweep_checkpointed(&plan(), &cfg).unwrap();
    let uninterrupted = render(&first.results());
    assert_eq!(first.checkpoint_errors, 2, "every 2nd journal append fails");
    assert_eq!(first.quarantined(), 0, "points still complete in memory");
    // The journal is missing the faulted records, so a resume re-runs
    // exactly those points — with faults off, to finish cleanly.
    let resumed = run_sweep_checkpointed(
        &plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    set_jobs(0);
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.checkpoint_errors, 0);
    assert!(render(&resumed.results()) == uninterrupted);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn quarantined_points_are_journaled_but_rerun_on_resume() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let path = temp_journal("quarantine");
    set_jobs(1);
    let cfg = CheckpointConfig {
        path: Some(path.clone()),
        faults: faults("point:panic:nth=3"),
        max_retries: 0,
        ..CheckpointConfig::default()
    };
    let faulty = run_sweep_checkpointed(&plan(), &cfg).unwrap();
    assert_eq!(faulty.quarantined(), 1);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"Panicked\""),
        "quarantine is recorded for postmortems:\n{text}"
    );
    // Resuming with faults off re-runs only the quarantined point and
    // completes the grid.
    let resumed = run_sweep_checkpointed(
        &plan(),
        &CheckpointConfig {
            path: Some(path.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .unwrap();
    set_jobs(0);
    assert_eq!(resumed.resumed, 3);
    assert_eq!(resumed.quarantined(), 0);
    let _ = std::fs::remove_file(&path);
}
