//! The sweep runner's determinism contract: the same [`SweepPlan`]
//! executed serially (`--jobs 1`) and with maximum fan-out (`--jobs 8`)
//! must produce **byte-identical** serialized results — same grid order,
//! same simulator outputs, no scheduling leakage.
//!
//! This is what makes the JSON artifacts under `target/experiments/`
//! reproducible regardless of the host's core count.

use memhier_bench::runner::{ObserverConfig, Sizes};
use memhier_bench::sweeprun::{run_sweep, set_jobs, SweepPlan};
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_sim::report::SimReport;
use memhier_workloads::registry::WorkloadKind;

fn plan() -> SweepPlan {
    let clusters = [
        ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0)).named("smp2"),
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet100,
        )
        .named("cow2"),
        ClusterSpec::cluster(MachineSpec::new(2, 256, 64, 200.0), 2, NetworkKind::Atm155)
            .named("clump2x2"),
    ];
    let kinds = [WorkloadKind::Fft, WorkloadKind::Lu, WorkloadKind::Radix];
    SweepPlan::new("determinism", Sizes::Small).cross(&clusters, &kinds)
}

/// `set_jobs` is process-global, so tests touching it must not overlap.
static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn run_serialized(jobs: usize) -> (String, Vec<String>) {
    set_jobs(jobs);
    let results = run_sweep(&plan());
    set_jobs(0);
    let reports: Vec<&SimReport> = results.iter().map(|r| &r.run.report).collect();
    let json = serde_json::to_string_pretty(&reports).expect("serialize reports");
    // Counters are not serde types; their Debug form is just as binding.
    let counters = results
        .iter()
        .map(|r| format!("{:?}", r.run.counters))
        .collect();
    (json, counters)
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let (json_serial, counters_serial) = run_serialized(1);
    let (json_parallel, counters_parallel) = run_serialized(8);
    assert!(
        json_serial == json_parallel,
        "serialized sweep results differ between --jobs 1 and --jobs 8\n\
         serial:\n{json_serial}\nparallel:\n{json_parallel}"
    );
    assert_eq!(counters_serial, counters_parallel);
    // And the artifacts are non-trivial: every point simulated work.
    assert!(json_serial.contains("wall_cycles"));
    assert_eq!(counters_serial.len(), 9);
}

/// Same contract with observers attached: metrics windows and event
/// traces are part of the deterministic output, not a scheduling
/// side-channel — `--jobs 8` must reproduce `--jobs 1` byte for byte.
#[test]
fn observed_sweep_is_byte_identical_across_jobs() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let observed_plan = || {
        plan().with_observers(ObserverConfig {
            metrics_window: Some(50_000),
            trace_capacity: Some(256),
        })
    };
    let run_fingerprint = |jobs: usize| -> String {
        set_jobs(jobs);
        let results = run_sweep(&observed_plan());
        set_jobs(0);
        let mut out = String::new();
        for r in &results {
            let metrics = r.metrics.as_ref().expect("metrics attached");
            let trace = r.trace.as_ref().expect("trace attached");
            out.push_str(&serde_json::to_string_pretty(&r.run.report).unwrap());
            out.push_str(&serde_json::to_string_pretty(metrics).unwrap());
            out.push_str(&trace.to_jsonl());
        }
        out
    };
    let serial = run_fingerprint(1);
    let parallel = run_fingerprint(8);
    assert!(
        serial == parallel,
        "observed sweep output differs between --jobs 1 and --jobs 8"
    );
    assert!(serial.contains("window_cycles"));
}

#[test]
fn repeated_serial_runs_are_stable() {
    // Guards the fixed-seed contract the byte-identity test rests on: if
    // any workload picked up entropy (time, ASLR, iteration order of a
    // hash map), two serial runs would already disagree.
    let _guard = JOBS_LOCK.lock().unwrap();
    let (a, _) = run_serialized(1);
    let (b, _) = run_serialized(1);
    assert!(a == b, "two serial runs of the same plan diverged");
}
