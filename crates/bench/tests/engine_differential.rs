//! Differential pin on the simulator's exact outputs.
//!
//! The PR-5 hot-path rewrite (struct-of-arrays caches, chunked replay)
//! must be **bit-identical** to the engine it replaces.  These fixtures
//! were blessed from the pre-rewrite engine; every subsequent engine
//! change must reproduce them byte-for-byte across all five platform
//! back-ends × the four paper kernels, or consciously re-bless:
//!
//! ```text
//! MEMHIER_BLESS=1 cargo test -p memhier-bench --test engine_differential
//! ```
//!
//! Unlike `tests/golden.rs` (which pins qualitative orderings precisely
//! because absolute times drift with model tuning), these snapshots pin
//! the full `SimReport` JSON: the whole point of the rewrite is that
//! absolute results do **not** move.

use memhier_bench::runner::{simulate_workload_threads, ObserverConfig, Sizes};
use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::WorkloadKind;
use std::fs;
use std::path::PathBuf;

/// The five platform back-ends of the paper's Table 1 (SMP, COW over a
/// bus, COW over a switch, CLUMP over a bus, CLUMP over a switch).
fn platforms() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        (
            "smp",
            ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0)),
        ),
        (
            "cow_bus",
            ClusterSpec::cluster(
                MachineSpec::new(1, 256, 64, 200.0),
                4,
                NetworkKind::Ethernet100,
            ),
        ),
        (
            "cow_switch",
            ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, NetworkKind::Atm155),
        ),
        (
            "clump_bus",
            ClusterSpec::cluster(
                MachineSpec::new(2, 256, 128, 200.0),
                2,
                NetworkKind::Ethernet100,
            ),
        ),
        (
            "clump_switch",
            ClusterSpec::cluster(MachineSpec::new(2, 256, 128, 200.0), 2, NetworkKind::Atm155),
        ),
    ]
}

const WORKLOADS: [WorkloadKind; 4] = [
    WorkloadKind::Fft,
    WorkloadKind::Lu,
    WorkloadKind::Radix,
    WorkloadKind::Edge,
];

/// Miss-heavy platforms: caches an order of magnitude too small for the
/// working sets, so nearly every reference leaves L1 and exercises the
/// flattened directory/home-map miss path rather than the hit fast
/// path the Table-1 fixtures are dominated by.
fn miss_platforms() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        // Streaming pressure: an SMP whose 8 KB caches turn the
        // kernels' sweeps into α→1 streams of misses.
        (
            "miss_smp_stream",
            ClusterSpec::single(MachineSpec::new(4, 8, 128, 200.0)),
        ),
        // Large working set relative to cache *and* split across
        // machines, so misses fan out over the network/home path too.
        (
            "miss_clump_bigset",
            ClusterSpec::cluster(
                MachineSpec::new(2, 8, 128, 200.0),
                2,
                NetworkKind::Ethernet100,
            ),
        ),
    ]
}

/// The miss-heavy fixtures run the two lowest-locality kernels: Radix
/// (scattered histogram writes) and the TPC-C-like commercial mix.
const MISS_WORKLOADS: [WorkloadKind; 2] = [WorkloadKind::Radix, WorkloadKind::Tpcc];

/// The registry-redesign back-ends: a NUMA-aware SMP (two memory
/// domains behind one coherence fabric) and a multi-rack fat-tree COW
/// (8 single-processor nodes, 4 per rack).
fn extended_platforms() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        (
            "numa_smp",
            ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0).with_numa(2, 40.0)),
        ),
        (
            "fattree_cow",
            ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 8, NetworkKind::FatTree),
        ),
    ]
}

/// The four extended workloads ride the extended platforms: every new
/// address-stream generator is pinned on every new back-end.
const EXTENDED_WORKLOADS: [WorkloadKind; 4] = [
    WorkloadKind::Stencil4D,
    WorkloadKind::Stream,
    WorkloadKind::GraphWalk,
    WorkloadKind::Inference,
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/reports")
}

fn check_report(name: &str, actual: &str) {
    let path = fixture_dir().join(format!("{name}.json"));
    if std::env::var_os("MEMHIER_BLESS").is_some() {
        fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        fs::write(&path, actual).expect("write fixture");
        eprintln!("[blessed {}]", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing report fixture {}; generate it with MEMHIER_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "SimReport for `{name}` is no longer byte-identical to the \
         blessed engine output.\nThe engine hot path must not change \
         results; if this difference is an intentional model change, \
         re-bless with MEMHIER_BLESS=1 and justify it in the PR."
    );
}

fn run_one(plat_name: &str, cluster: &ClusterSpec, kind: WorkloadKind) {
    // Pin the classic engine (`sim_threads = 0`) so these fixtures stay
    // byte-stable even when the CI matrix exports MEMHIER_SIM_THREADS:
    // they bless the *reference* engine the epoch engine is diffed
    // against (see tests/thread_invariance.rs).
    let run = simulate_workload_threads(
        &Sizes::Small.workload(kind),
        cluster,
        &LatencyParams::paper(),
        &ObserverConfig::default(),
        0,
    )
    .run;
    let mut json = serde_json::to_string_pretty(&run.report).expect("serialize report");
    json.push('\n');
    check_report(
        &format!(
            "{plat_name}_{}",
            kind.name().to_ascii_lowercase().replace('-', "")
        ),
        &json,
    );
}

// One test per platform so failures localize and the four kernels of a
// platform run within one process sequentially (each sim already spawns
// its own producer threads).

#[test]
fn reports_smp() {
    let (name, cluster) = &platforms()[0];
    for kind in WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_cow_bus() {
    let (name, cluster) = &platforms()[1];
    for kind in WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_cow_switch() {
    let (name, cluster) = &platforms()[2];
    for kind in WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_clump_bus() {
    let (name, cluster) = &platforms()[3];
    for kind in WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_clump_switch() {
    let (name, cluster) = &platforms()[4];
    for kind in WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_numa_smp() {
    let (name, cluster) = &extended_platforms()[0];
    for kind in EXTENDED_WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_fattree_cow() {
    let (name, cluster) = &extended_platforms()[1];
    for kind in EXTENDED_WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_miss_smp_stream() {
    let (name, cluster) = &miss_platforms()[0];
    for kind in MISS_WORKLOADS {
        run_one(name, cluster, kind);
    }
}

#[test]
fn reports_miss_clump_bigset() {
    let (name, cluster) = &miss_platforms()[1];
    for kind in MISS_WORKLOADS {
        run_one(name, cluster, kind);
    }
}
