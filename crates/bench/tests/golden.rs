//! Golden-snapshot tests for the paper's *qualitative* claims.
//!
//! Absolute simulated times drift whenever the simulator is tuned, so
//! snapshotting them would make every calibration tweak a test failure.
//! What the paper actually argues — and what these tests pin down — are
//! **orderings**: which platform configuration is fastest for each
//! kernel in Figures 2–4, and whether our measured (α, β, ρ) land above
//! or below the paper's published Table 2 values.
//!
//! Each test runs the experiment (which writes its JSON artifact under
//! `target/experiments/`), re-reads that artifact — so the provenance
//! path itself is exercised — reduces it to a stable text fingerprint,
//! and compares against a checked-in `tests/golden/*.snap` file.
//!
//! To regenerate snapshots after an intentional model change:
//!
//! ```text
//! MEMHIER_BLESS=1 cargo test -p memhier-bench --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use memhier_bench::experiments;
use memhier_bench::runner::{simulate_workload_threads, ObserverConfig, Sizes};
use memhier_bench::tables::experiments_dir;
use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::WorkloadKind;

fn snap_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against `tests/golden/<name>.snap`, or rewrite the
/// snapshot when `MEMHIER_BLESS` is set.
fn check_snapshot(name: &str, actual: &str) {
    let path = snap_dir().join(format!("{name}.snap"));
    if std::env::var_os("MEMHIER_BLESS").is_some() {
        fs::create_dir_all(snap_dir()).expect("create snapshot dir");
        fs::write(&path, actual).expect("write snapshot");
        eprintln!("[blessed {}]", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; generate it with MEMHIER_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "fingerprint for `{name}` diverged from the golden snapshot.\n\
         If the ordering change is an intentional model improvement,\n\
         re-bless with MEMHIER_BLESS=1 and explain it in the PR."
    );
}

fn load_artifact(name: &str) -> serde_json::Value {
    let path = experiments_dir().join(format!("{name}.json"));
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read artifact {}: {e}", path.display()));
    serde_json::from_str(&text).expect("parse artifact JSON")
}

/// Reduce a figure artifact (array of `FigureRow`s) to one line per
/// workload ranking the configurations by simulated `E(Instr)`,
/// fastest first.  Ties in f64 don't occur between distinct configs.
fn ranking_fingerprint(artifact: &serde_json::Value) -> String {
    let rows = artifact.as_array().expect("figure artifact is an array");
    let mut workloads: Vec<String> = Vec::new();
    for r in rows {
        let w = r["workload"].as_str().expect("workload name").to_string();
        if !workloads.contains(&w) {
            workloads.push(w);
        }
    }
    let mut lines = Vec::new();
    for w in &workloads {
        let mut per: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| r["workload"].as_str() == Some(w))
            .map(|r| {
                (
                    r["config"].as_str().expect("config name").to_string(),
                    r["sim_seconds"].as_f64().expect("sim_seconds"),
                )
            })
            .collect();
        per.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        let order: Vec<&str> = per.iter().map(|(c, _)| c.as_str()).collect();
        lines.push(format!("{w}: {}", order.join(" < ")));
    }
    lines.join("\n")
}

#[test]
fn table2_signs_match_golden() {
    let (_, _chars) = experiments::table2(Sizes::Small, false);
    let artifact = load_artifact("table2");
    // Paper's published Table 2 values (Du & Zhang, Table 2).
    let paper = [
        ("FFT", 1.21, 103.26, 0.20),
        ("LU", 1.30, 90.27, 0.31),
        ("Radix", 1.14, 120.84, 0.37),
        ("EDGE", 1.71, 85.03, 0.45),
    ];
    let sign = |ours: f64, theirs: f64| if ours >= theirs { '+' } else { '-' };
    let rows = artifact.as_array().expect("table2 artifact is an array");
    let mut lines = Vec::new();
    for r in rows {
        let name = r["name"].as_str().expect("name");
        let p = paper.iter().find(|p| p.0 == name).expect("paper row");
        lines.push(format!(
            "{name}: alpha{} beta{} rho{}",
            sign(r["alpha"].as_f64().unwrap(), p.1),
            sign(r["beta"].as_f64().unwrap(), p.2),
            sign(r["rho"].as_f64().unwrap(), p.3),
        ));
    }
    check_snapshot("table2_signs", &lines.join("\n"));
}

#[test]
fn fig2_smp_ranking_matches_golden() {
    let (_, chars) = experiments::table2(Sizes::Small, false);
    let _ = experiments::fig2_smp(Sizes::Small, &chars);
    check_snapshot(
        "fig2_smp_ranking",
        &ranking_fingerprint(&load_artifact("fig2_smp")),
    );
}

#[test]
fn fig3_cow_ranking_matches_golden() {
    let (_, chars) = experiments::table2(Sizes::Small, false);
    let _ = experiments::fig3_cow(Sizes::Small, &chars);
    check_snapshot(
        "fig3_cow_ranking",
        &ranking_fingerprint(&load_artifact("fig3_cow")),
    );
}

/// Reduce a JSON tree to its *shape*: one `path: type` line per leaf,
/// arrays sampled by their first element.  Values are deliberately
/// excluded — cycle counts drift with simulator tuning, but consumers of
/// `--metrics` output depend on the key set and types staying put.
fn schema_fingerprint(path: &str, v: &serde_json::Value, out: &mut Vec<String>) {
    use serde_json::Value;
    match v {
        Value::Object(fields) => {
            for (k, val) in fields {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                schema_fingerprint(&p, val, out);
            }
        }
        Value::Array(a) => match a.first() {
            Some(first) => schema_fingerprint(&format!("{path}[]"), first, out),
            None => out.push(format!("{path}[]: empty")),
        },
        Value::Null => out.push(format!("{path}: null")),
        Value::Bool(_) => out.push(format!("{path}: bool")),
        Value::Number(_) => out.push(format!("{path}: number")),
        Value::String(_) => out.push(format!("{path}: string")),
    }
}

/// The windowed-metrics JSON the CLI writes for `--metrics` is a public
/// surface: pin its schema (not its values) for a small FFT run.
#[test]
fn metrics_json_schema_matches_golden() {
    let cluster = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 32, 200.0),
        2,
        NetworkKind::Ethernet100,
    );
    // Pinned to the classic engine so the schema fixture is identical
    // under the CI MEMHIER_SIM_THREADS matrix legs.
    let out = simulate_workload_threads(
        &Sizes::Small.workload(WorkloadKind::Fft),
        &cluster,
        &LatencyParams::paper(),
        &ObserverConfig {
            metrics_window: Some(100_000),
            trace_capacity: Some(64),
        },
        0,
    );
    let series = out.metrics.expect("metrics requested");
    assert!(
        !series.windows.is_empty(),
        "small FFT must fill at least one window"
    );
    // The series' aggregate block must agree with the printed SimReport —
    // same per-level totals, same traffic (the CLI acceptance contract).
    assert_eq!(
        serde_json::to_string(&series.totals.levels).unwrap(),
        serde_json::to_string(&out.run.report.levels).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&series.totals.traffic).unwrap(),
        serde_json::to_string(&out.run.report.traffic).unwrap()
    );
    let json = serde_json::to_string_pretty(&series).expect("serialize metrics");
    let v: serde_json::Value = serde_json::from_str(&json).expect("parse metrics JSON");
    let mut lines = Vec::new();
    schema_fingerprint("", &v, &mut lines);
    check_snapshot("metrics_schema", &lines.join("\n"));

    // The trace is JSONL: every line parses alone and knows its kind.
    let log = out.trace.expect("trace requested");
    for line in log.to_jsonl().lines() {
        let ev: serde_json::Value = serde_json::from_str(line).expect("parse trace line");
        assert!(ev.get("kind").is_some(), "trace event missing kind: {line}");
    }
}

#[test]
fn fig4_clump_ranking_matches_golden() {
    let (_, chars) = experiments::table2(Sizes::Small, false);
    let _ = experiments::fig4_clump(Sizes::Small, &chars);
    check_snapshot(
        "fig4_clump_ranking",
        &ranking_fingerprint(&load_artifact("fig4_clump")),
    );
}
