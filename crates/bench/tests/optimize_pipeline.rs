//! End-to-end guarantees for the fleet-scale optimizer pipeline
//! ([`run_optimize`]): analytic pruning soundness against full
//! simulation, and byte-identical reports across scheduling widths and
//! checkpoint/resume.

use memhier_bench::runner::simulate_workload;
use memhier_bench::sweeprun::{set_checkpoint_config, set_jobs, CheckpointConfig};
use memhier_bench::{run_optimize, sizes_by_name};
use memhier_core::model::AnalyticModel;
use memhier_cost::{evaluate_space, OptimizeRequest, WorkloadSpec};
use memhier_workloads::registry::WorkloadKind;
use proptest::prelude::*;

/// A compact grid: a handful of feasible points so confirming *all* of
/// them stays cheap.
fn small_grid(req: &mut OptimizeRequest) {
    req.search_space.proc_counts = vec![1, 2];
    req.search_space.cache_kb = vec![256];
    req.search_space.max_machines = 3;
}

proptest! {
    // Each case fully simulates every feasible candidate, so a few
    // cases already cover the property across budgets and grids.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pruning soundness: the analytic stage only ever drops candidates
    /// for *eligibility* reasons (unpriced, over budget, model-rejected)
    /// — never on predicted rank.  So when every feasible survivor is
    /// confirmed, the reported best must equal the true simulation
    /// argmin over the whole feasible set, computed independently here.
    #[test]
    fn pruning_never_evicts_the_simulation_winner(
        kernel in prop_oneof![Just("LU"), Just("FFT"), Just("Radix")],
        budget in 4_000.0f64..12_000.0,
        mem in prop_oneof![Just(vec![32u64, 64]), Just(vec![64]), Just(vec![32])],
    ) {
        let mut req = OptimizeRequest::new(
            WorkloadSpec::named(kernel).expect("paper kernel"),
            budget,
        );
        small_grid(&mut req);
        req.search_space.memory_mb = mem;
        // Confirm everything feasible (the grid is small by design).
        req.confirm = 64;

        let params = req.workload.resolve().expect("named workloads resolve");
        let eval = evaluate_space(
            req.budget,
            req.slo,
            &params,
            &AnalyticModel::default(),
            &req.prices,
            &req.search_space,
        );
        prop_assert_eq!(
            eval.stats.candidates,
            eval.stats.unpriced
                + eval.stats.over_budget
                + eval.stats.model_rejected
                + eval.stats.slo_filtered
                + eval.stats.feasible,
            "every candidate lands in exactly one bucket"
        );
        // Independent ground truth: simulate every feasible spec the
        // kernel can decompose across, bypassing the optimizer entirely.
        let kind = match kernel {
            "LU" => WorkloadKind::Lu,
            "FFT" => WorkloadKind::Fft,
            _ => WorkloadKind::Radix,
        };
        let workload = sizes_by_name(&req.confirm_size).unwrap().workload(kind);
        let simulatable: Vec<_> = eval
            .feasible
            .iter()
            .filter(|r| workload.supports_processes(r.spec.total_procs() as usize))
            .collect();
        if simulatable.is_empty() {
            return Ok(());
        }

        let report = run_optimize(&req).expect("optimize runs");
        prop_assert_eq!(report.search.confirmed, simulatable.len());
        let best = report.best.as_ref().expect("feasible set is non-empty");
        let best_sim = best.simulated.as_ref().expect("best is confirmed");

        let truth: Vec<(String, f64, f64)> = simulatable
            .iter()
            .map(|r| {
                let run = simulate_workload(&workload, &r.spec);
                (r.spec.describe(), run.report.e_instr_seconds, r.cost)
            })
            .collect();
        let winner = truth
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.total_cmp(&b.2)))
            .expect("non-empty");
        prop_assert_eq!(&best.config, &winner.0, "sim winner was evicted");
        prop_assert_eq!(best_sim.seconds, winner.1);
    }
}

fn report_bytes(req: &OptimizeRequest) -> String {
    let report = run_optimize(req).expect("optimize runs");
    serde_json::to_string_pretty(&report.to_json()).expect("serializes")
}

fn confirm_request() -> OptimizeRequest {
    let mut req = OptimizeRequest::new(WorkloadSpec::named("LU").unwrap(), 8_000.0);
    small_grid(&mut req);
    req.search_space.memory_mb = vec![32, 64];
    req.confirm = 3;
    req
}

/// The full report — simulation confirmations included — must be
/// byte-identical however the sweep was scheduled: `--jobs 1` vs
/// `--jobs 8`, and an uninterrupted run vs a checkpointed run resumed
/// from its own journal.
#[test]
fn optimize_report_is_byte_identical_across_jobs_and_resume() {
    let req = confirm_request();

    set_jobs(1);
    let narrow = report_bytes(&req);
    set_jobs(8);
    let wide = report_bytes(&req);
    set_jobs(0);
    assert_eq!(narrow, wide, "--jobs must not change a single byte");

    // Checkpoint the confirmation sweep, then resume from the complete
    // journal: every point is skipped, the report is unchanged.
    let journal = {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "memhier-optimize-ckpt-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    };
    set_checkpoint_config(Some(CheckpointConfig {
        path: Some(journal.clone()),
        resume: false,
        ..CheckpointConfig::default()
    }));
    let checkpointed = report_bytes(&req);
    set_checkpoint_config(Some(CheckpointConfig {
        path: Some(journal.clone()),
        resume: true,
        ..CheckpointConfig::default()
    }));
    let resumed = report_bytes(&req);
    set_checkpoint_config(None);
    let _ = std::fs::remove_file(&journal);

    assert_eq!(narrow, checkpointed, "journaling must not change bytes");
    assert_eq!(narrow, resumed, "resume must not change bytes");
}
