//! Reproduction-quality regression guards.
//!
//! The fast test checks the pipeline end to end at small size; the
//! `#[ignore]`d test re-runs the Figure-2 experiment at medium size and
//! asserts the calibrated model stays inside the band EXPERIMENTS.md
//! reports (run with `cargo test -p memhier-bench --test quality_guard --
//! --ignored --nocapture`).

use memhier_bench::experiments::{fig2_smp, table2};
use memhier_bench::runner::Sizes;

#[test]
fn small_figure2_pipeline_is_sane() {
    let (_, chars) = table2(Sizes::Small, false);
    let (_, rows) = fig2_smp(Sizes::Small, &chars);
    assert_eq!(rows.len(), 6 * 4, "6 configs x 4 kernels");
    for r in &rows {
        assert!(r.sim_seconds > 0.0 && r.sim_seconds.is_finite(), "{r:?}");
        assert!(r.model_calibrated_seconds.is_finite(), "{r:?}");
        // Calibrated model within 10x of simulation even at tiny sizes.
        let ratio = r.model_calibrated_seconds / r.sim_seconds;
        assert!((0.1..10.0).contains(&ratio), "{r:?}");
    }
}

#[test]
#[ignore = "several minutes: medium-size Figure 2 sweep"]
fn medium_figure2_quality_band() {
    let (_, chars) = table2(Sizes::Medium, false);
    let (_, rows) = fig2_smp(Sizes::Medium, &chars);
    let mean: f64 = rows.iter().map(|r| r.diff_calibrated.abs()).sum::<f64>() / rows.len() as f64;
    // EXPERIMENTS.md reports ~20%; guard against regressions past 35%.
    assert!(mean < 0.35, "calibrated mean |diff| regressed to {mean:.3}");
}
