//! Round-trip guarantees for the unified [`Scenario`] API.
//!
//! Two layers:
//!
//! * a property test that *builder → JSON → parse → JSON* is a fixed
//!   point across randomly chosen configs, workloads, sizes, observers,
//!   and fault plans (with the compact-string and `Display` spellings
//!   parsing back to the same value);
//! * golden fixtures pinning the wire formats: a `memhierd` `/v1/sweep`
//!   request body and a `memhier sweep --configs @plan.json` plan file
//!   must deserialize into *identical* `Scenario` batches, and a
//!   `/v1/simulate` body must equal its builder spelling.

use memhier_bench::faults::FaultPlan;
use memhier_bench::runner::Sizes;
use memhier_bench::{Scenario, ScenarioError};
use memhier_workloads::registry::WorkloadKind;
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::Fft),
        Just(WorkloadKind::Lu),
        Just(WorkloadKind::Radix),
        Just(WorkloadKind::Edge),
        Just(WorkloadKind::Tpcc),
        Just(WorkloadKind::Stencil4D),
        Just(WorkloadKind::Stream),
        Just(WorkloadKind::GraphWalk),
        Just(WorkloadKind::Inference),
    ]
}

/// Every named config spelling: the paper's `C1..C15` plus the extended
/// NUMA and fat-tree configurations.
fn config_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (1u32..=15).prop_map(|i| format!("C{i}")),
        Just("N4".to_string()),
        Just("N8".to_string()),
        Just("FT8".to_string()),
        Just("FT16".to_string()),
    ]
}

fn size_strategy() -> impl Strategy<Value = Sizes> {
    prop_oneof![Just(Sizes::Small), Just(Sizes::Medium), Just(Sizes::Paper)]
}

/// Canonical fault specs (empty = no plan).  Spellings here are already
/// in `FaultPlan`'s `Display` form so the JSON fixed point holds.
fn fault_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just(""),
        Just("point:panic:nth=2"),
        Just("ckpt:io:nth=3"),
        Just("serve:delay:rate=0.1:ms=200"),
        Just("point:panic:rate=0.05:seed=7,ckpt:io:nth=3"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// builder → JSON → parse → JSON never drifts, and both string
    /// spellings (`Display`, compact) parse back to the same scenario.
    #[test]
    fn builder_to_json_to_parse_is_a_fixed_point(
        cfg in config_strategy(),
        workload in workload_strategy(),
        size in size_strategy(),
        window in 0u64..10_000,
        cap in 0u64..5_000,
        threads in 0u64..10,
        pin_threads in any::<bool>(),
        fault in fault_strategy(),
    ) {
        let mut b = Scenario::builder()
            .config_name(&cfg)
            .workload(workload)
            .size(size);
        if window > 0 {
            b = b.metrics_window(window);
        }
        if cap > 0 {
            b = b.trace_capacity(cap as usize);
        }
        // `Some(0)` is meaningful (pin the classic engine), so the pin
        // flag is drawn independently of the thread count.
        if pin_threads {
            b = b.sim_threads(threads as usize);
        }
        if !fault.is_empty() {
            b = b.faults(FaultPlan::parse(fault).expect("strategy emits valid specs"));
        }
        let scenario = b.build().expect("named configs always resolve");

        // JSON fixed point.
        let json = scenario.to_json();
        let parsed = Scenario::from_json(&json)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed, &scenario);
        prop_assert_eq!(parsed.to_json(), json);

        // Display (compact or JSON, depending on the scenario) parses back.
        let text = scenario.to_string();
        let reparsed: Scenario = text
            .parse()
            .map_err(|e: ScenarioError| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reparsed, scenario);
    }
}

/// The golden `/v1/sweep` request body and the golden `@plan.json` sweep
/// file must expand/parse into *identical* `Scenario` batches — the two
/// entry points share one wire format.
#[test]
fn golden_sweep_request_and_plan_file_agree() {
    let request: serde_json::Value =
        serde_json::from_str(include_str!("golden/scenarios/sweep_request.json")).unwrap();
    let plan: serde_json::Value =
        serde_json::from_str(include_str!("golden/scenarios/sweep_plan.json")).unwrap();

    let from_request = Scenario::expand_grid(&request, Sizes::Small).unwrap();
    let from_plan = Scenario::parse_batch(&plan).unwrap();
    assert_eq!(from_request, from_plan);
    assert_eq!(from_request.len(), 6, "3 configs x 2 workloads");
    assert!(
        from_request.iter().all(|s| s.sim_threads == Some(2)),
        "grid-level sim_threads must reach every expanded point"
    );

    // And the shared batch feeds the sweep runner unchanged, engine
    // choice included.
    let sweep = Scenario::sweep_plan("golden", &from_request).unwrap();
    assert_eq!(sweep.len(), 6);
    assert_eq!(sweep.sizes, Sizes::Small);
    assert_eq!(sweep.sim_threads, Some(2));
    assert_eq!(sweep.resolved_sim_threads(), 2);
}

/// The golden `/v1/simulate` body equals its builder spelling, field for
/// field, and survives a serialize→parse round trip byte-identically.
#[test]
fn golden_simulate_request_matches_builder() {
    let body: serde_json::Value =
        serde_json::from_str(include_str!("golden/scenarios/simulate_request.json")).unwrap();
    let parsed = Scenario::from_json(&body).unwrap();

    let built = Scenario::builder()
        .config_name("C8")
        .workload(WorkloadKind::Radix)
        .size(Sizes::Paper)
        .metrics_window(5_000)
        .trace_capacity(4_096)
        .sim_threads(4)
        .faults(FaultPlan::parse("point:panic:nth=2").unwrap())
        .build()
        .unwrap();
    assert_eq!(parsed, built);

    // The canonical JSON matches the fixture's field order and spelling.
    assert_eq!(
        serde_json::to_string(&parsed.to_json()).unwrap(),
        serde_json::to_string(&body).unwrap()
    );
}

/// Golden wire pin for the registry-redesign matrix: every new workload
/// on both extended back-ends (NUMA SMP `N4`, fat-tree COW `FT8`).  The
/// compact spelling must parse, survive a JSON round trip, and keep the
/// exact canonical bytes blessed in
/// `golden/scenarios/extended_matrix.jsonl` — one scenario per line, so
/// a diff localizes to the scenario that moved.
#[test]
fn golden_extended_matrix_round_trips() {
    let mut lines = Vec::new();
    for cfg in ["N4", "FT8"] {
        for workload in ["Stencil4D", "Stream", "GraphWalk", "Inference"] {
            let text = format!("{cfg}:{workload}:small");
            let scenario: Scenario = text.parse().expect("compact extended scenario parses");
            let json = scenario.to_json();
            let reparsed = Scenario::from_json(&json).expect("canonical JSON parses back");
            assert_eq!(reparsed, scenario, "{text} JSON round trip");
            assert_eq!(
                scenario.to_string().parse::<Scenario>().unwrap(),
                scenario,
                "{text} Display round trip"
            );
            lines.push(serde_json::to_string(&json).expect("serialize"));
        }
    }
    let actual = lines.join("\n") + "\n";

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/scenarios/extended_matrix.jsonl");
    if std::env::var_os("MEMHIER_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write fixture");
        eprintln!("[blessed {}]", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing scenario fixture {}; generate it with MEMHIER_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "extended scenario wire bytes drifted; re-bless only with a \
         conscious wire-format change"
    );
}
