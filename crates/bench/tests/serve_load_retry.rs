//! End-to-end check of `serve_load`'s 429 retry loop against a stub
//! HTTP server: the first connections are shed with `429` +
//! `Retry-After: 0`, later ones succeed, and the `--json` summary must
//! show every logical request finishing 200 with the retries counted.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Answer `n_429` connections with 429 (Retry-After: 0), then 200s.
fn stub_server(listener: TcpListener, n_429: usize) -> std::thread::JoinHandle<()> {
    let served = Arc::new(AtomicUsize::new(0));
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                // Drain the request head; the body is tiny and ignored.
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let n = served.fetch_add(1, Ordering::SeqCst);
                let reply = if n < n_429 {
                    "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 0\r\n\
                     Content-Length: 4\r\nConnection: close\r\n\r\nbusy"
                } else {
                    "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\
                     Connection: close\r\n\r\nok"
                };
                let _ = stream.write_all(reply.as_bytes());
                let _ = stream.shutdown(std::net::Shutdown::Both);
            });
        }
    })
}

#[test]
fn retries_429_until_success_and_reports_counts() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr");
    // First 2 connections shed: request #0 needs 2 retries, the rest none.
    let _server = stub_server(listener, 2);

    let out = Command::new(env!("CARGO_BIN_EXE_serve_load"))
        .args([
            "--addr",
            &addr.to_string(),
            "--clients",
            "1",
            "--requests",
            "3",
            "--endpoint",
            "healthz",
            "--retries",
            "3",
            "--retry-base-ms",
            "1",
            "--json",
        ])
        .output()
        .expect("run serve_load");
    assert!(
        out.status.success(),
        "serve_load failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doc: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("json summary");
    assert_eq!(doc["requests"].as_u64(), Some(3));
    assert_eq!(doc["errors"].as_u64(), Some(0));
    assert_eq!(doc["retries_429"].as_u64(), Some(2), "{doc:?}");
    let statuses = doc["statuses"].as_array().expect("statuses array");
    assert_eq!(statuses.len(), 1, "only 200s after retries: {doc:?}");
    assert_eq!(statuses[0]["status"].as_u64(), Some(200));
    assert_eq!(statuses[0]["count"].as_u64(), Some(3));
}

#[test]
fn exhausted_retries_surface_the_429() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("stub addr");
    // Every connection is shed; with --retries 2 each logical request
    // burns 2 retries and still records a final 429.
    let _server = stub_server(listener, usize::MAX);

    let out = Command::new(env!("CARGO_BIN_EXE_serve_load"))
        .args([
            "--addr",
            &addr.to_string(),
            "--clients",
            "1",
            "--requests",
            "2",
            "--endpoint",
            "healthz",
            "--retries",
            "2",
            "--retry-base-ms",
            "1",
            "--json",
        ])
        .output()
        .expect("run serve_load");
    assert!(out.status.success());
    let doc: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("json summary");
    assert_eq!(doc["retries_429"].as_u64(), Some(4), "{doc:?}");
    let statuses = doc["statuses"].as_array().expect("statuses array");
    assert_eq!(statuses[0]["status"].as_u64(), Some(429));
    assert_eq!(statuses[0]["count"].as_u64(), Some(2));
}
