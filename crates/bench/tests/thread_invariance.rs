//! Thread-count invariance pin for the epoch-parallel engine.
//!
//! The epoch engine (`sim_threads >= 1`) shards simulated processors
//! across host worker threads but advances simulated time in fixed
//! deterministic epochs, so its results must be **byte-identical for
//! every host thread count**.  That invariance — not equivalence with
//! the classic serial engine, whose cross-processor interleaving is
//! finer-grained — is the contract this differential net pins:
//!
//! * every platform × kernel pair of `tests/engine_differential.rs`
//!   (including the miss-heavy fixtures) must serialize to the same
//!   `SimReport` JSON at `sim_threads` ∈ {1, 2, 8};
//! * the same must hold with a `TimeSeriesCollector` attached, whose
//!   windowed series exposes the engine's internal event ordering far
//!   more finely than the end-of-run report does.
//!
//! A failure here means the engine's answer depends on host
//! parallelism — the one thing `--sim-threads` is documented never to
//! change.

use memhier_bench::runner::{simulate_workload_threads, ObserverConfig, Sizes};
use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_workloads::registry::WorkloadKind;

/// The host thread counts every fixture is replayed at.
const THREADS: [usize; 3] = [1, 2, 8];

/// Same platform matrix as `tests/engine_differential.rs`, including
/// the miss-heavy specs, paired with the kernels each one replays.
fn fixtures() -> Vec<(&'static str, ClusterSpec, Vec<WorkloadKind>)> {
    let paper = WorkloadKind::PAPER.to_vec();
    let miss = vec![WorkloadKind::Radix, WorkloadKind::Tpcc];
    let extended = vec![
        WorkloadKind::Stencil4D,
        WorkloadKind::Stream,
        WorkloadKind::GraphWalk,
        WorkloadKind::Inference,
    ];
    vec![
        (
            "smp",
            ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0)),
            paper.clone(),
        ),
        (
            "cow_bus",
            ClusterSpec::cluster(
                MachineSpec::new(1, 256, 64, 200.0),
                4,
                NetworkKind::Ethernet100,
            ),
            paper.clone(),
        ),
        (
            "cow_switch",
            ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, NetworkKind::Atm155),
            paper.clone(),
        ),
        (
            "clump_bus",
            ClusterSpec::cluster(
                MachineSpec::new(2, 256, 128, 200.0),
                2,
                NetworkKind::Ethernet100,
            ),
            paper.clone(),
        ),
        (
            "clump_switch",
            ClusterSpec::cluster(MachineSpec::new(2, 256, 128, 200.0), 2, NetworkKind::Atm155),
            paper,
        ),
        (
            "miss_smp_stream",
            ClusterSpec::single(MachineSpec::new(4, 8, 128, 200.0)),
            miss.clone(),
        ),
        (
            "miss_clump_bigset",
            ClusterSpec::cluster(
                MachineSpec::new(2, 8, 128, 200.0),
                2,
                NetworkKind::Ethernet100,
            ),
            miss,
        ),
        (
            "numa_smp",
            ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0).with_numa(2, 40.0)),
            extended.clone(),
        ),
        (
            "fattree_cow",
            ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 8, NetworkKind::FatTree),
            extended,
        ),
    ]
}

/// Run one fixture at the given thread count and serialize whatever the
/// observers saw alongside the report, so any ordering-dependent state
/// shows up in the byte comparison.
fn snapshot(
    cluster: &ClusterSpec,
    kind: WorkloadKind,
    observers: &ObserverConfig,
    sim_threads: usize,
) -> String {
    let out = simulate_workload_threads(
        &Sizes::Small.workload(kind),
        cluster,
        &LatencyParams::paper(),
        observers,
        sim_threads,
    );
    let mut s = serde_json::to_string_pretty(&out.run.report).expect("serialize report");
    if let Some(series) = &out.metrics {
        s.push('\n');
        s.push_str(&serde_json::to_string_pretty(series).expect("serialize metrics"));
    }
    if let Some(trace) = &out.trace {
        s.push('\n');
        s.push_str(&trace.to_jsonl());
    }
    s
}

fn assert_invariant(name: &str, cluster: &ClusterSpec, kind: WorkloadKind, obs: &ObserverConfig) {
    let baseline = snapshot(cluster, kind, obs, THREADS[0]);
    for &n in &THREADS[1..] {
        let got = snapshot(cluster, kind, obs, n);
        assert_eq!(
            baseline, got,
            "`{name}` × {:?} diverged between sim_threads={} and sim_threads={n}: \
             the epoch engine's output must not depend on host thread count",
            kind, THREADS[0],
        );
    }
}

fn check_platform(index: usize) {
    let (name, cluster, kinds) = &fixtures()[index];
    for &kind in kinds {
        assert_invariant(name, cluster, kind, &ObserverConfig::default());
    }
}

// One test per platform so failures localize, mirroring
// tests/engine_differential.rs.

#[test]
fn invariant_smp() {
    check_platform(0);
}

#[test]
fn invariant_cow_bus() {
    check_platform(1);
}

#[test]
fn invariant_cow_switch() {
    check_platform(2);
}

#[test]
fn invariant_clump_bus() {
    check_platform(3);
}

#[test]
fn invariant_clump_switch() {
    check_platform(4);
}

#[test]
fn invariant_miss_smp_stream() {
    check_platform(5);
}

#[test]
fn invariant_miss_clump_bigset() {
    check_platform(6);
}

#[test]
fn invariant_numa_smp() {
    check_platform(7);
}

#[test]
fn invariant_fattree_cow() {
    check_platform(8);
}

/// The observer-attached variant: a `TimeSeriesCollector` (plus the
/// bounded tracer) forces the engine down its per-access notification
/// path, where any cross-thread reordering would surface as different
/// window contents even when end-of-run totals happen to agree.
#[test]
fn invariant_with_timeseries_observer() {
    let obs = ObserverConfig {
        metrics_window: Some(50_000),
        trace_capacity: Some(128),
    };
    for index in [0, 3, 5] {
        let (name, cluster, kinds) = &fixtures()[index];
        for &kind in kinds {
            assert_invariant(name, cluster, kind, &obs);
        }
    }
}
