//! `memhier` — the command-line front end to the IPPS'99 reproduction.
//!
//! ```text
//! memhier configs                              list C1..C15
//! memhier model --config C5 --workload FFT     analytic E(Instr)
//! memhier model --all                          all configs x kernels
//! memhier simulate --config C8 --workload LU   program-driven simulation
//!   [--metrics m.json] [--trace events.jsonl]  ... with observers attached
//! memhier fit --workload Radix                 measure alpha/beta/rho
//! memhier optimize --budget 20000 --workload Radix --confirm 4
//!   [--slo S] [--procs 1,2,4] [--mem 32,64] [--max-machines 32] ...
//!                                              fleet-scale model-guided search
//! memhier upgrade --budget 2500 --workload FFT
//! memhier recommend --workload FFT | --alpha A --beta B --rho R
//! ```
//!
//! Size flags for simulate/fit: `--small`, `--paper` (default medium).
//! All flag parsing goes through `memhier_bench::FlagParser`, so `--jobs`,
//! `--metrics`, `--trace`, sizes, and `--help` behave exactly as in the
//! experiment binaries.

use memhier::MemhierError;
use memhier_bench::runner::{characterize, Sizes};
use memhier_bench::{
    config_by_name, paper_params, run_optimize, run_recommend, workload_kind_by_name, FlagParser,
    Matches, Scenario,
};
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::model::AnalyticModel;
use memhier_core::params::configs;
use memhier_core::platform::ClusterSpec;
use memhier_cost::{
    network_by_name, pareto_frontier, plan_upgrade, CandidateSpace, OptimizeReport,
    OptimizeRequest, PriceTable, RecommendRequest, WorkloadSpec,
};
use memhier_serve::{ServeConfig, Server};
use memhier_workloads::registry::WorkloadKind;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "configs" => cmd_configs(),
        "workloads" => cmd_workloads(rest),
        "platforms" => cmd_platforms(rest),
        "model" => cmd_model(rest),
        "simulate" => cmd_simulate(rest),
        "record" => cmd_record(rest),
        "fit" => cmd_fit(rest),
        "optimize" => cmd_optimize(rest),
        "pareto" => cmd_pareto(rest),
        "upgrade" => cmd_upgrade(rest),
        "recommend" => cmd_recommend(rest),
        "serve" => cmd_serve(rest),
        "sweep" => cmd_sweep(rest),
        "reproduce" => cmd_reproduce(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(MemhierError::Invalid(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "memhier — cluster memory-hierarchy model, simulator & optimizer (IPPS'99)

USAGE:
  memhier configs
  memhier workloads [--json]                   list the workload registry
  memhier platforms [--json]                   list platform back-ends & networks
  memhier model    --config <C1..C15|N4|N8|FT8|FT16> --workload <NAME> [--json]
  memhier model    --all [--json]
  memhier simulate --config <C1..C15> --workload <name> [--small|--paper] [--json]
                   [--sim-threads <N>] [--metrics <out.json> [--window <cycles>]]
                   [--trace <out.jsonl> [--trace-cap <n>]]
  memhier record   --scenario <CONFIG:WORKLOAD[:SIZE]> -o <trace.mtr>
                   [--sim-threads N]
  memhier fit      --workload <name> [--small|--paper] [--phases] [--json]
  memhier fit      --trace <file.mtr> [--granularity N] [--chunk-records N] [--json]
  memhier optimize --budget <dollars> (--workload <name> | --alpha A --beta B --rho R)
                   [--slo <s>] [--top <k>] [--confirm <k> [--confirm-size <tier>]]
                   [--procs LIST] [--cache LIST] [--mem LIST] [--max-machines N]
                   [--networks LIST] [--clock MHZ] [--request JSON|@FILE] [--json]
                   [--from-fit report.json] [--jobs N] [--checkpoint PATH] [--resume]
  memhier pareto   --workload <name> [--json]
  memhier upgrade  --budget <dollars> --workload <name> [--machines N --procs n
                    --cache KB --mem MB --network <eth10|eth100|atm|fattree>]
  memhier recommend (--workload <name> | --alpha A --beta B --rho R)
                    [--measure [--size <tier>]] [--budget <dollars> [--top <k>]]
                    [--format text|json]
  memhier serve    [--addr HOST:PORT] [--workers N] [--queue-depth N]
                   [--timeout-ms MS] [--read-timeout-ms MS] [--keepalive-timeout-ms MS]
                   [--cache-ttl-ms MS] [--drain-grace-ms MS]
                   [--addr-file PATH] [--faults SPEC]
  memhier sweep    --configs C1,C2,...|@plan.json --workloads FFT,LU,... [--json]
                   [--small|--paper] [--jobs N] [--sim-threads N]
                   [--checkpoint PATH] [--resume] [--max-retries N] [--faults SPEC]
  memhier reproduce <table1|table2|fig2|fig3|fig4|coherence|speedup|
                     budget5k|budget20k|upgrade|fft4x|recommendations|
                     sensitivity|ablation|sweep|utilization|all>
                    [--small|--paper] [--jobs N]

Every subcommand accepts --help for its own flag list.";

/// Parse a subcommand's arguments; `Ok(None)` means `--help` was printed.
fn sub(parser: &FlagParser, rest: &[String]) -> Result<Option<Matches>, String> {
    let m = parser.parse(rest)?;
    if m.has("--help") {
        print!("{}", parser.usage());
        return Ok(None);
    }
    m.apply_sweep_config()?;
    Ok(Some(m))
}

fn req<'a>(m: &'a Matches, name: &str) -> Result<&'a str, String> {
    m.get(name).ok_or_else(|| format!("{name} required"))
}

fn cmd_configs() -> Result<(), MemhierError> {
    println!("Paper configurations (Tables 3-5):");
    for c in configs::all_configs() {
        println!("  {}", c.describe());
    }
    println!("Extended configurations (NUMA & fat-tree):");
    for c in configs::extended_configs() {
        println!("  {}", c.describe());
    }
    Ok(())
}

/// `memhier workloads`: the workload registry with parameter schemas.
/// `--json` prints the same `workloads` array `GET /v1/registry` serves.
fn cmd_workloads(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier workloads", "list the workload registry")
        .switch("--json", "machine-readable output (matches /v1/registry)");
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    if m.has("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&memhier_bench::registry_info::workloads_json())?
        );
        return Ok(());
    }
    println!("Registered workloads:");
    for spec in memhier_workloads::workload_specs() {
        print_registry_entry(
            spec.key(),
            spec.aliases(),
            spec.description(),
            spec.params(),
        );
    }
    Ok(())
}

/// `memhier platforms`: platform back-ends and network media.  `--json`
/// prints the same `platforms` array `GET /v1/registry` serves.
fn cmd_platforms(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new(
        "memhier platforms",
        "list platform back-ends and network media",
    )
    .switch("--json", "machine-readable output (matches /v1/registry)");
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    if m.has("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "platforms": memhier_bench::registry_info::platforms_json(),
                "networks": memhier_bench::registry_info::networks_json(),
            }))?
        );
        return Ok(());
    }
    println!("Registered platform back-ends:");
    for spec in memhier_core::platform_specs() {
        print_registry_entry(
            spec.key(),
            spec.aliases(),
            spec.description(),
            spec.params(),
        );
    }
    println!("Registered network media:");
    for net in NetworkKind::registered() {
        let s = net.spec();
        let aliases = if s.aliases.is_empty() {
            String::new()
        } else {
            format!("  (aliases: {})", s.aliases.join(", "))
        };
        println!("  {} [{}]{aliases}", s.key, s.wire);
        println!("      {}", s.description);
    }
    Ok(())
}

fn print_registry_entry(
    key: &str,
    aliases: &[&str],
    description: &str,
    params: &[memhier_core::ParamInfo],
) {
    let alias_note = if aliases.is_empty() {
        String::new()
    } else {
        format!("  (aliases: {})", aliases.join(", "))
    };
    println!("  {key}{alias_note}");
    println!("      {description}");
    for p in params {
        println!(
            "      --{:<14} {:>6}  {} (default {})",
            p.name, p.kind, p.about, p.default
        );
    }
}

fn cmd_model(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier model", "analytic E(Instr) prediction")
        .option("--config", "C1..C15", "paper configuration")
        .option(
            "--workload",
            "NAME",
            "any registry workload (see `memhier workloads`)",
        )
        .switch("--all", "every config x kernel pair")
        .switch("--json", "machine-readable output");
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let model = AnalyticModel::default();
    let json = m.has("--json");
    if m.has("--all") {
        let mut out = Vec::new();
        for c in configs::all_configs() {
            for kind in WorkloadKind::PAPER {
                let w = paper_params(kind);
                let e = model.evaluate_or_inf(&c, &w);
                if json {
                    out.push(serde_json::json!({
                        "config": c.name, "workload": w.name, "e_instr_seconds": e,
                    }));
                } else {
                    println!(
                        "{:4} {:6} E(Instr) = {:.3e} s",
                        c.name.as_deref().unwrap_or("?"),
                        w.name,
                        e
                    );
                }
            }
        }
        if json {
            println!("{}", serde_json::to_string_pretty(&out)?);
        }
        return Ok(());
    }
    let cfg = config_by_name(req(&m, "--config")?)?;
    let kind = workload_kind_by_name(req(&m, "--workload")?)?;
    let w = paper_params(kind);
    let p = model.evaluate(&cfg, &w)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&p)?);
    } else {
        let rep = p.report();
        println!("{} running {}", cfg.describe(), w.name);
        println!(
            "  T (memory time/ref)   = {:.2} cycles ({:.1}% M/D/1 queueing)",
            rep.t_cycles,
            100.0 * rep.queueing_share_of_t
        );
        println!("  per-processor CPI     = {:.2}", rep.per_proc_cpi);
        println!(
            "  barrier overhead      = {:.2} cycles/instr",
            rep.barrier_cycles_per_instr
        );
        println!(
            "  E(Instr)              = {:.4} cycles = {:.3e} s",
            p.e_instr_cycles, p.e_instr_seconds
        );
        println!("  levels:");
        for l in &rep.levels {
            println!(
                "    {:8} reach {:>8.5}  service {:>8.0}cy  queueing {:>10.1}cy  \
                 share {:>5.1}%  util {:.3}",
                l.name,
                l.reach_prob,
                l.service_cycles,
                l.queueing_cycles,
                100.0 * l.share_of_t,
                l.utilization
            );
        }
    }
    Ok(())
}

fn cmd_simulate(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier simulate", "program-driven simulation of one run")
        .option("--config", "C1..C15", "paper configuration")
        .option(
            "--workload",
            "NAME",
            "any registry workload (see `memhier workloads`)",
        )
        .switch("--json", "print the SimReport as JSON")
        .sweep_flags()
        .observer_flags();
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let scenario = Scenario::builder()
        .config_name(req(&m, "--config")?)
        .workload_name(req(&m, "--workload")?)
        .size(m.sizes())
        .observers(m.observers()?)
        .build()?;
    let out = scenario.run();
    if let Some(path) = m.get("--metrics") {
        let series = out.metrics.as_ref().expect("metrics requested");
        let json = serde_json::to_string_pretty(series)?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} window(s) of metrics to {path}",
            series.windows.len()
        );
    }
    if let Some(path) = m.get("--trace") {
        let log = out.trace.as_ref().expect("trace requested");
        std::fs::write(path, log.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} trace event(s) to {path} ({} dropped at capacity)",
            log.events.len(),
            log.dropped
        );
    }
    let run = &out.run;
    if m.has("--json") {
        println!("{}", serde_json::to_string_pretty(&run.report)?);
        return Ok(());
    }
    let r = &run.report;
    println!(
        "{} running {} ({:?} size)",
        scenario.config.describe(),
        scenario.workload.name(),
        scenario.size
    );
    println!(
        "  instructions = {}  refs = {}",
        r.total_instructions, r.total_refs
    );
    println!(
        "  wall = {} cycles;  E(Instr) = {:.4} cycles = {:.3e} s",
        r.wall_cycles, r.e_instr_cycles, r.e_instr_seconds
    );
    println!(
        "  levels: l1 {}  c2c {}  local {}  remote-clean {}  remote-dirty {}  disk {}",
        r.levels.l1_hits,
        r.levels.cache_to_cache,
        r.levels.local_memory,
        r.levels.remote_clean,
        r.levels.remote_dirty,
        r.levels.disk
    );
    println!(
        "  coherence traffic = {:.1}% of {} bytes;  barriers = {} (wait {} cycles)",
        r.traffic.coherence_fraction() * 100.0,
        r.traffic.data_bytes + r.traffic.coherence_bytes,
        r.barriers,
        r.barrier_wait_cycles
    );
    println!(
        "  utilization: bus {:.3}  network {:.3}",
        r.bus_utilization(0),
        r.network_utilization()
    );
    Ok(())
}

fn cmd_record(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new(
        "memhier record",
        "run a scenario and stream its address trace to a .mtr file",
    )
    .option(
        "--scenario",
        "SPEC",
        "CONFIG:WORKLOAD[:SIZE] or a JSON scenario object",
    )
    .option("-o", "FILE", "output trace path (.mtr)")
    .sweep_flags();
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let scenario: Scenario = req(&m, "--scenario")?.parse()?;
    let out = req(&m, "-o")?;
    let summary = memhier_bench::record_scenario(&scenario, std::path::Path::new(out))?;
    let rho = if summary.total_instructions == 0 {
        0.0
    } else {
        summary.records as f64 / summary.total_instructions as f64
    };
    println!(
        "recorded {} references over {} instructions (rho = {:.3}) -> {}",
        summary.records, summary.total_instructions, rho, out
    );
    Ok(())
}

fn cmd_fit(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new(
        "memhier fit",
        "measure alpha/beta/rho from the address trace",
    )
    .option(
        "--workload",
        "NAME",
        "any registry workload (see `memhier workloads`)",
    )
    .option("--trace", "FILE", "fit a recorded .mtr trace (streaming)")
    .option(
        "--granularity",
        "BYTES",
        "block granularity for --trace (power of two, default 64)",
    )
    .option(
        "--chunk-records",
        "N",
        "streaming chunk size for --trace (default 65536)",
    )
    .switch("--phases", "per-phase locality fits")
    .switch("--json", "machine-readable output")
    .sweep_flags();
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    if let Some(trace) = m.get("--trace") {
        return cmd_fit_trace(&m, trace);
    }
    let kind = workload_kind_by_name(req(&m, "--workload")?)?;
    let sizes = m.sizes();
    if m.has("--phases") {
        return cmd_fit_phases(kind, sizes, m.has("--json"));
    }
    let c = characterize(&sizes.workload(kind), 64);
    if m.has("--json") {
        println!("{}", serde_json::to_string_pretty(&c)?);
        return Ok(());
    }
    println!("{} ({:?} size):", c.name, sizes);
    println!(
        "  alpha = {:.3}   beta = {:.1} bytes   (R^2 = {:.4})",
        c.alpha, c.beta, c.r_squared
    );
    println!(
        "  rho = {:.3}   write fraction = {:.3}   sharing fraction = {:.3}",
        c.rho, c.write_fraction, c.sharing_fraction
    );
    println!(
        "  footprint = {:.0} bytes over {} refs",
        c.footprint_bytes, c.refs
    );
    let w = paper_params(kind);
    println!(
        "  paper: alpha = {:.2}  beta = {:.1}  rho = {:.2}",
        w.locality.alpha, w.locality.beta, w.rho
    );
    Ok(())
}

/// Streaming fit of a recorded `.mtr` trace.  The request round-trips
/// through its own JSON parser and the `--json` output uses the same
/// serializer as `/v1/fit`, so the CLI and the service validate and emit
/// byte-identical JSON.
fn cmd_fit_trace(m: &Matches, trace: &str) -> Result<(), MemhierError> {
    use memhier_trace::{run_fit, FitRequest};
    let mut r = FitRequest::new(trace);
    if let Some(g) = m.parsed::<u64>("--granularity")? {
        r.granularity = g;
    }
    if let Some(n) = m.parsed::<u64>("--chunk-records")? {
        r.chunk_records = n;
    }
    let r = FitRequest::from_json(&r.to_json())?;
    let report = run_fit(&r)?;
    if m.has("--json") {
        println!("{}", serde_json::to_string_pretty(&report.to_json())?);
        return Ok(());
    }
    println!(
        "{} ({} records @ {}-byte blocks):",
        trace, report.records, report.granularity
    );
    println!(
        "  alpha = {:.3}   beta = {:.1} bytes   (R^2 = {:.4})",
        report.alpha, report.beta, report.r_squared
    );
    println!(
        "  rho = {:.3}   converged = {}",
        report.rho, report.converged
    );
    for s in &report.history {
        println!(
            "  @{:>9} records: alpha={:.3} beta={:<10.1} R^2={:.4}",
            s.records, s.alpha, s.beta, s.r_squared
        );
    }
    Ok(())
}

/// Per-phase locality fits (the bulk-synchronous structure of §3 makes a
/// single global fit blur phases with very different locality).
fn cmd_fit_phases(kind: WorkloadKind, sizes: Sizes, json: bool) -> Result<(), MemhierError> {
    use memhier_trace::PhaseAnalyzer;
    use memhier_workloads::spmd::stream_spmd;
    let program = sizes.workload(kind).instantiate(1);
    let (analyzer, _) = stream_spmd(program, |rxs| {
        let rx = rxs.into_iter().next().expect("one process");
        let mut an = PhaseAnalyzer::new(64);
        while let Ok(batch) = rx.recv() {
            for ev in batch {
                match ev {
                    memhier_sim::MemEvent::Barrier => an.barrier(),
                    other => {
                        if let Some(a) = other.address() {
                            an.access(a);
                        }
                    }
                }
            }
        }
        an
    });
    let (phases, global) = analyzer.finish();
    if json {
        println!("{}", serde_json::to_string_pretty(&phases)?);
        return Ok(());
    }
    println!(
        "{} phases, {} global refs:",
        phases.len(),
        global.total_refs()
    );
    for p in &phases {
        match &p.fit {
            Some(f) => println!(
                "  phase {:>3}: {:>9} refs  alpha={:.2} beta={:<10.1} R^2={:.3}  cold={:.1}%",
                p.index,
                p.refs,
                f.alpha,
                f.beta,
                f.r_squared,
                p.cold_fraction * 100.0
            ),
            None => println!(
                "  phase {:>3}: {:>9} refs  (too few points to fit)  cold={:.1}%",
                p.index,
                p.refs,
                p.cold_fraction * 100.0
            ),
        }
    }
    Ok(())
}

fn cmd_optimize(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new(
        "memhier optimize",
        "fleet-scale model-guided cluster search under a budget",
    )
    .option(
        "--budget",
        "DOLLARS",
        "total budget (required unless --request)",
    )
    .option(
        "--workload",
        "NAME",
        "any registry workload (see `memhier workloads`)",
    )
    .option("--alpha", "A", "custom locality shape (with --beta --rho)")
    .option("--beta", "B", "custom locality scale, bytes")
    .option("--rho", "R", "custom memory-reference fraction")
    .option(
        "--from-fit",
        "FILE",
        "take alpha/beta/rho from a `memhier fit --json` report",
    )
    .option(
        "--slo",
        "SECONDS",
        "max acceptable model-predicted E(Instr)",
    )
    .option("--top", "K", "ranked configs to report (default 5)")
    .option(
        "--confirm",
        "K",
        "finalists to confirm by full simulation (default 0 = analytic only)",
    )
    .option(
        "--confirm-size",
        "TIER",
        "small|medium|paper confirmation tier (default small)",
    )
    .option(
        "--procs",
        "LIST",
        "per-machine processor counts, e.g. 1,2,4",
    )
    .option(
        "--cache",
        "LIST",
        "per-processor cache KB options, e.g. 256,512",
    )
    .option(
        "--mem",
        "LIST",
        "per-machine memory MB options, e.g. 32,64,128",
    )
    .option("--max-machines", "N", "largest cluster size (default 16)")
    .option("--networks", "LIST", "subset of eth10,eth100,atm,fattree")
    .option(
        "--clock",
        "MHZ",
        "CPU clock for every candidate (default 200)",
    )
    .option(
        "--request",
        "JSON|@FILE",
        "a full OptimizeRequest (JSON or WORKLOAD@BUDGET); overrides the flags above",
    )
    .switch("--json", "print the OptimizeReport as JSON")
    .sweep_flags();
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let req = optimize_request(&m)?;
    let report = run_optimize(&req)?;
    if m.has("--json") {
        // The same serializer `/v1/optimize` uses, so the CLI and the
        // service emit byte-identical JSON.
        println!("{}", serde_json::to_string_pretty(&report.to_json())?);
        return Ok(());
    }
    print_optimize_report(&report);
    Ok(())
}

/// Build the typed optimize request from the flag set: `--request` takes
/// the wire form verbatim; otherwise the grid flags override the
/// paper-market defaults field by field.  Either way the request is
/// round-tripped through its own JSON parser, so the CLI enforces
/// exactly the validation `/v1/optimize` does.
fn optimize_request(m: &Matches) -> Result<OptimizeRequest, MemhierError> {
    if let Some(spec) = m.get("--request") {
        let text = match spec.strip_prefix('@') {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| MemhierError::Invalid(format!("reading {path}: {e}")))?,
            None => spec.to_string(),
        };
        return Ok(text.trim().parse::<OptimizeRequest>()?);
    }
    let budget: f64 = req(m, "--budget")?.parse().map_err(|_| "bad --budget")?;
    let mut r = OptimizeRequest::new(workload_spec(m)?, budget);
    if let Some(slo) = m.parsed::<f64>("--slo")? {
        r.slo = Some(slo);
    }
    if let Some(top) = m.parsed::<usize>("--top")? {
        r.top = top;
    }
    if let Some(confirm) = m.parsed::<usize>("--confirm")? {
        r.confirm = confirm;
    }
    if let Some(size) = m.get("--confirm-size") {
        r.confirm_size = size.to_ascii_lowercase();
    }
    if let Some(list) = m.get("--procs") {
        r.search_space.proc_counts = csv_list(list, "--procs")?;
    }
    if let Some(list) = m.get("--cache") {
        r.search_space.cache_kb = csv_list(list, "--cache")?;
    }
    if let Some(list) = m.get("--mem") {
        r.search_space.memory_mb = csv_list(list, "--mem")?;
    }
    if let Some(n) = m.parsed::<u32>("--max-machines")? {
        r.search_space.max_machines = n;
    }
    if let Some(list) = m.get("--networks") {
        r.search_space.networks = csv_items(list, "--networks")?
            .iter()
            .map(|s| network_by_name(s))
            .collect::<Result<_, _>>()?;
    }
    if let Some(mhz) = m.parsed::<f64>("--clock")? {
        r.search_space.clock_mhz = mhz;
    }
    Ok(OptimizeRequest::from_json(&r.to_json())?)
}

/// The workload a request names: `--workload NAME`, a `--from-fit`
/// report from `memhier fit --json`, or the custom `--alpha/--beta/--rho`
/// triple.
fn workload_spec(m: &Matches) -> Result<WorkloadSpec, MemhierError> {
    if let Some(name) = m.get("--workload") {
        return Ok(WorkloadSpec::named(name)?);
    }
    if let Some(path) = m.get("--from-fit") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MemhierError::Invalid(format!("reading {path}: {e}")))?;
        let v: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| memhier_trace::TraceError::Syntax(e.to_string()))?;
        let report = memhier_trace::FitReport::from_json(&v)?;
        let spec = WorkloadSpec::Custom {
            alpha: report.alpha,
            beta: report.beta,
            rho: report.rho,
        };
        spec.resolve()?;
        return Ok(spec);
    }
    let alpha: f64 = req(m, "--alpha")
        .map_err(|_| "--workload, --from-fit, or --alpha/--beta/--rho required".to_string())?
        .parse()
        .map_err(|_| "bad --alpha")?;
    let beta: f64 = req(m, "--beta")?.parse().map_err(|_| "bad --beta")?;
    let rho: f64 = req(m, "--rho")?.parse().map_err(|_| "bad --rho")?;
    let spec = WorkloadSpec::Custom { alpha, beta, rho };
    spec.resolve()?;
    Ok(spec)
}

fn csv_items(list: &str, flag: &str) -> Result<Vec<String>, MemhierError> {
    let items: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if items.is_empty() {
        return Err(MemhierError::Invalid(format!("{flag}: empty list")));
    }
    Ok(items)
}

fn csv_list<T: std::str::FromStr>(list: &str, flag: &str) -> Result<Vec<T>, MemhierError> {
    csv_items(list, flag)?
        .iter()
        .map(|s| {
            s.parse::<T>()
                .map_err(|_| MemhierError::Invalid(format!("{flag}: bad entry `{s}`")))
        })
        .collect()
}

fn print_optimize_report(report: &OptimizeReport) {
    let s = &report.search;
    match report.slo {
        Some(slo) => println!(
            "Optimizing {} under ${:.0} (SLO {:.3e} s):",
            report.workload, report.budget, slo
        ),
        None => println!(
            "Optimizing {} under ${:.0}:",
            report.workload, report.budget
        ),
    }
    println!(
        "  searched {} candidates: {} unpriced, {} over budget, {} model-rejected, \
         {} SLO-filtered -> {} feasible",
        s.candidates, s.unpriced, s.over_budget, s.model_rejected, s.slo_filtered, s.feasible
    );
    println!(
        "  simulated {} finalist(s); pruning ratio {:.2}%",
        s.confirmed,
        100.0 * s.pruning_ratio
    );
    for (i, e) in report.ranked.iter().enumerate() {
        let sim = match &e.simulated {
            Some(sc) => format!(", sim {:.3e} s @ {}", sc.seconds, sc.size),
            None => String::new(),
        };
        println!(
            "  {}. {}  (${:.0}, model {:.3e} s{sim})",
            i + 1,
            e.config,
            e.cost,
            e.model_seconds
        );
    }
    match &report.best {
        Some(b) => println!("  best: {}  (${:.0})", b.config, b.cost),
        None => println!("  nothing feasible under this budget"),
    }
    println!("  Pareto frontier ({} point(s)):", report.pareto.len());
    for e in &report.pareto {
        println!(
            "    ${:>8.0}  model {:.3e} s  {}",
            e.cost, e.model_seconds, e.config
        );
    }
}

fn cmd_pareto(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier pareto", "cost/performance Pareto frontier")
        .option(
            "--workload",
            "NAME",
            "any registry workload (see `memhier workloads`)",
        )
        .switch("--json", "machine-readable output");
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let kind = workload_kind_by_name(req(&m, "--workload")?)?;
    let w = paper_params(kind);
    let frontier = pareto_frontier(
        &w,
        &AnalyticModel::default(),
        &PriceTable::circa_1999(),
        &CandidateSpace::paper_market(),
    );
    if m.has("--json") {
        println!("{}", serde_json::to_string_pretty(&frontier)?);
        return Ok(());
    }
    println!("Cost / performance Pareto frontier for {}:", w.name);
    for r in &frontier {
        println!(
            "  ${:>6.0}  E(Instr) = {:.3e} s  {}",
            r.cost,
            r.e_instr_seconds,
            r.spec.describe()
        );
    }
    Ok(())
}

fn cmd_upgrade(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier upgrade", "best upgrade for an existing cluster")
        .option("--budget", "DOLLARS", "upgrade budget")
        .option(
            "--workload",
            "NAME",
            "any registry workload (see `memhier workloads`)",
        )
        .option("--machines", "N", "existing machine count (default 2)")
        .option("--procs", "N", "processors per machine (default 1)")
        .option("--cache", "KB", "cache per processor (default 256)")
        .option("--mem", "MB", "memory per machine (default 32)")
        .option(
            "--network",
            "KIND",
            "eth10|eth100|atm|fattree (default eth10)",
        );
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let budget: f64 = req(&m, "--budget")?.parse().map_err(|_| "bad --budget")?;
    let kind = workload_kind_by_name(req(&m, "--workload")?)?;
    let machines: u32 = m.parsed("--machines")?.unwrap_or(2);
    let procs: u32 = m.parsed("--procs")?.unwrap_or(1);
    let cache: u64 = m.parsed("--cache")?.unwrap_or(256);
    let mem: u64 = m.parsed("--mem")?.unwrap_or(32);
    let network = match m.get("--network") {
        None => NetworkKind::Ethernet10,
        Some(name) => network_by_name(name)?,
    };
    let existing = if machines > 1 {
        ClusterSpec::cluster(
            MachineSpec::new(procs, cache, mem, 200.0),
            machines,
            network,
        )
    } else {
        ClusterSpec::single(MachineSpec::new(procs, cache, mem, 200.0))
    };
    let w = paper_params(kind);
    let plans = plan_upgrade(
        &existing,
        budget,
        &w,
        &AnalyticModel::default(),
        &PriceTable::circa_1999(),
    );
    let best = plans.first().ok_or("no valid upgrade plans")?;
    println!("Existing: {}", existing.describe());
    println!("Best upgrade for {} with ${budget:.0}:", w.name);
    println!("  actions: {}", best.actions.join(", "));
    println!("  cost: ${:.0}", best.cost);
    println!("  E(Instr): {:.3e} s", best.e_instr_seconds);
    Ok(())
}

/// Dispatch to the experiment harness (same code the `memhier-bench`
/// binaries run).
fn cmd_reproduce(rest: &[String]) -> Result<(), MemhierError> {
    use memhier_bench::experiments as ex;
    let parser = FlagParser::new("memhier reproduce", "regenerate paper artifacts")
        .positionals("<EXPERIMENT>")
        .sweep_flags();
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let which = m
        .positionals()
        .first()
        .cloned()
        .ok_or("which experiment? (try `all`)")?;
    let sizes = m.sizes();
    let chars = || ex::table2(sizes, false).1;
    match which.as_str() {
        "table1" => ex::table1().print(),
        "table2" => ex::table2(sizes, true).0.print(),
        "fig2" => ex::fig2_smp(sizes, &chars()).0.print(),
        "fig3" => ex::fig3_cow(sizes, &chars()).0.print(),
        "fig4" => ex::fig4_clump(sizes, &chars()).0.print(),
        "coherence" => ex::coherence_traffic(sizes).print(),
        "speedup" => ex::speedup(sizes).print(),
        "budget5k" => ex::case_budget(5000.0, false).print(),
        "budget20k" => ex::case_budget(20_000.0, true).print(),
        "upgrade" => ex::case_upgrade(2500.0).print(),
        "fft4x" => ex::case_fft_4x().print(),
        "recommendations" => ex::recommendations().print(),
        "sensitivity" => ex::sensitivity().print(),
        "ablation" => ex::ablation().print(),
        "sweep" => println!("{}", ex::sweep_map(20_000.0)),
        "utilization" => ex::utilization(sizes, &chars()).print(),
        "all" => {
            ex::table1().print();
            let (t2, cs) = ex::table2(sizes, true);
            t2.print();
            let kernels: Vec<_> = cs.iter().filter(|c| c.name != "TPC-C").cloned().collect();
            ex::fig2_smp(sizes, &kernels).0.print();
            ex::fig3_cow(sizes, &kernels).0.print();
            ex::fig4_clump(sizes, &kernels).0.print();
            ex::coherence_traffic(sizes).print();
            ex::speedup(sizes).print();
            ex::case_budget(5000.0, false).print();
            ex::case_budget(20_000.0, true).print();
            ex::case_upgrade(2500.0).print();
            ex::case_fft_4x().print();
            ex::recommendations().print();
            ex::sensitivity().print();
            ex::ablation().print();
            ex::utilization(sizes, &kernels).print();
            println!("{}", ex::sweep_map(20_000.0));
        }
        other => {
            return Err(MemhierError::Invalid(format!(
                "unknown experiment `{other}`"
            )))
        }
    }
    Ok(())
}

fn cmd_recommend(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier recommend", "platform recommendation (\u{a7}6)")
        .option(
            "--workload",
            "NAME",
            "any registry workload (see `memhier workloads`)",
        )
        .option("--alpha", "A", "locality shape (with --beta --rho)")
        .option("--beta", "B", "locality scale, bytes")
        .option("--rho", "R", "memory-reference fraction")
        .switch(
            "--measure",
            "measure (alpha, beta, rho) from the trace instead of Table 2",
        )
        .option("--size", "TIER", "small|medium|paper measurement tier")
        .option(
            "--budget",
            "DOLLARS",
            "attach the cost-optimal concrete clusters under this budget",
        )
        .option("--top", "K", "ranked clusters with --budget (default 3)")
        .option("--format", "FMT", "text (default) or json");
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let mut r = RecommendRequest::new(workload_spec(&m)?);
    r.measure = m.has("--measure");
    if let Some(size) = m.get("--size") {
        r.size = Some(size.to_ascii_lowercase());
    }
    if let Some(budget) = m.parsed::<f64>("--budget")? {
        r.budget = Some(budget);
    }
    if let Some(top) = m.parsed::<usize>("--top")? {
        r.top = top;
    }
    // Round-trip through the wire parser: the CLI enforces exactly the
    // validation `/v1/recommend` does.
    let request = RecommendRequest::from_json(&r.to_json())?;
    let report = run_recommend(&request)?;
    match m.get("--format") {
        None | Some("text") => {
            println!("{}: {:?}", report.workload, report.platform);
            println!("  {}", report.rationale);
            println!("  upgrade: {}", report.upgrade_advice);
            if let Some(ranked) = &report.ranked {
                println!("  under budget:");
                for (i, e) in ranked.iter().enumerate() {
                    println!(
                        "    {}. {}  (${:.0}, model {:.3e} s)",
                        i + 1,
                        e.config,
                        e.cost,
                        e.model_seconds
                    );
                }
            }
        }
        // The same serializer `/v1/recommend` uses, so the CLI and the
        // service emit byte-identical JSON.
        Some("json") => println!("{}", serde_json::to_string_pretty(&report.to_json())?),
        Some(other) => return Err(MemhierError::Invalid(format!("unknown format `{other}`"))),
    }
    Ok(())
}

/// An explicit `(configs × workloads)` simulation sweep through the
/// crash-safe checkpointed runner: `--checkpoint`/`--resume` journal and
/// skip completed grid points, `--faults` injects deterministic failures,
/// and quarantined points are reported instead of aborting the grid.
/// Rows print in grid order, so a resumed run's output is byte-identical
/// to an uninterrupted one.
fn cmd_sweep(rest: &[String]) -> Result<(), MemhierError> {
    use memhier_bench::{run_sweep_checkpointed, PointOutcome};
    let parser = FlagParser::new("memhier sweep", "checkpointed (configs x workloads) sweep")
        .option(
            "--configs",
            "LIST|@FILE",
            "comma-separated configs (C1,C2) or @plan.json (scenario array)",
        )
        .option(
            "--workloads",
            "LIST",
            "comma-separated kernels, e.g. FFT,LU (unused with @FILE)",
        )
        .switch("--json", "machine-readable rows")
        .sweep_flags();
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let scenarios = sweep_scenarios(&m)?;
    let plan = memhier_bench::Scenario::sweep_plan("cli", &scenarios)?;
    let outcome = run_sweep_checkpointed(&plan, &m.checkpoint_config()?)?;
    let rows: Vec<serde_json::Value> = outcome
        .outcomes
        .iter()
        .map(|o| {
            let p = &plan.points()[o.index()];
            let config = p.cluster.name.as_deref().unwrap_or("unnamed");
            match o {
                PointOutcome::Ok { result, .. } => serde_json::json!({
                    "index": o.index() as u64,
                    "config": config,
                    "workload": p.kind.name(),
                    "attempts": u64::from(o.attempts()),
                    "status": "ok",
                    "e_instr_seconds": result.run.report.e_instr_seconds,
                    "wall_cycles": result.run.report.wall_cycles,
                }),
                PointOutcome::Failed { error, .. } => serde_json::json!({
                    "index": o.index() as u64,
                    "config": config,
                    "workload": p.kind.name(),
                    "attempts": u64::from(o.attempts()),
                    "status": "failed",
                    "error": error.as_str(),
                }),
                PointOutcome::Panicked { message, .. } => serde_json::json!({
                    "index": o.index() as u64,
                    "config": config,
                    "workload": p.kind.name(),
                    "attempts": u64::from(o.attempts()),
                    "status": "panicked",
                    "error": message.as_str(),
                }),
            }
        })
        .collect();
    if m.has("--json") {
        println!("{}", serde_json::to_string_pretty(&rows)?);
    } else {
        for (o, p) in outcome.outcomes.iter().zip(plan.points()) {
            match o {
                PointOutcome::Ok { result, .. } => println!(
                    "{:4} {:6} E(Instr) = {:.3e} s  ({} attempt(s))",
                    p.cluster.name.as_deref().unwrap_or("unnamed"),
                    p.kind.name(),
                    result.run.report.e_instr_seconds,
                    o.attempts()
                ),
                _ => println!(
                    "{:4} {:6} QUARANTINED after {} attempt(s): {}",
                    p.cluster.name.as_deref().unwrap_or("unnamed"),
                    p.kind.name(),
                    o.attempts(),
                    o.error().unwrap_or("unknown")
                ),
            }
        }
    }
    let quarantined = outcome.quarantined();
    if quarantined > 0 {
        eprintln!("memhier sweep: {quarantined} point(s) quarantined");
    }
    Ok(())
}

/// Resolve `--configs`/`--workloads` into scenarios: the cross-product
/// of the two comma lists (cluster-major, like `/v1/sweep`), or — with
/// `--configs @FILE` — a JSON plan file holding an array of scenario
/// objects or compact `CONFIG:WORKLOAD[:SIZE]` strings.
fn sweep_scenarios(m: &Matches) -> Result<Vec<Scenario>, MemhierError> {
    let configs = req(m, "--configs")?;
    if let Some(path) = configs.strip_prefix('@') {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MemhierError::Invalid(format!("reading {path}: {e}")))?;
        let v: serde_json::Value = serde_json::from_str(&text)?;
        let scenarios = Scenario::parse_batch(&v)?;
        if scenarios.is_empty() {
            return Err(MemhierError::Invalid(format!(
                "{path} contains no scenarios"
            )));
        }
        return Ok(scenarios);
    }
    let split = |list: &str| -> Vec<String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    let names = split(configs);
    let kinds = split(req(m, "--workloads")?);
    if names.is_empty() || kinds.is_empty() {
        return Err(MemhierError::Invalid(
            "--configs and --workloads must each name at least one entry".to_string(),
        ));
    }
    let mut out = Vec::with_capacity(names.len() * kinds.len());
    for config in &names {
        for kind in &kinds {
            out.push(
                Scenario::builder()
                    .config_name(config)
                    .workload_name(kind)
                    .size(m.sizes())
                    .build()?,
            );
        }
    }
    Ok(out)
}

fn cmd_serve(rest: &[String]) -> Result<(), MemhierError> {
    let parser = FlagParser::new("memhier serve", "run memhierd, the HTTP advisor service")
        .option(
            "--addr",
            "HOST:PORT",
            "bind address (default 127.0.0.1:7070; port 0 picks one)",
        )
        .option("--workers", "N", "worker threads (default 4)")
        .option("--queue-depth", "N", "admission queue bound (default 64)")
        .option("--timeout-ms", "MS", "per-request deadline (default 10000)")
        .option(
            "--cache-capacity",
            "N",
            "response-cache entries (default 256)",
        )
        .option("--cache-shards", "N", "response-cache shards (default 8)")
        .option(
            "--read-timeout-ms",
            "MS",
            "slow-client request deadline before 408 (default 10000)",
        )
        .option(
            "--keepalive-timeout-ms",
            "MS",
            "idle keep-alive connection lifetime (default 30000)",
        )
        .option(
            "--cache-ttl-ms",
            "MS",
            "cache entry age before stale-while-revalidate (default 0 = never stale)",
        )
        .option(
            "--drain-grace-ms",
            "MS",
            "after a shutdown signal, keep serving with /readyz at 503 for MS (default 0)",
        )
        .option("--addr-file", "PATH", "write the bound address to PATH")
        .option(
            "--faults",
            "SPEC",
            "deterministic fault-injection spec (also MEMHIER_FAULTS)",
        );
    let Some(m) = sub(&parser, rest)? else {
        return Ok(());
    };
    let mut config = ServeConfig::default();
    if let Some(addr) = m.get("--addr") {
        config.addr = addr.to_string();
    }
    if let Some(n) = m.parsed::<usize>("--workers")? {
        config.workers = n;
    }
    if let Some(n) = m.parsed::<usize>("--queue-depth")? {
        config.queue_depth = n;
    }
    if let Some(ms) = m.parsed::<u64>("--timeout-ms")? {
        config.timeout = Duration::from_millis(ms);
    }
    if let Some(n) = m.parsed::<usize>("--cache-capacity")? {
        config.cache_capacity = n;
    }
    if let Some(n) = m.parsed::<usize>("--cache-shards")? {
        config.cache_shards = n;
    }
    if let Some(ms) = m.parsed::<u64>("--read-timeout-ms")? {
        config.read_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = m.parsed::<u64>("--keepalive-timeout-ms")? {
        config.keepalive_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = m.parsed::<u64>("--cache-ttl-ms")? {
        config.cache_ttl = (ms > 0).then(|| Duration::from_millis(ms));
    }
    let drain_grace = Duration::from_millis(m.parsed::<u64>("--drain-grace-ms")?.unwrap_or(0));
    config.faults = m.fault_plan()?;
    if !config.faults.is_empty() {
        eprintln!("memhierd: fault injection active: {}", config.faults);
    }
    let server = Server::start(config.clone())?;
    let addr = server.local_addr();
    if let Some(path) = m.get("--addr-file") {
        std::fs::write(path, addr.to_string())?;
    }
    memhier_serve::signal::install();
    eprintln!(
        "memhierd listening on {addr} ({} workers, queue {}, {} ms deadline)",
        config.workers.max(1),
        config.queue_depth.max(1),
        config.timeout.as_millis()
    );
    while !memhier_serve::signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    // Drain: readiness drops first (so load balancers stop routing
    // here), traffic keeps being served through the grace window, then
    // the listener closes and in-flight work completes.
    eprintln!(
        "memhierd: shutdown signal received, draining ({}ms grace, /readyz now 503)",
        drain_grace.as_millis()
    );
    server.begin_drain();
    std::thread::sleep(drain_grace);
    let m = &server.state().metrics;
    let (ok, rejected) = (m.ok_count(), m.rejected_count());
    server.shutdown();
    eprintln!("memhierd: stopped cleanly ({ok} ok, {rejected} rejected busy)");
    Ok(())
}
