//! End-to-end tests of the `memhier` binary (spawned as a subprocess).

use std::process::Command;

fn memhier(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_memhier"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (ok, _, err) = memhier(&[]);
    assert!(!ok);
    assert!(err.contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = memhier(&["help"]);
    assert!(ok);
    assert!(out.contains("memhier"));
    assert!(out.contains("optimize"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, err) = memhier(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn configs_lists_all_fifteen() {
    let (ok, out, _) = memhier(&["configs"]);
    assert!(ok);
    for i in 1..=15 {
        assert!(out.contains(&format!("C{i}:")), "missing C{i} in {out}");
    }
}

#[test]
fn model_prints_prediction() {
    let (ok, out, _) = memhier(&["model", "--config", "C5", "--workload", "FFT"]);
    assert!(ok, "{out}");
    assert!(out.contains("E(Instr)"));
    assert!(out.contains("cache"));
    assert!(out.contains("disk"));
}

#[test]
fn model_json_is_valid_json() {
    let (ok, out, _) = memhier(&["model", "--config", "C1", "--workload", "LU", "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
    assert!(v.get("e_instr_seconds").is_some());
}

#[test]
fn model_rejects_unknown_config() {
    let (ok, _, err) = memhier(&["model", "--config", "C99", "--workload", "FFT"]);
    assert!(!ok);
    assert!(err.contains("unknown config"));
}

#[test]
fn model_rejects_unknown_workload() {
    let (ok, _, err) = memhier(&["model", "--config", "C1", "--workload", "SORT"]);
    assert!(!ok);
    assert!(err.contains("unknown workload"));
}

#[test]
fn simulate_small_runs() {
    let (ok, out, _) = memhier(&[
        "simulate",
        "--config",
        "C1",
        "--workload",
        "EDGE",
        "--small",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("wall ="));
    assert!(out.contains("levels:"));
}

#[test]
fn fit_small_reports_parameters() {
    let (ok, out, _) = memhier(&["fit", "--workload", "EDGE", "--small"]);
    assert!(ok, "{out}");
    assert!(out.contains("alpha ="));
    assert!(out.contains("paper:"));
}

#[test]
fn optimize_respects_budget_flag() {
    let (ok, out, _) = memhier(&["optimize", "--budget", "5000", "--workload", "LU"]);
    assert!(ok, "{out}");
    assert!(out.contains("Optimizing LU under $5000"), "{out}");
    assert!(out.contains("pruning ratio"), "{out}");
    assert!(out.contains("Pareto frontier"), "{out}");
    // An infeasible budget is diagnosed, not an error: every candidate
    // is counted into a pruning bucket.
    let (ok, out, _) = memhier(&["optimize", "--budget", "100", "--workload", "LU"]);
    assert!(ok, "{out}");
    assert!(out.contains("nothing feasible"), "{out}");
    assert!(out.contains("over budget"), "{out}");
}

#[test]
fn optimize_grid_flags_expand_thousands_of_candidates() {
    let (ok, out, _) = memhier(&[
        "optimize",
        "--budget",
        "30000",
        "--workload",
        "FFT",
        "--max-machines",
        "32",
        "--mem",
        "32,64,128,256",
        "--json",
    ]);
    assert!(ok, "{out}");
    let v: serde_json::Value = serde_json::from_str(out.trim()).expect("valid JSON");
    assert!(
        v["search"]["candidates"].as_u64().unwrap() >= 1000,
        "grid too small: {:?}",
        v["search"]
    );
    assert!(v["search"]["pruning_ratio"].as_f64().unwrap() > 0.99);
}

#[test]
fn optimize_rejects_bad_requests() {
    let (ok, _, err) = memhier(&["optimize", "--budget", "5000", "--workload", "SORT"]);
    assert!(!ok);
    assert!(err.contains("unknown workload"), "{err}");
    let (ok, _, err) = memhier(&[
        "optimize",
        "--budget",
        "5000",
        "--workload",
        "LU",
        "--networks",
        "token-ring",
    ]);
    assert!(!ok);
    assert!(err.contains("unknown network"), "{err}");
}

#[test]
fn recommend_from_parameters() {
    let (ok, out, _) = memhier(&[
        "recommend",
        "--alpha",
        "1.1",
        "--beta",
        "500",
        "--rho",
        "0.6",
    ]);
    assert!(ok);
    assert!(out.contains("SingleSmp"), "{out}");
}

#[test]
fn upgrade_prints_plan() {
    let (ok, out, _) = memhier(&["upgrade", "--budget", "2500", "--workload", "FFT"]);
    assert!(ok, "{out}");
    assert!(out.contains("Best upgrade"));
    assert!(out.contains("actions:"));
}

#[test]
fn pareto_frontier_prints_monotone_costs() {
    let (ok, out, _) = memhier(&["pareto", "--workload", "Radix"]);
    assert!(ok, "{out}");
    assert!(out.contains("Pareto frontier"));
    let costs: Vec<f64> = out
        .lines()
        .filter_map(|l| l.trim().strip_prefix('$'))
        .filter_map(|l| l.split_whitespace().next()?.parse().ok())
        .collect();
    assert!(costs.len() >= 3, "{out}");
    assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
}

#[test]
fn fit_phases_segments_the_trace() {
    let (ok, out, _) = memhier(&["fit", "--workload", "EDGE", "--small", "--phases"]);
    assert!(ok, "{out}");
    assert!(out.contains("phases,"));
    assert!(out.contains("phase   0:"));
    // EDGE at small size: 2 iterations x 3 phases = 6 phases.
    assert!(out.contains("phase   5:"), "{out}");
}

#[test]
fn reproduce_table1_runs() {
    let (ok, out, _) = memhier(&["reproduce", "table1"]);
    assert!(ok);
    assert!(out.contains("gray block A"));
}

#[test]
fn reproduce_rejects_unknown_experiment() {
    let (ok, _, err) = memhier(&["reproduce", "fig9"]);
    assert!(!ok);
    assert!(err.contains("unknown experiment"));
}

#[test]
fn recommend_format_json_has_full_field_parity() {
    let (ok, out, _) = memhier(&["recommend", "--workload", "Radix", "--format", "json"]);
    assert!(ok, "{out}");
    let v: serde_json::Value = serde_json::from_str(out.trim()).expect("valid JSON");
    for field in [
        "workload",
        "alpha",
        "beta",
        "rho",
        "platform",
        "rationale",
        "upgrade_advice",
    ] {
        assert!(!v[field].is_null(), "missing `{field}` in {out}");
    }
    assert_eq!(v["workload"].as_str(), Some("Radix"));
    assert_eq!(v["platform"].as_str(), Some("SingleSmp"));
}

#[test]
fn recommend_rejects_unknown_format() {
    let (ok, _, err) = memhier(&["recommend", "--workload", "FFT", "--format", "yaml"]);
    assert!(!ok);
    assert!(err.contains("unknown format"), "{err}");
}

#[test]
fn recommend_text_is_default() {
    let (ok, out, _) = memhier(&["recommend", "--workload", "LU"]);
    assert!(ok, "{out}");
    assert!(out.contains("ManyWorkstationsSlowNetwork"), "{out}");
    assert!(out.contains("upgrade:"), "{out}");
}

#[test]
fn serve_help_lists_all_tuning_flags() {
    let (ok, out, _) = memhier(&["serve", "--help"]);
    assert!(ok, "{out}");
    for flag in [
        "--addr",
        "--workers",
        "--queue-depth",
        "--timeout-ms",
        "--cache-capacity",
        "--cache-shards",
        "--addr-file",
    ] {
        assert!(out.contains(flag), "serve --help missing {flag}:\n{out}");
    }
}

#[test]
fn subcommand_help_prints_usage_and_succeeds() {
    for cmd in ["model", "simulate", "fit", "optimize", "recommend"] {
        let (ok, out, _) = memhier(&[cmd, "--help"]);
        assert!(ok, "{cmd} --help failed");
        assert!(out.contains("--help"), "{cmd} --help output:\n{out}");
    }
}

#[test]
fn sweep_accepts_a_scenario_plan_file() {
    let dir = std::env::temp_dir().join(format!("memhier-plan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plan = dir.join("plan.json");
    // Compact strings and JSON objects mix freely in one plan.
    std::fs::write(
        &plan,
        r#"["C1:FFT:small", {"config": "C2", "workload": "LU", "size": "small"}]"#,
    )
    .unwrap();
    let spec = format!("@{}", plan.display());
    let (ok, out, err) = memhier(&["sweep", "--configs", &spec, "--jobs", "2", "--json"]);
    assert!(ok, "{err}");
    let v: serde_json::Value = serde_json::from_str(out.trim()).expect("valid JSON");
    let rows = v.as_array().expect("array of rows");
    assert_eq!(rows.len(), 2, "{out}");
    assert_eq!(rows[0]["config"].as_str(), Some("C1"));
    assert_eq!(rows[1]["workload"].as_str(), Some("LU"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_a_typoed_scenario_field() {
    let dir = std::env::temp_dir().join(format!("memhier-badplan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plan = dir.join("plan.json");
    std::fs::write(
        &plan,
        r#"[{"config": "C1", "workload": "FFT", "siez": "small"}]"#,
    )
    .unwrap();
    let spec = format!("@{}", plan.display());
    let (ok, _, err) = memhier(&["sweep", "--configs", &spec, "--json"]);
    assert!(!ok);
    assert!(err.contains("unknown scenario field `siez`"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_integer_flag_fails_cleanly() {
    let (ok, _, err) = memhier(&[
        "optimize",
        "--budget",
        "20000",
        "--workload",
        "FFT",
        "--top",
        "many",
    ]);
    assert!(!ok);
    assert!(err.contains("--top"), "{err}");
}
