//! End-to-end trace pipeline: `memhier record` → `memhier fit --trace`
//! → `memhier optimize --from-fit`.  Recording is engine-thread
//! invariant (identical trace bytes at any `--sim-threads`), fitting is
//! chunk-size invariant (identical report bytes at any
//! `--chunk-records`), and a fit report drives the optimizer exactly
//! like the equivalent hand-written `--alpha/--beta/--rho` triple.

use memhier_trace::FitReport;
use std::path::PathBuf;
use std::process::Command;

fn memhier_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_memhier"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "memhier {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name)
}

/// Record the same scenario at 1 and 8 engine threads: the trace files
/// must be byte-identical (observer order is pinned by the engine's
/// thread-invariance net), and so must their fits.
#[test]
fn recording_is_sim_thread_invariant() {
    let one = tmp("fft_threads1.mtr");
    let eight = tmp("fft_threads8.mtr");
    for (path, threads) in [(&one, "1"), (&eight, "8")] {
        memhier_stdout(&[
            "record",
            "--scenario",
            "C4:FFT:small",
            "-o",
            path.to_str().expect("utf8"),
            "--sim-threads",
            threads,
        ]);
    }
    let a = std::fs::read(&one).expect("read trace");
    let b = std::fs::read(&eight).expect("read trace");
    assert_eq!(a, b, "trace bytes differ across --sim-threads");

    let fit_a = memhier_stdout(&["fit", "--trace", one.to_str().unwrap(), "--json"]);
    let fit_b = memhier_stdout(&["fit", "--trace", eight.to_str().unwrap(), "--json"]);
    assert_eq!(fit_a, fit_b, "fit bytes differ across --sim-threads");
}

/// The full pipeline: record an FFT run, fit it streaming at several
/// chunk sizes (identical bytes), sanity-check the recovered locality,
/// and feed the report to the optimizer — whose output must be exactly
/// what the same α/β/ρ spelled as flags produces.
#[test]
fn record_fit_optimize_roundtrip() {
    let trace = tmp("fft_pipeline.mtr");
    let trace_str = trace.to_str().expect("utf8");
    let recorded = memhier_stdout(&["record", "--scenario", "C4:FFT:small", "-o", trace_str]);
    assert!(
        recorded.contains("recorded"),
        "unexpected output: {recorded}"
    );

    // Chunk-size invariance through the public CLI.
    let fit_json = memhier_stdout(&["fit", "--trace", trace_str, "--json"]);
    for chunk in ["1024", "65536", "100000000"] {
        let alt = memhier_stdout(&[
            "fit",
            "--trace",
            trace_str,
            "--chunk-records",
            chunk,
            "--json",
        ]);
        assert_eq!(alt, fit_json, "fit bytes differ at --chunk-records {chunk}");
    }

    // The recovered parameters describe a real hierarchical workload:
    // heavy-tailed locality in the paper's range and ρ from the actual
    // instruction mix.
    let v: serde_json::Value = serde_json::from_str(fit_json.trim()).expect("parse");
    let report = FitReport::from_json(&v).expect("typed report");
    assert!(
        report.alpha > 1.0 && report.alpha < 3.0,
        "alpha {} out of range",
        report.alpha
    );
    assert!(
        report.beta > 0.0 && report.beta.is_finite(),
        "beta {} out of range",
        report.beta
    );
    assert!(
        report.rho > 0.0 && report.rho < 1.0,
        "rho {} out of range",
        report.rho
    );
    assert!(report.r_squared > 0.8, "poor fit: R^2 {}", report.r_squared);

    // `--from-fit` is exactly the custom-workload spelling: the two
    // optimizer invocations must produce byte-identical reports.
    let fit_file = tmp("fft_pipeline_fit.json");
    std::fs::write(&fit_file, &fit_json).expect("write report");
    let from_fit = memhier_stdout(&[
        "optimize",
        "--budget",
        "15000",
        "--from-fit",
        fit_file.to_str().expect("utf8"),
        "--top",
        "3",
        "--json",
    ]);
    let from_flags = memhier_stdout(&[
        "optimize",
        "--budget",
        "15000",
        "--alpha",
        &format!("{:?}", report.alpha),
        "--beta",
        &format!("{:?}", report.beta),
        "--rho",
        &format!("{:?}", report.rho),
        "--top",
        "3",
        "--json",
    ]);
    assert_eq!(
        from_fit, from_flags,
        "--from-fit and --alpha/--beta/--rho diverge"
    );
}

/// Typed failures surface as clean CLI errors, not panics: a missing
/// trace file, a non-power-of-two granularity, and a malformed report.
#[test]
fn pipeline_errors_are_typed() {
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_memhier"))
            .args(args)
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "memhier {args:?} should fail");
        String::from_utf8_lossy(&out.stderr).to_string()
    };
    let missing = run(&["fit", "--trace", "/nonexistent/nope.mtr"]);
    assert!(missing.contains("error:"), "no error line: {missing}");

    let bad_gran = run(&[
        "fit",
        "--trace",
        "/nonexistent/nope.mtr",
        "--granularity",
        "65",
    ]);
    assert!(
        bad_gran.contains("granularity"),
        "granularity validation missing: {bad_gran}"
    );

    let bad_report = tmp("not_a_report.json");
    std::fs::write(&bad_report, r#"{"alpha": 1.5}"#).expect("write");
    let from_fit = run(&[
        "optimize",
        "--budget",
        "1000",
        "--from-fit",
        bad_report.to_str().unwrap(),
    ]);
    assert!(from_fit.contains("error:"), "no error line: {from_fit}");
}
