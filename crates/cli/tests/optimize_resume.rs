//! Kill-and-resume for the fleet optimizer: SIGKILL a checkpointed
//! `memhier optimize` while its confirmation sweep is mid-flight, resume
//! it, and require the final report to be byte-identical to an
//! uninterrupted run.  Mirrors `sweep_resume.rs`: the interrupted run is
//! slowed with an injected `point:delay` fault so the kill lands between
//! journal appends, and the resumed run drops the fault (the journal
//! fingerprint deliberately excludes the fault plan).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// A 3-finalist confirmation over the small LU grid: enough sweep
/// points for a kill to land strictly inside the journal.
const OPTIMIZE_ARGS: &[&str] = &[
    "optimize",
    "--budget",
    "8000",
    "--workload",
    "LU",
    "--max-machines",
    "4",
    "--mem",
    "32,64",
    "--confirm",
    "3",
    "--jobs",
    "1",
    "--json",
];

fn memhier(extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memhier"));
    cmd.args(OPTIMIZE_ARGS)
        .args(extra)
        .env_remove("MEMHIER_FAULTS")
        .env_remove("MEMHIER_JOBS");
    cmd
}

fn journal_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

fn temp_journal() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memhier-optimize-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("kill.jsonl")
}

#[test]
fn sigkill_mid_optimize_then_resume_matches_uninterrupted_run() {
    // Golden: the same request, no checkpointing, no faults, one shot.
    let golden = memhier(&[]).output().expect("golden run");
    assert!(
        golden.status.success(),
        "golden run failed: {}",
        String::from_utf8_lossy(&golden.stderr)
    );
    assert!(!golden.stdout.is_empty());

    // Interrupted: every confirmation point sleeps 500ms, so journal
    // appends are at least that far apart; kill on the first record.
    let journal = temp_journal();
    let _ = std::fs::remove_file(&journal);
    let mut child = memhier(&[
        "--checkpoint",
        journal.to_str().unwrap(),
        "--faults",
        "point:delay:ms=500",
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .expect("spawn interrupted run");

    // Header + >= 1 record, then SIGKILL (std's kill on Unix).
    let deadline = Instant::now() + Duration::from_secs(60);
    while journal_lines(&journal) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let lines_at_kill = journal_lines(&journal);
    assert!(
        lines_at_kill >= 2,
        "no journal record appeared before the deadline"
    );
    child.kill().expect("SIGKILL the optimize run");
    let status = child.wait().expect("reap killed optimize");
    assert!(!status.success(), "killed process must not report success");
    assert!(
        lines_at_kill < 4,
        "kill landed after all 3 finalists completed; nothing was interrupted"
    );

    // Resume with faults off: journaled finalists load, the rest re-run,
    // and the report comes out byte-for-byte the same.
    let resumed = memhier(&["--checkpoint", journal.to_str().unwrap(), "--resume"])
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("resumed"),
        "resume must report loaded points: {stderr}"
    );

    assert_eq!(
        String::from_utf8_lossy(&golden.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_file(&journal);
}
