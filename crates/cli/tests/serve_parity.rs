//! CLI/service output parity: the bytes `memhierd` serves must be the
//! bytes the CLI prints for the same question.

use memhier_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;
use std::time::Duration;

fn memhier_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_memhier"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "memhier {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn serve_body(server: &Server, path: &str, body: &str) -> String {
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    s.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("send");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{reply}");
    body.to_string()
}

/// Like [`serve_body`] but without the 200 assertion: returns the status
/// code and body so error responses can be inspected.  `body: None`
/// sends a bare GET.
fn serve_raw(server: &Server, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let payload = match body {
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{b}",
            b.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    };
    s.write_all(payload.as_bytes()).expect("send");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

fn server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    })
    .expect("start")
}

/// `/v1/simulate` must be byte-identical to `memhier simulate --json` for
/// the same config/workload/size.
#[test]
fn v1_simulate_matches_cli_json_bytes() {
    let server = server();
    let from_service = serve_body(
        &server,
        "/v1/simulate",
        r#"{"config": "C1", "workload": "FFT", "size": "small"}"#,
    );
    let from_cli = memhier_stdout(&[
        "simulate",
        "--config",
        "C1",
        "--workload",
        "FFT",
        "--small",
        "--json",
    ]);
    assert_eq!(from_service, from_cli, "service and CLI bytes diverge");
    server.shutdown();
}

/// `/v1/recommend` must be byte-identical to `memhier recommend --format
/// json` for the same paper workload.
#[test]
fn v1_recommend_matches_cli_json_bytes() {
    let server = server();
    let from_service = serve_body(&server, "/v1/recommend", r#"{"workload": "TPC-C"}"#);
    let from_cli = memhier_stdout(&["recommend", "--workload", "TPC-C", "--format", "json"]);
    assert_eq!(from_service, from_cli, "service and CLI bytes diverge");
    server.shutdown();
}

/// A budgeted `/v1/recommend` attaches the same ranked clusters the CLI
/// prints, byte for byte.
#[test]
fn v1_recommend_budget_matches_cli_json_bytes() {
    let server = server();
    let from_service = serve_body(
        &server,
        "/v1/recommend",
        r#"{"workload": "Radix", "budget": 12000, "top": 4}"#,
    );
    let from_cli = memhier_stdout(&[
        "recommend",
        "--workload",
        "Radix",
        "--budget",
        "12000",
        "--top",
        "4",
        "--format",
        "json",
    ]);
    assert_eq!(from_service, from_cli, "service and CLI bytes diverge");
    server.shutdown();
}

/// `/v1/fit` must be byte-identical to `memhier fit --trace --json` for
/// the same recorded trace.  The trace itself comes from `memhier
/// record`, so this exercises the whole record → fit surface both ways.
#[test]
fn v1_fit_matches_cli_json_bytes() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let trace = dir.join("parity_fft.mtr");
    let trace_str = trace.to_str().expect("utf8 path");
    memhier_stdout(&["record", "--scenario", "C1:FFT:small", "-o", trace_str]);

    let server = server();
    let body = format!(r#"{{"trace": "{trace_str}", "chunk_records": 4096}}"#);
    let from_service = serve_body(&server, "/v1/fit", &body);
    let from_cli = memhier_stdout(&[
        "fit",
        "--trace",
        trace_str,
        "--chunk-records",
        "4096",
        "--json",
    ]);
    assert_eq!(from_service, from_cli, "service and CLI bytes diverge");
    server.shutdown();
}

/// `/v1/optimize` must be byte-identical to `memhier optimize --json`
/// for the same request — including the simulation confirmations, which
/// ride on the thread-invariant engine.  The CLI's `--request` spelling
/// accepts the exact serve body, closing the loop.
#[test]
fn v1_optimize_matches_cli_json_bytes() {
    let server = server();
    let body = r#"{"workload": "LU", "budget": 8000,
                   "search_space": {"max_machines": 4, "memory_mb": [32, 64]},
                   "confirm": 2}"#;
    let from_service = serve_body(&server, "/v1/optimize", body);
    let from_cli = memhier_stdout(&[
        "optimize",
        "--budget",
        "8000",
        "--workload",
        "LU",
        "--max-machines",
        "4",
        "--mem",
        "32,64",
        "--confirm",
        "2",
        "--json",
    ]);
    assert_eq!(from_service, from_cli, "service and CLI bytes diverge");
    let from_request = memhier_stdout(&["optimize", "--request", body, "--json"]);
    assert_eq!(
        from_request, from_cli,
        "--request and flag spellings diverge"
    );
    server.shutdown();
}

/// `GET /v1/registry` must carry the same workload/platform/network
/// documents the CLI prints: `memhier workloads --json` is the
/// `workloads` section byte for byte, and `memhier platforms --json` is
/// the `platforms` + `networks` sections byte for byte.
#[test]
fn v1_registry_matches_cli_json_bytes() {
    let server = server();
    let (status, body) = serve_raw(&server, "GET", "/v1/registry", None);
    assert_eq!(status, 200, "{body}");
    let doc: serde_json::Value = serde_json::from_str(&body).expect("registry parses");

    let workloads = doc.get("workloads").expect("workloads section").clone();
    let from_cli = memhier_stdout(&["workloads", "--json"]);
    let section = serde_json::to_string_pretty(&workloads).expect("serialize") + "\n";
    assert_eq!(section, from_cli, "workloads section diverges from CLI");

    let platforms = serde_json::Value::Object(vec![
        (
            "platforms".to_string(),
            doc.get("platforms").expect("platforms section").clone(),
        ),
        (
            "networks".to_string(),
            doc.get("networks").expect("networks section").clone(),
        ),
    ]);
    let from_cli = memhier_stdout(&["platforms", "--json"]);
    let section = serde_json::to_string_pretty(&platforms).expect("serialize") + "\n";
    assert_eq!(section, from_cli, "platforms section diverges from CLI");
    server.shutdown();
}

/// Every `/v1` error leaves the live server inside the one typed
/// envelope: `{"error": {"status", "code", "message"}}`, for 400
/// (unknown names), 422 (well-formed but impossible work), 404 (no such
/// route), and 405 (wrong method).
#[test]
fn v1_errors_share_the_typed_envelope_over_the_wire() {
    let server = server();
    let cases: Vec<(&str, &str, Option<&str>, u16, &str)> = vec![
        (
            "POST",
            "/v1/simulate",
            Some(r#"{"config": "C99", "workload": "FFT", "size": "small"}"#),
            400,
            "bad_request",
        ),
        (
            "POST",
            "/v1/fit",
            Some(r#"{"trace": "/nonexistent/parity.mtr"}"#),
            422,
            "unprocessable",
        ),
        ("GET", "/v1/nothing", None, 404, "not_found"),
        (
            "POST",
            "/v1/registry",
            Some("{}"),
            405,
            "method_not_allowed",
        ),
    ];
    for (method, path, body, want_status, want_code) in cases {
        let (status, body) = serve_raw(&server, method, path, body);
        assert_eq!(status, want_status, "{method} {path}: {body}");
        let doc: serde_json::Value = serde_json::from_str(&body).expect("error body parses");
        let e = doc.get("error").expect("envelope has `error`");
        assert_eq!(
            e.get("status").and_then(serde_json::Value::as_u64),
            Some(want_status as u64),
            "{method} {path}"
        );
        assert_eq!(
            e.get("code").and_then(serde_json::Value::as_str),
            Some(want_code),
            "{method} {path}"
        );
        assert!(
            !e.get("message")
                .and_then(serde_json::Value::as_str)
                .expect("message is a string")
                .is_empty(),
            "{method} {path}: empty message"
        );
    }
    server.shutdown();
}

/// Parity must also hold through a **keep-alive** connection: the same
/// request sent twice on one connection (a cold miss computed by a
/// worker, then a warm hit served inline by the event loop) must both be
/// byte-identical to the CLI.
#[test]
fn parity_holds_over_a_keepalive_connection() {
    let server = server();
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let body = r#"{"config": "C2", "workload": "Radix", "size": "small"}"#;
    let payload = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let read_one = |s: &mut TcpStream| {
        let mut acc = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&acc[..head_end]).to_string();
                let clen: usize = head
                    .lines()
                    .find_map(|l| {
                        let (name, v) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse().ok())?
                    })
                    .expect("content-length");
                if acc.len() >= head_end + 4 + clen {
                    let head = String::from_utf8_lossy(&acc[..head_end]).to_string();
                    let body = String::from_utf8_lossy(&acc[head_end + 4..head_end + 4 + clen])
                        .to_string();
                    return (head, body);
                }
            }
            let n = s.read(&mut chunk).expect("read");
            assert!(n > 0, "connection closed mid-response");
            acc.extend_from_slice(&chunk[..n]);
        }
    };
    let from_cli = memhier_stdout(&[
        "simulate",
        "--config",
        "C2",
        "--workload",
        "Radix",
        "--small",
        "--json",
    ]);

    s.write_all(payload.as_bytes()).expect("send cold");
    let (head, cold) = read_one(&mut s);
    assert!(head.contains("X-Cache: miss"), "{head}");
    assert_eq!(cold, from_cli, "cold keep-alive bytes diverge from CLI");

    s.write_all(payload.as_bytes()).expect("send warm");
    let (head, warm) = read_one(&mut s);
    assert!(head.contains("X-Cache: hit"), "{head}");
    assert_eq!(warm, from_cli, "warm keep-alive bytes diverge from CLI");
    server.shutdown();
}
