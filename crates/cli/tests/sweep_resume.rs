//! Kill-and-resume: SIGKILL a checkpointed `memhier sweep` mid-grid,
//! resume it, and require the final stdout to be byte-identical to an
//! uninterrupted run.  The interrupted run is slowed with an injected
//! `point:delay` fault so the kill lands deterministically between
//! journal appends; the resumed run drops the fault (the journal
//! fingerprint deliberately excludes the fault plan) and finishes clean.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SWEEP_ARGS: &[&str] = &[
    "sweep",
    "--configs",
    "C1,C2",
    "--workloads",
    "FFT,LU",
    "--small",
    "--jobs",
    "1",
    "--json",
];

fn memhier(extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_memhier"));
    cmd.args(SWEEP_ARGS)
        .args(extra)
        .env_remove("MEMHIER_FAULTS")
        .env_remove("MEMHIER_JOBS");
    cmd
}

fn journal_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memhier-sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}.jsonl"))
}

#[test]
fn sigkill_mid_sweep_then_resume_matches_uninterrupted_run() {
    // Golden: the same grid, no checkpointing, no faults, one shot.
    let golden = memhier(&[]).output().expect("golden run");
    assert!(
        golden.status.success(),
        "golden run failed: {}",
        String::from_utf8_lossy(&golden.stderr)
    );
    assert!(!golden.stdout.is_empty());

    // Interrupted: every point sleeps 500ms, so journal appends are at
    // least that far apart; kill as soon as the first record lands.
    let journal = temp_journal("kill");
    let _ = std::fs::remove_file(&journal);
    let mut child = memhier(&[
        "--checkpoint",
        journal.to_str().unwrap(),
        "--faults",
        "point:delay:ms=500",
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .expect("spawn interrupted run");

    // Header + >= 1 record, then SIGKILL (std's kill on Unix).
    let deadline = Instant::now() + Duration::from_secs(60);
    while journal_lines(&journal) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let lines_at_kill = journal_lines(&journal);
    assert!(
        lines_at_kill >= 2,
        "no journal record appeared before the deadline"
    );
    child.kill().expect("SIGKILL the sweep");
    let status = child.wait().expect("reap killed sweep");
    assert!(!status.success(), "killed process must not report success");
    assert!(
        lines_at_kill < 5,
        "kill landed after the whole 4-point grid completed; nothing was interrupted"
    );

    // Resume with faults off: journaled points load, the rest re-run.
    let resumed = memhier(&["--checkpoint", journal.to_str().unwrap(), "--resume"])
        .output()
        .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("resumed"),
        "resume must report loaded points: {stderr}"
    );

    assert_eq!(
        String::from_utf8_lossy(&golden.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed output must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn resume_refuses_a_journal_from_a_different_grid() {
    let journal = temp_journal("mismatch");
    let _ = std::fs::remove_file(&journal);
    // Journal a 1-point grid...
    let first = memhier(&["--checkpoint", journal.to_str().unwrap()])
        .output()
        .expect("first run");
    assert!(first.status.success());
    // ...then try to resume a different grid against it.
    let out = Command::new(env!("CARGO_BIN_EXE_memhier"))
        .args([
            "sweep",
            "--configs",
            "C3",
            "--workloads",
            "Radix",
            "--small",
            "--jobs",
            "1",
            "--checkpoint",
            journal.to_str().unwrap(),
            "--resume",
        ])
        .env_remove("MEMHIER_FAULTS")
        .env_remove("MEMHIER_JOBS")
        .output()
        .expect("mismatched resume");
    assert!(
        !out.status.success(),
        "resuming across a changed plan must fail"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint"), "{stderr}");
    let _ = std::fs::remove_file(&journal);
}
