//! Print the analytic model's E(Instr) for every paper configuration
//! (C1–C15) × Table-2 kernel — a quick sanity sweep of the model alone.
//!
//! ```sh
//! cargo run -p memhier-core --example sanity
//! ```
use memhier_core::model::AnalyticModel;
use memhier_core::params::{self, configs};

fn main() {
    let model = AnalyticModel::default();
    println!("E(Instr) in seconds (self-consistent arrivals, paper Table-2 parameters)");
    for c in configs::all_configs() {
        print!("{:4}", c.name.clone().unwrap());
        for w in params::paper_workloads() {
            print!("  {}={:.3e}", w.name, model.evaluate_or_inf(&c, &w));
        }
        println!();
    }
}
