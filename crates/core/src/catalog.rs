//! The platform registry: string-keyed, trait-object back-ends that build
//! [`ClusterSpec`]s from typed parameter maps.
//!
//! The paper's closed universe (SMP / COW / CLUMP over three networks) is
//! one set of entries in this registry; the NUMA-aware SMP and multi-rack
//! fat-tree back-ends are two more, and downstream crates can
//! [`register_platform`] their own.  Every entry publishes a typed
//! parameter schema ([`ParamInfo`]) so `memhier platforms` and
//! `GET /v1/registry` are discoverable instead of folklore.

use crate::error::ModelError;
use crate::machine::{MachineSpec, NetworkKind};
use crate::platform::ClusterSpec;
use serde::__private::Value;
use std::sync::{OnceLock, RwLock};

/// One named, typed parameter a platform (or workload) back-end accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamInfo {
    /// Parameter name as it appears in a scenario's parameter map.
    pub name: &'static str,
    /// Type tag: `"u32"`, `"u64"`, `"f64"`, or `"string"`.
    pub kind: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Default value, rendered as a string.
    pub default: &'static str,
}

/// A platform back-end: builds a [`ClusterSpec`] from a JSON parameter map.
pub trait PlatformSpec: Sync + Send {
    /// Canonical registry key (e.g. `"numa-smp"`).
    fn key(&self) -> &'static str;
    /// Additional accepted spellings.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }
    /// One-line description for registry listings.
    fn description(&self) -> &'static str;
    /// The typed parameter schema this back-end accepts.
    fn params(&self) -> &'static [ParamInfo];
    /// Build a validated cluster from a JSON object of parameters
    /// (missing keys take the schema defaults; unknown keys are rejected).
    fn build(&self, params: &Value) -> Result<ClusterSpec, ModelError>;
}

/// Reject parameter keys outside the declared schema — a typo'd knob must
/// fail loudly, not silently fall back to its default.
fn check_unknown_keys(spec: &dyn PlatformSpec, params: &Value) -> Result<(), ModelError> {
    let Value::Object(fields) = params else {
        if params.is_null() {
            return Ok(());
        }
        return Err(ModelError::InvalidSpec(format!(
            "platform `{}` parameters must be a JSON object",
            spec.key()
        )));
    };
    for (k, _) in fields {
        if !spec.params().iter().any(|p| p.name == k) {
            let known: Vec<&str> = spec.params().iter().map(|p| p.name).collect();
            return Err(ModelError::InvalidSpec(format!(
                "platform `{}` has no parameter `{k}` (known: {})",
                spec.key(),
                known.join(", ")
            )));
        }
    }
    Ok(())
}

fn get_u32(params: &Value, key: &str, default: u32) -> Result<u32, ModelError> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| ModelError::InvalidSpec(format!("parameter `{key}` must be a u32"))),
    }
}

fn get_u64(params: &Value, key: &str, default: u64) -> Result<u64, ModelError> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ModelError::InvalidSpec(format!("parameter `{key}` must be a u64"))),
    }
}

fn get_f64(params: &Value, key: &str, default: f64) -> Result<f64, ModelError> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ModelError::InvalidSpec(format!("parameter `{key}` must be a number"))),
    }
}

fn get_network(params: &Value, key: &str, default: NetworkKind) -> Result<NetworkKind, ModelError> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => {
            let name = v.as_str().ok_or_else(|| {
                ModelError::InvalidSpec(format!("parameter `{key}` must be a network name"))
            })?;
            NetworkKind::parse(name).ok_or_else(|| {
                ModelError::InvalidSpec(format!(
                    "unknown network `{name}` (known: {})",
                    NetworkKind::known_keys().join("|")
                ))
            })
        }
    }
}

/// Shared machine-geometry parameters every built-in accepts.
const MACHINE_PARAMS: [ParamInfo; 3] = [
    ParamInfo {
        name: "cache_kb",
        kind: "u64",
        about: "per-processor cache capacity, KB",
        default: "256",
    },
    ParamInfo {
        name: "memory_mb",
        kind: "u64",
        about: "per-machine memory capacity, MB",
        default: "64",
    },
    ParamInfo {
        name: "clock_mhz",
        kind: "f64",
        about: "processor clock, MHz",
        default: "200",
    },
];

fn machine_from(params: &Value, n_procs: u32, memory_mb: u64) -> Result<MachineSpec, ModelError> {
    Ok(MachineSpec::new(
        n_procs,
        get_u64(params, "cache_kb", 256)?,
        get_u64(params, "memory_mb", memory_mb)?,
        get_f64(params, "clock_mhz", 200.0)?,
    ))
}

macro_rules! builtin_platform {
    ($ty:ident, $key:literal, $aliases:expr, $desc:literal, $params:expr, |$p:ident| $build:expr) => {
        struct $ty;
        impl PlatformSpec for $ty {
            fn key(&self) -> &'static str {
                $key
            }
            fn aliases(&self) -> &'static [&'static str] {
                $aliases
            }
            fn description(&self) -> &'static str {
                $desc
            }
            fn params(&self) -> &'static [ParamInfo] {
                $params
            }
            fn build(&self, $p: &Value) -> Result<ClusterSpec, ModelError> {
                check_unknown_keys(self, $p)?;
                let cluster: ClusterSpec = $build;
                cluster.validate()?;
                Ok(cluster)
            }
        }
    };
}

static UNI_PARAMS: &[ParamInfo] = &MACHINE_PARAMS;
builtin_platform!(
    Uniprocessor,
    "uniprocessor",
    &["uni"],
    "one machine, one processor: the paper's baseline 3-level hierarchy",
    UNI_PARAMS,
    |p| ClusterSpec::single(machine_from(p, 1, 64)?)
);

static SMP_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: "procs",
        kind: "u32",
        about: "processors sharing the memory bus",
        default: "2",
    },
    MACHINE_PARAMS[0],
    MACHINE_PARAMS[1],
    MACHINE_PARAMS[2],
];
builtin_platform!(
    Smp,
    "smp",
    &[],
    "a single bus-based SMP (paper Table 3 family)",
    SMP_PARAMS,
    |p| ClusterSpec::single(machine_from(p, get_u32(p, "procs", 2)?, 128)?)
);

static COW_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: "machines",
        kind: "u32",
        about: "workstations in the cluster",
        default: "4",
    },
    ParamInfo {
        name: "network",
        kind: "string",
        about: "cluster network (any registered NetworkKind)",
        default: "Ethernet100",
    },
    MACHINE_PARAMS[0],
    MACHINE_PARAMS[1],
    MACHINE_PARAMS[2],
];
builtin_platform!(
    Cow,
    "cow",
    &["cluster", "cluster-of-workstations"],
    "a cluster of single-processor workstations (paper Table 4 family)",
    COW_PARAMS,
    |p| ClusterSpec::cluster(
        machine_from(p, 1, 64)?,
        get_u32(p, "machines", 4)?,
        get_network(p, "network", NetworkKind::Ethernet100)?,
    )
);

static CLUMP_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: "machines",
        kind: "u32",
        about: "SMP nodes in the cluster",
        default: "2",
    },
    ParamInfo {
        name: "procs",
        kind: "u32",
        about: "processors per node",
        default: "2",
    },
    ParamInfo {
        name: "network",
        kind: "string",
        about: "cluster network (any registered NetworkKind)",
        default: "Ethernet100",
    },
    MACHINE_PARAMS[0],
    MACHINE_PARAMS[1],
    MACHINE_PARAMS[2],
];
builtin_platform!(
    Clump,
    "clump",
    &["cluster-of-smps"],
    "a cluster of SMP nodes (paper Table 5 family)",
    CLUMP_PARAMS,
    |p| ClusterSpec::cluster(
        {
            let mut m = machine_from(p, get_u32(p, "procs", 2)?, 128)?;
            m.memory_bytes = get_u64(p, "memory_mb", 128)? * 1024 * 1024;
            m
        },
        get_u32(p, "machines", 2)?,
        get_network(p, "network", NetworkKind::Ethernet100)?,
    )
);

static NUMA_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: "procs",
        kind: "u32",
        about: "processors in the machine",
        default: "4",
    },
    ParamInfo {
        name: "domains",
        kind: "u32",
        about: "NUMA domains (memory controllers); must divide procs",
        default: "2",
    },
    ParamInfo {
        name: "remote_penalty_cycles",
        kind: "f64",
        about: "extra cycles for a cross-domain memory access",
        default: "40",
    },
    MACHINE_PARAMS[0],
    MACHINE_PARAMS[1],
    MACHINE_PARAMS[2],
];
builtin_platform!(
    NumaSmp,
    "numa-smp",
    &["numa"],
    "a NUMA-aware SMP: per-domain memory buses with a remote-domain latency penalty",
    NUMA_PARAMS,
    |p| ClusterSpec::single(machine_from(p, get_u32(p, "procs", 4)?, 128)?.with_numa(
        get_u32(p, "domains", 2)?,
        get_f64(p, "remote_penalty_cycles", 40.0)?,
    ))
);

static FATTREE_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: "machines",
        kind: "u32",
        about: "workstations across the racks (4 per rack)",
        default: "8",
    },
    MACHINE_PARAMS[0],
    MACHINE_PARAMS[1],
    MACHINE_PARAMS[2],
];
builtin_platform!(
    FatTreeCow,
    "fattree-cow",
    &["fattree", "fat-tree-cow"],
    "workstations on a multi-rack 1Gb fat tree: per-port switching in-rack, oversubscribed uplinks across",
    FATTREE_PARAMS,
    |p| ClusterSpec::cluster(
        machine_from(p, 1, 64)?,
        get_u32(p, "machines", 8)?,
        NetworkKind::FatTree,
    )
);

fn builtin_platforms() -> Vec<&'static dyn PlatformSpec> {
    vec![&Uniprocessor, &Smp, &Cow, &Clump, &NumaSmp, &FatTreeCow]
}

fn platform_registry() -> &'static RwLock<Vec<&'static dyn PlatformSpec>> {
    static REG: OnceLock<RwLock<Vec<&'static dyn PlatformSpec>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(builtin_platforms()))
}

/// Every registered platform back-end, built-ins first.
pub fn platform_specs() -> Vec<&'static dyn PlatformSpec> {
    platform_registry()
        .read()
        .expect("platform registry poisoned")
        .clone()
}

/// Canonical keys of every registered platform.
pub fn platform_keys() -> Vec<&'static str> {
    platform_specs().iter().map(|p| p.key()).collect()
}

/// Resolve a platform back-end by key or alias (case-insensitive).
pub fn platform_by_key(name: &str) -> Option<&'static dyn PlatformSpec> {
    platform_specs().into_iter().find(|p| {
        p.key().eq_ignore_ascii_case(name)
            || p.aliases().iter().any(|a| a.eq_ignore_ascii_case(name))
    })
}

/// Register a new platform back-end at runtime.  The spec is leaked
/// (handles are `'static`); duplicate keys/aliases are rejected.
pub fn register_platform(
    spec: Box<dyn PlatformSpec>,
) -> Result<&'static dyn PlatformSpec, ModelError> {
    if platform_by_key(spec.key()).is_some()
        || spec.aliases().iter().any(|a| platform_by_key(a).is_some())
    {
        return Err(ModelError::InvalidSpec(format!(
            "platform `{}` is already registered",
            spec.key()
        )));
    }
    let leaked: &'static dyn PlatformSpec = Box::leak(spec);
    platform_registry()
        .write()
        .expect("platform registry poisoned")
        .push(leaked);
    Ok(leaked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind;
    use serde_json::json;

    #[test]
    fn builtin_keys_are_discoverable() {
        let keys = platform_keys();
        for k in [
            "uniprocessor",
            "smp",
            "cow",
            "clump",
            "numa-smp",
            "fattree-cow",
        ] {
            assert!(keys.contains(&k), "missing builtin {k}");
        }
        assert!(platform_by_key("NUMA").is_some(), "alias lookup");
        assert!(platform_by_key("nonesuch").is_none());
    }

    #[test]
    fn every_builtin_builds_with_defaults() {
        for p in platform_specs() {
            let c = p
                .build(&serde::__private::Value::Object(vec![]))
                .unwrap_or_else(|e| panic!("{}: {e}", p.key()));
            assert!(c.validate().is_ok(), "{}", p.key());
        }
    }

    #[test]
    fn params_override_defaults() {
        let smp = platform_by_key("smp").unwrap();
        let c = smp
            .build(&json!({"procs": 4, "cache_kb": 512, "memory_mb": 256}))
            .unwrap();
        assert_eq!(c.machine.n_procs, 4);
        assert_eq!(c.machine.cache_bytes, 512 * 1024);
        assert_eq!(c.machine.memory_bytes, 256 * 1024 * 1024);
        assert_eq!(c.platform(), PlatformKind::Smp);

        let numa = platform_by_key("numa-smp").unwrap();
        let c = numa
            .build(&json!({"procs": 8, "domains": 4, "remote_penalty_cycles": 55.0}))
            .unwrap();
        assert_eq!(c.machine.numa_domains(), 4);
        assert_eq!(c.machine.numa.unwrap().remote_penalty_cycles, 55.0);

        let ft = platform_by_key("fattree-cow").unwrap();
        let c = ft.build(&json!({"machines": 16})).unwrap();
        assert_eq!(c.machines, 16);
        assert_eq!(c.network, Some(NetworkKind::FatTree));
    }

    #[test]
    fn cow_accepts_any_registered_network() {
        let cow = platform_by_key("cow").unwrap();
        let c = cow.build(&json!({"network": "atm"})).unwrap();
        assert_eq!(c.network, Some(NetworkKind::Atm155));
        let c = cow
            .build(&json!({"network": "fat-tree", "machines": 8}))
            .unwrap();
        assert_eq!(c.network, Some(NetworkKind::FatTree));
        let err = cow.build(&json!({"network": "token-ring"})).unwrap_err();
        assert!(err.to_string().contains("Ethernet10"), "{err}");
    }

    #[test]
    fn unknown_parameter_keys_fail_loudly() {
        let smp = platform_by_key("smp").unwrap();
        let err = smp.build(&json!({"prcs": 4})).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("prcs"), "{msg}");
        assert!(msg.contains("procs"), "should list known keys: {msg}");
    }

    #[test]
    fn invalid_geometry_is_rejected_at_build() {
        let numa = platform_by_key("numa-smp").unwrap();
        // 3 domains don't divide 4 procs.
        assert!(numa.build(&json!({"procs": 4, "domains": 3})).is_err());
    }

    #[test]
    fn runtime_platform_registration() {
        struct Mesh;
        impl PlatformSpec for Mesh {
            fn key(&self) -> &'static str {
                "test-mesh"
            }
            fn description(&self) -> &'static str {
                "test entry"
            }
            fn params(&self) -> &'static [ParamInfo] {
                &[]
            }
            fn build(&self, _: &Value) -> Result<ClusterSpec, ModelError> {
                Ok(ClusterSpec::single(MachineSpec::new(1, 256, 64, 200.0)))
            }
        }
        let p = register_platform(Box::new(Mesh)).expect("fresh key registers");
        assert_eq!(p.key(), "test-mesh");
        assert!(platform_by_key("test-mesh").is_some());
        assert!(register_platform(Box::new(Mesh)).is_err(), "dup key");
    }
}
