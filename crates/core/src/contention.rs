//! Queueing and synchronization mathematics (paper §4).
//!
//! * Shared-resource contention is an **M/D/1 queue**: memoryless arrivals
//!   from the *other* processors at rate `λ`, deterministic service time
//!   `ρ_s` (the uncontended device latency), one server.  The mean response
//!   time is
//!
//!   ```text
//!   t = ρ_s · (1 − u/2) / (1 − u),    u = λ·ρ_s
//!   ```
//!
//!   which reduces to `ρ_s` at `u = 0` — i.e. to Jacob et al.'s
//!   uniprocessor model at `n = 1`, the consistency property the paper
//!   states for its eq. (9).
//!
//! * **Barrier waiting** uses order statistics: if each of `n` processes'
//!   inter-barrier times is exponential with rate `λ_b`, the barrier cycle
//!   of the whole system is the max of `n` exponentials with expectation
//!   `E[X] = H_n/λ_b` (`H_n` the harmonic number), so the mean *wait* per
//!   barrier is `(H_n − 1)/λ_b`.

/// Mean response time of an M/D/1 queue: deterministic service time
/// `service`, Poisson arrival rate `arrival` (in reciprocal units of
/// `service`).  Returns `None` if the utilization `arrival·service ≥ 1`
/// (queue is unstable, delay diverges), and also for negative or
/// non-finite inputs: a degenerate configuration must surface upstream
/// as [`crate::error::ModelError`], never as NaN cycles leaking into a
/// prediction.
///
/// ```
/// use memhier_core::contention::md1_response;
/// // No load: response equals the raw service time.
/// assert_eq!(md1_response(50.0, 0.0), Some(50.0));
/// // Saturated: diverges.
/// assert_eq!(md1_response(50.0, 0.02), None);
/// // Degenerate inputs are errors, not NaN.
/// assert_eq!(md1_response(f64::NAN, 0.0), None);
/// assert_eq!(md1_response(50.0, -1.0), None);
/// ```
pub fn md1_response(service: f64, arrival: f64) -> Option<f64> {
    if !service.is_finite() || !arrival.is_finite() || service < 0.0 || arrival < 0.0 {
        return None;
    }
    if service == 0.0 {
        return Some(0.0);
    }
    let u = arrival * service;
    if u >= 1.0 {
        return None;
    }
    Some(service * (1.0 - 0.5 * u) / (1.0 - u))
}

/// Mean *waiting* time (response − service) of the same M/D/1 queue, i.e.
/// the pure queueing delay `ρ_s·u / (2(1−u))`.  `None` when unstable.
pub fn md1_wait(service: f64, arrival: f64) -> Option<f64> {
    md1_response(service, arrival).map(|r| r - service)
}

/// `H_n = Σ_{i=1}^{n} 1/i`, the n-th harmonic number (`H_0 = 0`).
pub fn harmonic(n: u32) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Expected barrier *cycle* time of an `n`-process system whose per-process
/// inter-barrier times are exponential with rate `rate_b`:
/// `E[max of n exponentials] = H_n / λ_b` (paper §4, order statistics).
pub fn barrier_cycle(n: u32, rate_b: f64) -> f64 {
    if rate_b <= 0.0 {
        return 0.0;
    }
    harmonic(n) / rate_b
}

/// Expected per-barrier *waiting* time: `E[X] − 1/λ_b = (H_n − 1)/λ_b`,
/// zero for `n ≤ 1` (a single process never waits at a barrier).
pub fn barrier_wait(n: u32, rate_b: f64) -> f64 {
    if n <= 1 || rate_b <= 0.0 {
        return 0.0;
    }
    (harmonic(n) - 1.0) / rate_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_zero_load_is_service_time() {
        assert_eq!(md1_response(42.0, 0.0), Some(42.0));
        assert_eq!(md1_wait(42.0, 0.0), Some(0.0));
    }

    #[test]
    fn md1_monotone_in_load() {
        let mut prev = 0.0;
        for i in 0..99 {
            let arrival = i as f64 * 0.0001; // u up to 0.495 at service 50
            let r = md1_response(50.0, arrival).unwrap();
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn md1_diverges_at_saturation() {
        assert_eq!(md1_response(50.0, 1.0 / 50.0), None);
        assert_eq!(md1_response(50.0, 10.0), None);
        // Just below saturation: huge but finite.
        let r = md1_response(50.0, 0.99 / 50.0).unwrap();
        assert!(r > 50.0 * 10.0);
    }

    #[test]
    fn md1_matches_closed_form() {
        // u = 0.5: response = s(1-0.25)/0.5 = 1.5 s.
        let r = md1_response(10.0, 0.05).unwrap();
        assert!((r - 15.0).abs() < 1e-12);
    }

    #[test]
    fn md1_zero_service() {
        assert_eq!(md1_response(0.0, 5.0), Some(0.0));
    }

    #[test]
    fn md1_rejects_degenerate_inputs() {
        // NaN and infinities answer None (not Some(NaN)), as do negative
        // rates: callers turn None into ModelError::Saturated instead of
        // propagating poisoned arithmetic.
        assert_eq!(md1_response(f64::NAN, 0.1), None);
        assert_eq!(md1_response(10.0, f64::NAN), None);
        assert_eq!(md1_response(f64::INFINITY, 0.0), None);
        assert_eq!(md1_response(10.0, f64::INFINITY), None);
        assert_eq!(md1_response(-1.0, 0.1), None);
        assert_eq!(md1_response(10.0, -0.1), None);
        assert_eq!(md1_wait(f64::NAN, 0.1), None);
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_grows_like_log() {
        // H_n ≈ ln n + γ.
        let n = 100_000u32;
        let gamma = 0.577_215_664_901_532_9;
        assert!((harmonic(n) - ((n as f64).ln() + gamma)).abs() < 1e-4);
    }

    #[test]
    fn barrier_wait_zero_for_uniprocessor() {
        assert_eq!(barrier_wait(1, 0.001), 0.0);
        assert_eq!(barrier_wait(0, 0.001), 0.0);
    }

    #[test]
    fn barrier_wait_grows_with_n() {
        let r = 1e-4;
        assert!(barrier_wait(2, r) < barrier_wait(4, r));
        assert!(barrier_wait(4, r) < barrier_wait(16, r));
    }

    #[test]
    fn barrier_cycle_minus_mean_is_wait() {
        let n = 8;
        let r = 2e-5;
        let cycle = barrier_cycle(n, r);
        let wait = barrier_wait(n, r);
        assert!((cycle - 1.0 / r - wait).abs() < 1e-9);
    }

    #[test]
    fn barrier_degenerate_rate() {
        assert_eq!(barrier_cycle(4, 0.0), 0.0);
        assert_eq!(barrier_wait(4, -1.0), 0.0);
    }
}
