//! Error types for model construction and evaluation.

use std::fmt;

/// Errors raised while validating parameters or evaluating the analytic model.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A locality parameter was out of its legal domain (`α > 1`, `β > 1`).
    InvalidLocality {
        /// Offending parameter name (`"alpha"` or `"beta"`).
        param: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `ρ` (fraction of instructions referencing memory) must be in `[0, 1]`.
    InvalidRho(f64),
    /// A machine/cluster structural parameter was invalid (zero processors,
    /// zero machines, zero capacity, …).
    InvalidSpec(String),
    /// A shared resource saturated under the open-arrival model: the M/D/1
    /// utilization reached or exceeded 1, so the predicted queueing delay
    /// diverges.  Contains the hierarchy level name and the utilization.
    Saturated {
        /// Human-readable name of the saturated level (e.g. `"memory bus"`).
        level: &'static str,
        /// The offending utilization (≥ 1).
        utilization: f64,
    },
    /// The self-consistent fixed-point iteration failed to converge.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: u32,
        /// Residual at the last iterate.
        residual: f64,
    },
    /// A cluster spec requires a network but none was provided
    /// (COW/CLUMP platforms need `ClusterSpec::network`).
    MissingNetwork,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidLocality { param, value } => {
                write!(
                    f,
                    "invalid locality parameter {param} = {value} (must be > 1)"
                )
            }
            ModelError::InvalidRho(v) => {
                write!(f, "invalid rho = {v} (must be within [0, 1])")
            }
            ModelError::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
            ModelError::Saturated { level, utilization } => write!(
                f,
                "{level} saturated: utilization {utilization:.3} >= 1, queueing delay diverges"
            ),
            ModelError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "fixed-point iteration did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            ModelError::MissingNetwork => {
                write!(f, "cluster platform requires a network kind, none given")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = ModelError::InvalidLocality {
            param: "alpha",
            value: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("0.5"));
    }

    #[test]
    fn display_saturated_mentions_level() {
        let e = ModelError::Saturated {
            level: "memory bus",
            utilization: 1.2,
        };
        assert!(e.to_string().contains("memory bus"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::MissingNetwork);
        assert!(e.to_string().contains("network"));
    }
}
