//! # memhier-core
//!
//! Analytical execution-time model for cluster memory hierarchies, reproducing
//! Du & Zhang, *"The Impact of Memory Hierarchies on Cluster Computing"*
//! (IPPS 1999).
//!
//! The model predicts the average execution time per instruction,
//! `E(Instr) = (1/(n·N)) · (1/S + ρ·T)` (paper eq. 4), of a bulk-synchronous
//! SPMD program on three platform families:
//!
//! * a single bus-based **SMP** (n processors, one shared memory),
//! * a **cluster of workstations** (COW; N single-processor nodes over a
//!   bus or switch network),
//! * a **cluster of SMPs** (CLUMP; N nodes of n processors each).
//!
//! The key quantity is `T`, the average additional memory-access time per
//! reference, accumulated over the memory-hierarchy levels a reference may
//! reach (paper eq. 7).  The probability of reaching level *i* comes from a
//! two-parameter stack-distance model of program locality (paper eqs. 1–2),
//! and the per-level access time is inflated by queueing contention (M/D/1)
//! and barrier synchronization (order statistics of exponentials).
//!
//! ## Crate layout
//!
//! * [`locality`] — the stack-distance locality model `P(x)`, `p(x)` and the
//!   closed-form tail `∫_s^∞ p(x) dx`, plus per-workload parameter records.
//! * [`contention`] — M/D/1 response time and barrier order-statistics math.
//! * [`machine`] — machine, network, and latency parameter types.
//! * [`platform`] — cluster specifications and platform classification
//!   (paper Table 1).
//! * [`model`] — the analytic model proper: `T` and `E(Instr)` per platform.
//! * [`params`] — the paper's published constants: latency table (§5.1),
//!   workload characteristics (Table 2), and configurations C1–C15
//!   (Tables 3–5).
//!
//! ## Quick example
//!
//! ```
//! use memhier_core::params::{self, configs};
//! use memhier_core::model::AnalyticModel;
//!
//! let model = AnalyticModel::default();
//! let fft = params::workload_fft();
//! // C5: 4-processor SMP, 256 KB cache, 128 MB memory, 200 MHz.
//! let pred = model.evaluate(&configs::c5(), &fft).unwrap();
//! assert!(pred.e_instr_seconds > 0.0);
//! ```

pub mod catalog;
pub mod contention;
pub mod error;
pub mod locality;
pub mod machine;
pub mod model;
pub mod params;
pub mod platform;
pub mod sensitivity;

pub use catalog::{platform_by_key, platform_keys, platform_specs, ParamInfo, PlatformSpec};
pub use error::ModelError;
pub use locality::{Locality, WorkloadParams};
pub use machine::{LatencyParams, MachineSpec, NetworkKind, NetworkTopology};
pub use model::{
    AnalyticModel, ArrivalModel, LevelBreakdown, LevelDiagnostic, ModelReport, Prediction, TailMode,
};
pub use platform::{ClusterSpec, PlatformKind};
