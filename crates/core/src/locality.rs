//! The stack-distance locality model (paper §3, eqs. 1–2).
//!
//! The distribution of LRU stack distances of a program's address stream is
//! modeled by the two-parameter family
//!
//! ```text
//! P(x) = 1 − (x/β + 1)^−(α−1)            (cumulative, eq. 1)
//! p(x) = ((α−1)/β) · (x/β + 1)^−α        (density,    eq. 2)
//! ```
//!
//! with workload parameters `α > 1` and `β > 1`.  Locality improves as `α`
//! grows or `β` shrinks.  The probability that a reference reaches *past* a
//! level of capacity `s` (i.e. misses in an LRU-managed fully-associative
//! store of `s` items) is the closed-form tail
//!
//! ```text
//! ∫_s^∞ p(x) dx = (s/β + 1)^−(α−1)
//! ```
//!
//! When the program runs SPMD on `q = n·N` processors, each process works on
//! a `1/q` slice, so its maximum stack distance shrinks by `q` while the
//! cumulative probability at the scaled distance is unchanged (paper §5.2):
//! `P_q(x) = 1 − (q·x/β + 1)^−(α−1)`.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Two-parameter stack-distance locality model (`α`, `β`), optionally
/// truncated at the program's data footprint.
///
/// Distances and capacities are denominated in **bytes** throughout this
/// crate (see DESIGN.md §2.1 for the unit convention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Locality {
    /// Shape parameter `α > 1`; larger `α` ⇒ better locality.
    pub alpha: f64,
    /// Scale parameter `β > 1`; smaller `β` ⇒ better locality.
    pub beta: f64,
    /// Total unique data touched by the program, in bytes.  `None` means the
    /// distribution is used untruncated, as in the paper's formulas.
    pub footprint: Option<f64>,
}

impl Locality {
    /// Construct a locality model, validating `α > 1` and `β > 1`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ModelError> {
        if alpha.is_nan() || alpha <= 1.0 || !alpha.is_finite() {
            return Err(ModelError::InvalidLocality {
                param: "alpha",
                value: alpha,
            });
        }
        if beta.is_nan() || beta <= 1.0 || !beta.is_finite() {
            return Err(ModelError::InvalidLocality {
                param: "beta",
                value: beta,
            });
        }
        Ok(Locality {
            alpha,
            beta,
            footprint: None,
        })
    }

    /// Same as [`Locality::new`] but with a footprint cap (bytes): stack
    /// distances beyond the footprint have probability zero and the
    /// distribution is renormalized.
    pub fn with_footprint(alpha: f64, beta: f64, footprint: f64) -> Result<Self, ModelError> {
        let mut l = Self::new(alpha, beta)?;
        if footprint.is_nan() || footprint <= 0.0 || !footprint.is_finite() {
            return Err(ModelError::InvalidSpec(format!(
                "footprint must be positive and finite, got {footprint}"
            )));
        }
        l.footprint = Some(footprint);
        Ok(l)
    }

    /// Raw (untruncated, unscaled) cumulative probability `P(x)` of a
    /// reference having stack distance ≤ `x` (eq. 1).
    pub fn cdf_raw(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        1.0 - (x / self.beta + 1.0).powf(-(self.alpha - 1.0))
    }

    /// Raw probability density `p(x)` (eq. 2).
    pub fn pdf_raw(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        (self.alpha - 1.0) / self.beta * (x / self.beta + 1.0).powf(-self.alpha)
    }

    /// Tail probability `∫_s^∞ p(x) dx = (s/β + 1)^−(α−1)` for a single
    /// process (`q = 1`), honoring the footprint truncation if set.
    pub fn tail(&self, s: f64) -> f64 {
        self.tail_scaled(s, 1)
    }

    /// Tail probability for a program split across `q` processes: the
    /// probability that a per-process reference misses in a store of
    /// capacity `s` bytes, `(q·s/β + 1)^−(α−1)` (paper §5.2 scaling).
    ///
    /// With a footprint `W`, the per-process footprint is `W/q`; the tail is
    /// zero at or beyond it and renormalized below it:
    /// `tail(s) = (raw(s) − raw(W/q)) / (1 − raw(W/q))`.
    pub fn tail_scaled(&self, s: f64, q: u32) -> f64 {
        let q = q.max(1) as f64;
        let raw = |cap: f64| -> f64 { (q * cap / self.beta + 1.0).powf(-(self.alpha - 1.0)) };
        let t = if s <= 0.0 { 1.0 } else { raw(s) };
        match self.footprint {
            None => t,
            Some(w) => {
                let w_per = w / q;
                if s >= w_per {
                    return 0.0;
                }
                let tw = raw(w_per);
                if tw >= 1.0 {
                    // Degenerate: footprint so small everything is distance ~0.
                    return 0.0;
                }
                ((t - tw) / (1.0 - tw)).max(0.0)
            }
        }
    }

    /// Median stack distance: the `x` with `P(x) = 1/2`
    /// (`x = β·(2^{1/(α−1)} − 1)`).  A convenient single-number locality
    /// summary used in reports.
    pub fn median_distance(&self) -> f64 {
        self.beta * (2f64.powf(1.0 / (self.alpha - 1.0)) - 1.0)
    }

    /// Whether the paper's §6 recommendation rules call this "good locality"
    /// (`β < 100`).
    pub fn good_locality(&self) -> bool {
        self.beta < 100.0
    }
}

/// Full workload characterization used by the model: locality (`α`, `β`),
/// memory-reference density `ρ = M/(m+M)` (paper §3), and the rate of
/// barrier operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Human-readable workload name (e.g. `"FFT"`).
    pub name: String,
    /// The stack-distance locality model.
    pub locality: Locality,
    /// Fraction of instructions that reference memory, `ρ ∈ [0, 1]`.
    pub rho: f64,
    /// Barrier operations per instruction (`λ2(b)/S` in the paper's terms).
    /// Typically tiny (one barrier per phase of millions of instructions).
    pub barrier_per_instr: f64,
    /// Fraction of remote fetches that find the block dirty in another
    /// cache/memory (served at the higher "remotely cached" latency of
    /// §5.1).  Not published in the paper; see DESIGN.md substitution 2.
    pub dirty_fraction: f64,
    /// Fraction of memory references that touch data homed at (owned by)
    /// another process — the *sharing* traffic of the SPMD decomposition.
    /// On cluster platforms, cache misses to shared data go remote even
    /// when capacity would keep them local, so the model's remote-level
    /// reach is `capacity tail + sharing_fraction · cache-miss tail`.
    /// The paper folds this effect into its flat §5.3.2 rate adjustment;
    /// we measure it per workload (see `memhier-bench`'s characterization)
    /// and keep the flat adjustment as the residual calibration.
    pub sharing_fraction: f64,
}

impl WorkloadParams {
    /// Construct with validation; barrier rate defaults to `1e-7`/instr and
    /// dirty fraction to `0.2`.
    pub fn new(
        name: impl Into<String>,
        alpha: f64,
        beta: f64,
        rho: f64,
    ) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&rho) || !rho.is_finite() {
            return Err(ModelError::InvalidRho(rho));
        }
        Ok(WorkloadParams {
            name: name.into(),
            locality: Locality::new(alpha, beta)?,
            rho,
            barrier_per_instr: 1e-7,
            dirty_fraction: 0.2,
            sharing_fraction: 0.0,
        })
    }

    /// Builder-style: set the data footprint in bytes.
    pub fn with_footprint(mut self, bytes: f64) -> Self {
        self.locality.footprint = Some(bytes);
        self
    }

    /// Builder-style: set barriers per instruction.
    pub fn with_barrier_rate(mut self, per_instr: f64) -> Self {
        self.barrier_per_instr = per_instr;
        self
    }

    /// Builder-style: set the dirty (remotely-cached) fraction.
    pub fn with_dirty_fraction(mut self, f: f64) -> Self {
        self.dirty_fraction = f;
        self
    }

    /// Builder-style: set the measured sharing fraction.
    pub fn with_sharing_fraction(mut self, f: f64) -> Self {
        self.sharing_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// The paper's §6 classification: is this workload memory bound
    /// (large `ρ`)?  Threshold 0.35 chosen so Radix/EDGE/TPC-C classify as
    /// memory bound and FFT/LU as CPU bound, matching §6's examples.
    pub fn memory_bound(&self) -> bool {
        self.rho >= 0.35
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fft_like() -> Locality {
        Locality::new(1.21, 103.26).unwrap()
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(matches!(
            Locality::new(1.0, 50.0),
            Err(ModelError::InvalidLocality { param: "alpha", .. })
        ));
        assert!(Locality::new(f64::NAN, 50.0).is_err());
    }

    #[test]
    fn rejects_bad_beta() {
        assert!(matches!(
            Locality::new(1.5, 0.9),
            Err(ModelError::InvalidLocality { param: "beta", .. })
        ));
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let l = fft_like();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = (i as f64) * 1000.0;
            let c = l.cdf_raw(x);
            assert!((0.0..1.0).contains(&c) || (c - 1.0).abs() < 1e-12);
            assert!(c >= prev, "CDF must be nondecreasing");
            prev = c;
        }
    }

    #[test]
    fn cdf_plus_tail_is_one() {
        let l = fft_like();
        for &x in &[1.0, 10.0, 1e3, 1e6, 1e9] {
            let s = l.cdf_raw(x) + l.tail(x);
            assert!((s - 1.0).abs() < 1e-12, "P(x) + tail(x) = {s}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Numerically integrate p over [0, X] and compare with P(X).
        let l = fft_like();
        let x_max = 5000.0;
        let n = 200_000;
        let h = x_max / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = i as f64 * h;
            // Trapezoid rule.
            acc += 0.5 * (l.pdf_raw(x0) + l.pdf_raw(x0 + h)) * h;
        }
        let cdf = l.cdf_raw(x_max);
        assert!((acc - cdf).abs() < 1e-3, "integral {acc} vs cdf {cdf}");
    }

    #[test]
    fn tail_decreases_with_capacity() {
        let l = fft_like();
        assert!(l.tail(1024.0) > l.tail(1024.0 * 1024.0));
        assert!(l.tail(0.0) == 1.0);
    }

    #[test]
    fn scaling_reduces_tail() {
        // More processors -> smaller per-process working set -> lower miss
        // tail at the same capacity.
        let l = fft_like();
        let s = 256.0 * 1024.0;
        assert!(l.tail_scaled(s, 4) < l.tail_scaled(s, 1));
        assert!(l.tail_scaled(s, 8) < l.tail_scaled(s, 4));
    }

    #[test]
    fn scaling_matches_paper_formula() {
        let l = fft_like();
        let s = 64.0 * 1024.0;
        let q = 4u32;
        let expect = (q as f64 * s / l.beta + 1.0).powf(-(l.alpha - 1.0));
        assert!((l.tail_scaled(s, q) - expect).abs() < 1e-14);
    }

    #[test]
    fn footprint_truncation_zeroes_far_tail() {
        let l = Locality::with_footprint(1.21, 103.26, 2e6).unwrap();
        assert_eq!(l.tail(2e6), 0.0);
        assert_eq!(l.tail(3e6), 0.0);
        assert!(l.tail(1e3) > 0.0);
    }

    #[test]
    fn footprint_truncation_renormalizes() {
        // Truncated tail must be >= 0 and <= untruncated tail... actually
        // the renormalized tail is smaller than the raw tail because mass
        // beyond W is redistributed nowhere (tail only shrinks).
        let raw = Locality::new(1.21, 103.26).unwrap();
        let tr = Locality::with_footprint(1.21, 103.26, 2e6).unwrap();
        for &s in &[1e2, 1e3, 1e5, 1e6] {
            assert!(tr.tail(s) <= raw.tail(s) + 1e-12);
            assert!(tr.tail(s) >= 0.0);
        }
    }

    #[test]
    fn footprint_scales_per_process() {
        let l = Locality::with_footprint(1.21, 103.26, 8e6).unwrap();
        // At q=4 the per-process footprint is 2e6, so a 3e6-byte store
        // captures everything.
        assert_eq!(l.tail_scaled(3e6, 4), 0.0);
        assert!(l.tail_scaled(3e6, 1) > 0.0);
    }

    #[test]
    fn median_distance_sane() {
        let l = fft_like();
        let m = l.median_distance();
        assert!(
            (l.cdf_raw(m) - 0.5).abs() < 1e-9,
            "cdf at median = {}",
            l.cdf_raw(m)
        );
    }

    #[test]
    fn workload_params_validation() {
        assert!(WorkloadParams::new("x", 1.2, 100.0, 1.5).is_err());
        assert!(WorkloadParams::new("x", 1.2, 100.0, -0.1).is_err());
        let w = WorkloadParams::new("x", 1.2, 100.0, 0.3).unwrap();
        assert_eq!(w.name, "x");
        assert!(!w.memory_bound());
        assert!(WorkloadParams::new("y", 1.2, 100.0, 0.45)
            .unwrap()
            .memory_bound());
    }

    #[test]
    fn paper_table2_classifications() {
        // EDGE: best locality (alpha highest, beta lowest) per §5.2.
        let edge = Locality::new(1.71, 85.03).unwrap();
        let radix = Locality::new(1.14, 120.84).unwrap();
        assert!(edge.good_locality());
        assert!(!radix.good_locality());
        // EDGE's median reuse distance far shorter than Radix's.
        assert!(edge.median_distance() < radix.median_distance());
    }

    #[test]
    fn builders_chain() {
        let w = WorkloadParams::new("z", 1.3, 90.0, 0.31)
            .unwrap()
            .with_footprint(2e6)
            .with_barrier_rate(1e-6)
            .with_dirty_fraction(0.5);
        assert_eq!(w.locality.footprint, Some(2e6));
        assert_eq!(w.barrier_per_instr, 1e-6);
        assert_eq!(w.dirty_fraction, 0.5);
    }
}
