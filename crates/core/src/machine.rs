//! Machine, network, and latency parameter types (paper §2, §5.1).
//!
//! Since the registry redesign, a [`NetworkKind`] is a handle into a
//! string-keyed registry of [`NetworkSpec`] entries rather than a closed
//! enum: the paper's three media (`Ethernet10`, `Ethernet100`, `Atm155`)
//! are built in alongside a multi-rack [`fat-tree`](NetworkKind::FatTree)
//! switch fabric, and downstream crates can [`register`](NetworkKind::register)
//! new media at runtime without touching this crate.  The three paper
//! names keep their exact wire spellings and latency constants, so every
//! pre-registry scenario, fixture, and request body parses unchanged.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// NUMA geometry of one SMP machine: `domains` memory controllers, with
/// an extra `remote_penalty_cycles` charged when a processor reaches a
/// domain other than its own.  `domains == 1` is flat (UMA) and behaves
/// exactly like a machine with no NUMA spec at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumaSpec {
    /// Number of NUMA domains (memory controllers) in the machine.
    pub domains: u32,
    /// Extra cycles for a memory access served by a remote domain.
    pub remote_penalty_cycles: f64,
}

/// One machine of the (homogeneous) cluster: an `n`-processor SMP when
/// `n_procs > 1`, a uniprocessor workstation when `n_procs == 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Processors per machine (`n` in the paper; 1, 2 or 4 in its studies).
    pub n_procs: u32,
    /// Per-processor cache capacity in bytes (`s1`).
    pub cache_bytes: u64,
    /// Main-memory capacity in bytes (`s2` contribution of one machine).
    pub memory_bytes: u64,
    /// Processor speed `S` in instructions per second (clock rate at the
    /// paper's 1 instruction/cycle; 200 MHz in all its experiments).
    pub clock_hz: f64,
    /// Optional NUMA geometry; `None` is a flat (UMA) machine.
    pub numa: Option<NumaSpec>,
}

impl MachineSpec {
    /// Convenience constructor with sizes in the paper's customary units.
    ///
    /// ```
    /// use memhier_core::machine::MachineSpec;
    /// let m = MachineSpec::new(2, 256, 64, 200.0); // 2P, 256 KB, 64 MB, 200 MHz
    /// assert_eq!(m.cache_bytes, 256 * 1024);
    /// ```
    pub fn new(n_procs: u32, cache_kb: u64, memory_mb: u64, clock_mhz: f64) -> Self {
        MachineSpec {
            n_procs,
            cache_bytes: cache_kb * 1024,
            memory_bytes: memory_mb * 1024 * 1024,
            clock_hz: clock_mhz * 1e6,
            numa: None,
        }
    }

    /// Attach a NUMA geometry: `domains` memory controllers with
    /// `remote_penalty_cycles` extra latency for cross-domain accesses.
    pub fn with_numa(mut self, domains: u32, remote_penalty_cycles: f64) -> Self {
        self.numa = Some(NumaSpec {
            domains,
            remote_penalty_cycles,
        });
        self
    }

    /// Effective NUMA domain count (1 for flat machines).
    pub fn numa_domains(&self) -> u32 {
        self.numa.map(|n| n.domains.max(1)).unwrap_or(1)
    }

    /// Validate structural sanity.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.n_procs == 0 {
            return Err(ModelError::InvalidSpec("machine with 0 processors".into()));
        }
        if self.cache_bytes == 0 || self.memory_bytes == 0 {
            return Err(ModelError::InvalidSpec(
                "zero cache or memory capacity".into(),
            ));
        }
        if self.cache_bytes >= self.memory_bytes {
            return Err(ModelError::InvalidSpec(format!(
                "cache ({}) must be smaller than memory ({})",
                self.cache_bytes, self.memory_bytes
            )));
        }
        if self.clock_hz.is_nan() || self.clock_hz <= 0.0 {
            return Err(ModelError::InvalidSpec("non-positive clock".into()));
        }
        if let Some(numa) = self.numa {
            if numa.domains == 0 {
                return Err(ModelError::InvalidSpec(
                    "NUMA machine with 0 domains".into(),
                ));
            }
            if !self.n_procs.is_multiple_of(numa.domains) {
                return Err(ModelError::InvalidSpec(format!(
                    "NUMA domains ({}) must divide the processor count ({})",
                    numa.domains, self.n_procs
                )));
            }
            if numa.remote_penalty_cycles.is_nan() || numa.remote_penalty_cycles < 0.0 {
                return Err(ModelError::InvalidSpec(
                    "negative NUMA remote penalty".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Hand-written so the optional `numa` key is *omitted* when absent:
/// every pre-NUMA spec (golden fixtures, cached request bodies) keeps
/// its exact bytes, and a spec without the key parses as a flat machine.
impl serde::Serialize for MachineSpec {
    fn to_json_value(&self) -> serde::__private::Value {
        let mut fields = vec![
            ("n_procs".to_string(), self.n_procs.to_json_value()),
            ("cache_bytes".to_string(), self.cache_bytes.to_json_value()),
            (
                "memory_bytes".to_string(),
                self.memory_bytes.to_json_value(),
            ),
            ("clock_hz".to_string(), self.clock_hz.to_json_value()),
        ];
        if let Some(numa) = &self.numa {
            fields.push(("numa".to_string(), numa.to_json_value()));
        }
        serde::__private::Value::Object(fields)
    }
}

impl serde::Deserialize for MachineSpec {
    fn from_json_value(v: serde::__private::Value) -> Result<Self, String> {
        let serde::__private::Value::Object(fields) = v else {
            return Err(format!("expected object for MachineSpec, got {v:?}"));
        };
        let take = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or(serde::__private::Value::Null)
        };
        Ok(MachineSpec {
            n_procs: u32::from_json_value(take("n_procs"))
                .map_err(|e| format!("MachineSpec.n_procs: {e}"))?,
            cache_bytes: u64::from_json_value(take("cache_bytes"))
                .map_err(|e| format!("MachineSpec.cache_bytes: {e}"))?,
            memory_bytes: u64::from_json_value(take("memory_bytes"))
                .map_err(|e| format!("MachineSpec.memory_bytes: {e}"))?,
            clock_hz: f64::from_json_value(take("clock_hz"))
                .map_err(|e| format!("MachineSpec.clock_hz: {e}"))?,
            numa: Option::<NumaSpec>::from_json_value(take("numa"))
                .map_err(|e| format!("MachineSpec.numa: {e}"))?,
        })
    }
}

/// Topology class of a cluster network: a bus is one shared server; a switch
/// provides independent paths that contend only at the destination port; a
/// fat tree is switch-like within a rack but funnels rack-crossing traffic
/// through (possibly oversubscribed) uplinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkTopology {
    /// Shared medium: every transfer occupies the single network resource.
    Bus,
    /// Crossbar-like switch: transfers contend only per destination port.
    Switch,
    /// Multi-rack fat tree: per-port contention within a rack plus a shared
    /// uplink per rack for transfers that cross racks.
    FatTree,
}

/// Registry entry for one network medium: its wire spellings, its §5.1-style
/// latency terms, and (for fat trees) its rack geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Canonical registry key and wire spelling (`"Ethernet10"`, ...).
    pub key: &'static str,
    /// Short CLI/optimizer spelling (`"eth10"`, ...).
    pub wire: &'static str,
    /// Additional accepted parse spellings (case-insensitive).
    pub aliases: &'static [&'static str],
    /// Human-readable display string (`"10Mb bus"`).
    pub display: &'static str,
    /// One-line description for registry listings.
    pub description: &'static str,
    /// Nominal bandwidth in megabits per second.
    pub mbps: f64,
    /// Contention model class.
    pub topology: NetworkTopology,
    /// COW remote-node fetch cost in cycles (clean copy at the home).
    pub remote_node_cow: f64,
    /// COW remotely-cached (dirty) fetch cost in cycles.
    pub remote_cached_cow: f64,
    /// CLUMP variant of [`remote_node_cow`](Self::remote_node_cow).
    pub remote_node_clump: f64,
    /// CLUMP variant of [`remote_cached_cow`](Self::remote_cached_cow).
    pub remote_cached_clump: f64,
    /// Fat-tree geometry: machines per rack (0 for single-tier networks).
    pub machines_per_rack: u32,
    /// Extra cycles for a transfer that crosses racks.
    pub rack_crossing_cycles: f64,
    /// Uplink oversubscription ratio (1.0 = full bisection bandwidth).
    pub oversubscription: f64,
}

/// The built-in media: the paper's three (§5.1 latencies exactly) plus the
/// gigabit fat tree.  Order matters — the first three indices are the
/// `LatencyParams` array indices the paper tables use.
const BUILTIN_NETWORKS: [NetworkSpec; 4] = [
    NetworkSpec {
        key: "Ethernet10",
        wire: "eth10",
        aliases: &["ethernet10", "eth10", "10mb"],
        display: "10Mb bus",
        description:
            "10 Mb/s shared Ethernet (paper Network 2): one bus every transfer serializes on",
        mbps: 10.0,
        topology: NetworkTopology::Bus,
        remote_node_cow: 45075.0,
        remote_cached_cow: 90150.0,
        remote_node_clump: 45078.0,
        remote_cached_clump: 90153.0,
        machines_per_rack: 0,
        rack_crossing_cycles: 0.0,
        oversubscription: 1.0,
    },
    NetworkSpec {
        key: "Ethernet100",
        wire: "eth100",
        aliases: &["ethernet100", "eth100", "100mb"],
        display: "100Mb bus",
        description:
            "100 Mb/s shared Fast Ethernet (paper Network 2): a faster bus, still serialized",
        mbps: 100.0,
        topology: NetworkTopology::Bus,
        remote_node_cow: 4575.0,
        remote_cached_cow: 9150.0,
        remote_node_clump: 4578.0,
        remote_cached_clump: 9153.0,
        machines_per_rack: 0,
        rack_crossing_cycles: 0.0,
        oversubscription: 1.0,
    },
    NetworkSpec {
        key: "Atm155",
        wire: "atm",
        aliases: &["atm155", "atm"],
        display: "155Mb switch",
        description:
            "155 Mb/s ATM switch (paper Network 3): transfers contend only per destination port",
        mbps: 155.0,
        topology: NetworkTopology::Switch,
        remote_node_cow: 3275.0,
        remote_cached_cow: 6550.0,
        remote_node_clump: 3278.0,
        remote_cached_clump: 6553.0,
        machines_per_rack: 0,
        rack_crossing_cycles: 0.0,
        oversubscription: 1.0,
    },
    NetworkSpec {
        key: "FatTree",
        wire: "fattree",
        aliases: &["fattree", "fat-tree", "fattree1g"],
        display: "1Gb fat-tree",
        description: "gigabit multi-rack fat tree: per-port switching within a 4-machine rack, \
                      2:1-oversubscribed uplinks and +400 cycles for rack-crossing transfers",
        mbps: 1000.0,
        topology: NetworkTopology::FatTree,
        remote_node_cow: 1475.0,
        remote_cached_cow: 2950.0,
        remote_node_clump: 1478.0,
        remote_cached_clump: 2953.0,
        machines_per_rack: 4,
        rack_crossing_cycles: 400.0,
        oversubscription: 2.0,
    },
];

/// Runtime-registered media beyond the built-ins (leaked so handles stay
/// `Copy` and `'static`).
fn extra_networks() -> &'static RwLock<Vec<&'static NetworkSpec>> {
    static EXTRA: OnceLock<RwLock<Vec<&'static NetworkSpec>>> = OnceLock::new();
    EXTRA.get_or_init(|| RwLock::new(Vec::new()))
}

/// Physical medium of Networks 2/3 (the cluster network): a registry-backed
/// handle.  The paper's three media are associated constants, so existing
/// call sites (`NetworkKind::Atm155`, ...) read unchanged; new media come
/// from [`parse`](Self::parse) or [`register`](Self::register).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetworkKind(u16);

#[allow(non_upper_case_globals)]
impl NetworkKind {
    /// 10 Mb/s Ethernet — a bus network.
    pub const Ethernet10: NetworkKind = NetworkKind(0);
    /// 100 Mb/s Fast Ethernet — a bus network.
    pub const Ethernet100: NetworkKind = NetworkKind(1);
    /// 155 Mb/s ATM — a switch network.
    pub const Atm155: NetworkKind = NetworkKind(2);
    /// 1 Gb/s multi-rack fat tree — the post-paper switch fabric.
    pub const FatTree: NetworkKind = NetworkKind(3);

    /// The three network kinds the paper evaluates, in bandwidth order.
    /// (Registry media beyond the paper's are enumerated by
    /// [`registered`](Self::registered).)
    pub const ALL: [NetworkKind; 3] = [
        NetworkKind::Ethernet10,
        NetworkKind::Ethernet100,
        NetworkKind::Atm155,
    ];

    /// The registry entry behind this handle.
    pub fn spec(&self) -> &'static NetworkSpec {
        let i = self.0 as usize;
        if i < BUILTIN_NETWORKS.len() {
            return &BUILTIN_NETWORKS[i];
        }
        extra_networks()
            .read()
            .expect("network registry poisoned")
            .get(i - BUILTIN_NETWORKS.len())
            .copied()
            .expect("dangling NetworkKind handle")
    }

    /// Canonical registry key (also the JSON wire spelling).
    pub fn key(&self) -> &'static str {
        self.spec().key
    }

    /// Index into the paper's §5.1 latency arrays, when this is one of the
    /// three paper media.
    pub fn paper_index(&self) -> Option<usize> {
        (self.0 < 3).then_some(self.0 as usize)
    }

    /// The topology class of this medium (paper §2: Ethernet ⇒ bus,
    /// ATM ⇒ switch; fat trees are their own class).
    pub fn topology(&self) -> NetworkTopology {
        self.spec().topology
    }

    /// Nominal bandwidth in megabits per second.
    pub fn mbps(&self) -> f64 {
        self.spec().mbps
    }

    /// Which rack `node` lives in (always rack 0 on single-tier networks).
    pub fn rack_of(&self, node: usize) -> usize {
        match self.spec().machines_per_rack {
            0 => 0,
            per_rack => node / per_rack as usize,
        }
    }

    /// Resolve a medium by key, wire spelling, or alias (case-insensitive).
    pub fn parse(name: &str) -> Option<NetworkKind> {
        let lower = name.to_ascii_lowercase();
        let matches = |spec: &NetworkSpec| {
            spec.key.eq_ignore_ascii_case(&lower)
                || spec.wire.eq_ignore_ascii_case(&lower)
                || spec.aliases.iter().any(|a| a.eq_ignore_ascii_case(&lower))
        };
        for (i, spec) in BUILTIN_NETWORKS.iter().enumerate() {
            if matches(spec) {
                return Some(NetworkKind(i as u16));
            }
        }
        let extras = extra_networks().read().expect("network registry poisoned");
        for (i, spec) in extras.iter().enumerate() {
            if matches(spec) {
                return Some(NetworkKind((BUILTIN_NETWORKS.len() + i) as u16));
            }
        }
        None
    }

    /// Every registered medium, built-ins first, in registration order.
    pub fn registered() -> Vec<NetworkKind> {
        let extras = extra_networks().read().expect("network registry poisoned");
        (0..BUILTIN_NETWORKS.len() + extras.len())
            .map(|i| NetworkKind(i as u16))
            .collect()
    }

    /// Canonical keys of every registered medium (for error messages and
    /// registry listings).
    pub fn known_keys() -> Vec<&'static str> {
        NetworkKind::registered().iter().map(|n| n.key()).collect()
    }

    /// Register a new medium at runtime.  The spec is leaked (handles are
    /// `Copy + 'static`); duplicate keys/aliases are rejected.
    pub fn register(spec: NetworkSpec) -> Result<NetworkKind, ModelError> {
        if NetworkKind::parse(spec.key).is_some()
            || spec.aliases.iter().any(|a| NetworkKind::parse(a).is_some())
        {
            return Err(ModelError::InvalidSpec(format!(
                "network `{}` is already registered",
                spec.key
            )));
        }
        let mut extras = extra_networks().write().expect("network registry poisoned");
        let handle = NetworkKind((BUILTIN_NETWORKS.len() + extras.len()) as u16);
        extras.push(Box::leak(Box::new(spec)));
        Ok(handle)
    }
}

/// Debug prints the registry key, matching the old enum's derived output
/// for the paper trio (`Ethernet10`, not `NetworkKind(0)`).
impl fmt::Debug for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().display)
    }
}

/// Serializes as the canonical registry key — for the paper trio these are
/// the exact unit-variant spellings the old enum emitted
/// (`"Ethernet10"` / `"Ethernet100"` / `"Atm155"`), so pre-registry wire
/// bytes are unchanged.
impl serde::Serialize for NetworkKind {
    fn to_json_value(&self) -> serde::__private::Value {
        serde::__private::Value::String(self.key().to_string())
    }
}

impl serde::Deserialize for NetworkKind {
    fn from_json_value(v: serde::__private::Value) -> Result<Self, String> {
        let name = v
            .as_str()
            .ok_or_else(|| format!("expected string for NetworkKind, got {v:?}"))?;
        NetworkKind::parse(name).ok_or_else(|| {
            format!(
                "unknown NetworkKind variant `{name}` (known: {})",
                NetworkKind::known_keys().join("|")
            )
        })
    }
}

/// The paper's §5.1 latency table, in processor cycles.
///
/// All values are *incremental* costs charged when a reference must descend
/// to the given level, exactly as listed in the paper.  The three `[f64; 3]`
/// arrays are indexed by the paper trio (Eth10/Eth100/ATM) and keep their
/// published values; every other registered medium carries its own latency
/// terms in its [`NetworkSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// One instruction execution: 1 cycle.
    pub instr: f64,
    /// Cache hit: 1 cycle.
    pub cache_hit: f64,
    /// Cache miss serviced by local memory: 50 cycles.
    pub local_memory: f64,
    /// Cache miss serviced by another processor's cache within an SMP
    /// (snoop hit): 15 cycles.
    pub smp_remote_cache: f64,
    /// Memory miss serviced by the local disk: 2000 cycles.
    pub local_disk: f64,
    /// Cache miss serviced by a remote node's memory, per paper network
    /// (COW: 45075 / 4575 / 3275 cycles for Eth10 / Eth100 / ATM).
    pub remote_node_cow: [f64; 3],
    /// Cache miss serviced by remotely *cached* (dirty) data, per paper
    /// network kind (COW: 90150 / 9150 / 6550).
    pub remote_cached_cow: [f64; 3],
    /// CLUMP variants of the two remote costs (each +3 cycles for the
    /// intra-SMP hop at the home node: 45078/4578/3278 and 90153/9153/6553).
    pub remote_node_clump: [f64; 3],
    /// See [`LatencyParams::remote_node_clump`].
    pub remote_cached_clump: [f64; 3],
}

impl LatencyParams {
    /// The exact §5.1 parameter set.
    pub fn paper() -> Self {
        LatencyParams {
            instr: 1.0,
            cache_hit: 1.0,
            local_memory: 50.0,
            smp_remote_cache: 15.0,
            local_disk: 2000.0,
            remote_node_cow: [45075.0, 4575.0, 3275.0],
            remote_cached_cow: [90150.0, 9150.0, 6550.0],
            remote_node_clump: [45078.0, 4578.0, 3278.0],
            remote_cached_clump: [90153.0, 9153.0, 6553.0],
        }
    }

    /// Remote-node fetch cost over `net` for a cluster of workstations.
    pub fn remote_node(&self, net: NetworkKind, clump: bool) -> f64 {
        match net.paper_index() {
            Some(i) if clump => self.remote_node_clump[i],
            Some(i) => self.remote_node_cow[i],
            None if clump => net.spec().remote_node_clump,
            None => net.spec().remote_node_cow,
        }
    }

    /// Remotely-cached (dirty) fetch cost over `net`.
    pub fn remote_cached(&self, net: NetworkKind, clump: bool) -> f64 {
        match net.paper_index() {
            Some(i) if clump => self.remote_cached_clump[i],
            Some(i) => self.remote_cached_cow[i],
            None if clump => net.spec().remote_cached_clump,
            None => net.spec().remote_cached_cow,
        }
    }

    /// Blended remote-access service time: `(1−f)·remote_node +
    /// f·remote_cached` where `f` is the workload's dirty fraction.
    pub fn remote_service(&self, net: NetworkKind, clump: bool, dirty_fraction: f64) -> f64 {
        let f = dirty_fraction.clamp(0.0, 1.0);
        (1.0 - f) * self.remote_node(net, clump) + f * self.remote_cached(net, clump)
    }
}

impl Default for LatencyParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_constructor_units() {
        let m = MachineSpec::new(4, 512, 128, 200.0);
        assert_eq!(m.cache_bytes, 512 * 1024);
        assert_eq!(m.memory_bytes, 128 * 1024 * 1024);
        assert_eq!(m.clock_hz, 2e8);
        assert_eq!(m.numa, None);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn machine_validation_catches_errors() {
        let mut m = MachineSpec::new(2, 256, 64, 200.0);
        m.n_procs = 0;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::new(2, 256, 64, 200.0);
        m.cache_bytes = m.memory_bytes;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::new(2, 256, 64, 200.0);
        m.clock_hz = 0.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn numa_validation() {
        // 4 procs over 2 domains is fine; 3 domains don't divide 4 procs.
        assert!(MachineSpec::new(4, 256, 128, 200.0)
            .with_numa(2, 40.0)
            .validate()
            .is_ok());
        assert!(MachineSpec::new(4, 256, 128, 200.0)
            .with_numa(3, 40.0)
            .validate()
            .is_err());
        assert!(MachineSpec::new(4, 256, 128, 200.0)
            .with_numa(0, 40.0)
            .validate()
            .is_err());
        assert!(MachineSpec::new(4, 256, 128, 200.0)
            .with_numa(2, -1.0)
            .validate()
            .is_err());
        assert_eq!(MachineSpec::new(4, 256, 128, 200.0).numa_domains(), 1);
        assert_eq!(
            MachineSpec::new(4, 256, 128, 200.0)
                .with_numa(2, 40.0)
                .numa_domains(),
            2
        );
    }

    #[test]
    fn machine_serde_omits_absent_numa() {
        // Flat machines keep the exact pre-NUMA wire bytes.
        let m = MachineSpec::new(2, 256, 64, 200.0);
        let v = m.to_json_value();
        assert!(v.get("numa").is_none(), "no numa key for flat machines");
        assert_eq!(MachineSpec::from_json_value(v).unwrap(), m);

        let n = MachineSpec::new(4, 256, 128, 200.0).with_numa(2, 40.0);
        let v = n.to_json_value();
        assert_eq!(v["numa"]["domains"].as_u64(), Some(2));
        assert_eq!(MachineSpec::from_json_value(v).unwrap(), n);
    }

    #[test]
    fn network_topology_classes() {
        assert_eq!(NetworkKind::Ethernet10.topology(), NetworkTopology::Bus);
        assert_eq!(NetworkKind::Ethernet100.topology(), NetworkTopology::Bus);
        assert_eq!(NetworkKind::Atm155.topology(), NetworkTopology::Switch);
        assert_eq!(NetworkKind::FatTree.topology(), NetworkTopology::FatTree);
    }

    #[test]
    fn network_bandwidth_order() {
        let b: Vec<f64> = NetworkKind::ALL.iter().map(|n| n.mbps()).collect();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(NetworkKind::FatTree.mbps(), 1000.0);
    }

    #[test]
    fn registry_parse_and_keys() {
        assert_eq!(
            NetworkKind::parse("Ethernet10"),
            Some(NetworkKind::Ethernet10)
        );
        assert_eq!(NetworkKind::parse("eth100"), Some(NetworkKind::Ethernet100));
        assert_eq!(NetworkKind::parse("ATM155"), Some(NetworkKind::Atm155));
        assert_eq!(NetworkKind::parse("fat-tree"), Some(NetworkKind::FatTree));
        assert_eq!(NetworkKind::parse("infiniband"), None);
        assert!(NetworkKind::known_keys().starts_with(&[
            "Ethernet10",
            "Ethernet100",
            "Atm155",
            "FatTree"
        ]));
    }

    #[test]
    fn fat_tree_rack_geometry() {
        let ft = NetworkKind::FatTree;
        assert_eq!(ft.spec().machines_per_rack, 4);
        assert_eq!(ft.rack_of(0), 0);
        assert_eq!(ft.rack_of(3), 0);
        assert_eq!(ft.rack_of(4), 1);
        assert_eq!(ft.rack_of(11), 2);
        // Single-tier media are one big rack.
        assert_eq!(NetworkKind::Atm155.rack_of(7), 0);
    }

    #[test]
    fn network_serde_preserves_paper_spellings() {
        use serde::__private::Value;
        for (kind, key) in [
            (NetworkKind::Ethernet10, "Ethernet10"),
            (NetworkKind::Ethernet100, "Ethernet100"),
            (NetworkKind::Atm155, "Atm155"),
            (NetworkKind::FatTree, "FatTree"),
        ] {
            assert_eq!(kind.to_json_value(), Value::String(key.to_string()));
            assert_eq!(
                NetworkKind::from_json_value(Value::String(key.to_string())),
                Ok(kind)
            );
        }
        assert!(NetworkKind::from_json_value(Value::String("wat".into()))
            .unwrap_err()
            .contains("Ethernet10|Ethernet100|Atm155|FatTree"));
    }

    #[test]
    fn paper_latencies_exact() {
        let l = LatencyParams::paper();
        assert_eq!(l.local_memory, 50.0);
        assert_eq!(l.smp_remote_cache, 15.0);
        assert_eq!(l.local_disk, 2000.0);
        assert_eq!(l.remote_node(NetworkKind::Ethernet10, false), 45075.0);
        assert_eq!(l.remote_node(NetworkKind::Ethernet100, false), 4575.0);
        assert_eq!(l.remote_node(NetworkKind::Atm155, false), 3275.0);
        assert_eq!(l.remote_cached(NetworkKind::Ethernet10, false), 90150.0);
        assert_eq!(l.remote_node(NetworkKind::Ethernet10, true), 45078.0);
        assert_eq!(l.remote_cached(NetworkKind::Atm155, true), 6553.0);
    }

    #[test]
    fn fat_tree_latencies_come_from_the_registry() {
        let l = LatencyParams::paper();
        assert_eq!(l.remote_node(NetworkKind::FatTree, false), 1475.0);
        assert_eq!(l.remote_cached(NetworkKind::FatTree, false), 2950.0);
        assert_eq!(l.remote_node(NetworkKind::FatTree, true), 1478.0);
        assert_eq!(l.remote_cached(NetworkKind::FatTree, true), 2953.0);
        // Dirty data costs 2x clean, the paper's COW ratio.
        assert_eq!(
            l.remote_cached(NetworkKind::FatTree, false),
            2.0 * l.remote_node(NetworkKind::FatTree, false)
        );
    }

    #[test]
    fn remote_service_blend() {
        let l = LatencyParams::paper();
        let s = l.remote_service(NetworkKind::Ethernet100, false, 0.0);
        assert_eq!(s, 4575.0);
        let s = l.remote_service(NetworkKind::Ethernet100, false, 1.0);
        assert_eq!(s, 9150.0);
        let s = l.remote_service(NetworkKind::Ethernet100, false, 0.5);
        assert!((s - (4575.0 + 9150.0) / 2.0).abs() < 1e-12);
        // Clamps out-of-range fractions.
        assert_eq!(
            l.remote_service(NetworkKind::Ethernet100, false, -3.0),
            4575.0
        );
    }

    #[test]
    fn runtime_registration_extends_the_universe() {
        // Registering a new medium yields a working handle without
        // touching the built-ins; duplicate keys are rejected.
        static MYRINET: NetworkSpec = NetworkSpec {
            key: "TestMyrinet",
            wire: "test-myrinet",
            aliases: &[],
            display: "1.28Gb Myrinet",
            description: "test medium",
            mbps: 1280.0,
            topology: NetworkTopology::Switch,
            remote_node_cow: 1200.0,
            remote_cached_cow: 2400.0,
            remote_node_clump: 1203.0,
            remote_cached_clump: 2403.0,
            machines_per_rack: 0,
            rack_crossing_cycles: 0.0,
            oversubscription: 1.0,
        };
        let k = NetworkKind::register(MYRINET.clone()).expect("fresh key registers");
        assert_eq!(NetworkKind::parse("test-myrinet"), Some(k));
        assert_eq!(k.mbps(), 1280.0);
        assert_eq!(LatencyParams::paper().remote_node(k, false), 1200.0);
        assert!(NetworkKind::register(MYRINET.clone()).is_err(), "dup key");
        assert!(NetworkKind::registered().contains(&k));
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(NetworkKind::Ethernet10.to_string(), "10Mb bus");
        assert_eq!(NetworkKind::Atm155.to_string(), "155Mb switch");
        assert_eq!(NetworkKind::FatTree.to_string(), "1Gb fat-tree");
        assert_eq!(format!("{:?}", NetworkKind::Ethernet100), "Ethernet100");
    }
}
