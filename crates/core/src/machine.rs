//! Machine, network, and latency parameter types (paper §2, §5.1).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One machine of the (homogeneous) cluster: an `n`-processor SMP when
/// `n_procs > 1`, a uniprocessor workstation when `n_procs == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Processors per machine (`n` in the paper; 1, 2 or 4 in its studies).
    pub n_procs: u32,
    /// Per-processor cache capacity in bytes (`s1`).
    pub cache_bytes: u64,
    /// Main-memory capacity in bytes (`s2` contribution of one machine).
    pub memory_bytes: u64,
    /// Processor speed `S` in instructions per second (clock rate at the
    /// paper's 1 instruction/cycle; 200 MHz in all its experiments).
    pub clock_hz: f64,
}

impl MachineSpec {
    /// Convenience constructor with sizes in the paper's customary units.
    ///
    /// ```
    /// use memhier_core::machine::MachineSpec;
    /// let m = MachineSpec::new(2, 256, 64, 200.0); // 2P, 256 KB, 64 MB, 200 MHz
    /// assert_eq!(m.cache_bytes, 256 * 1024);
    /// ```
    pub fn new(n_procs: u32, cache_kb: u64, memory_mb: u64, clock_mhz: f64) -> Self {
        MachineSpec {
            n_procs,
            cache_bytes: cache_kb * 1024,
            memory_bytes: memory_mb * 1024 * 1024,
            clock_hz: clock_mhz * 1e6,
        }
    }

    /// Validate structural sanity.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.n_procs == 0 {
            return Err(ModelError::InvalidSpec("machine with 0 processors".into()));
        }
        if self.cache_bytes == 0 || self.memory_bytes == 0 {
            return Err(ModelError::InvalidSpec(
                "zero cache or memory capacity".into(),
            ));
        }
        if self.cache_bytes >= self.memory_bytes {
            return Err(ModelError::InvalidSpec(format!(
                "cache ({}) must be smaller than memory ({})",
                self.cache_bytes, self.memory_bytes
            )));
        }
        if self.clock_hz.is_nan() || self.clock_hz <= 0.0 {
            return Err(ModelError::InvalidSpec("non-positive clock".into()));
        }
        Ok(())
    }
}

/// Physical medium of Networks 2/3 (the cluster network).  The paper studies
/// two bus networks (Ethernet) and one switch network (ATM).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// 10 Mb/s Ethernet — a bus network.
    Ethernet10,
    /// 100 Mb/s Fast Ethernet — a bus network.
    Ethernet100,
    /// 155 Mb/s ATM — a switch network.
    Atm155,
}

/// Topology class of a cluster network: a bus is one shared server; a switch
/// provides independent paths that contend only at the destination port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkTopology {
    /// Shared medium: every transfer occupies the single network resource.
    Bus,
    /// Crossbar-like switch: transfers contend only per destination port.
    Switch,
}

impl NetworkKind {
    /// The topology class of this medium (paper §2: Ethernet ⇒ bus,
    /// ATM ⇒ switch).
    pub fn topology(&self) -> NetworkTopology {
        match self {
            NetworkKind::Ethernet10 | NetworkKind::Ethernet100 => NetworkTopology::Bus,
            NetworkKind::Atm155 => NetworkTopology::Switch,
        }
    }

    /// Nominal bandwidth in megabits per second.
    pub fn mbps(&self) -> f64 {
        match self {
            NetworkKind::Ethernet10 => 10.0,
            NetworkKind::Ethernet100 => 100.0,
            NetworkKind::Atm155 => 155.0,
        }
    }

    /// All network kinds the paper evaluates, in bandwidth order.
    pub const ALL: [NetworkKind; 3] = [
        NetworkKind::Ethernet10,
        NetworkKind::Ethernet100,
        NetworkKind::Atm155,
    ];
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkKind::Ethernet10 => write!(f, "10Mb bus"),
            NetworkKind::Ethernet100 => write!(f, "100Mb bus"),
            NetworkKind::Atm155 => write!(f, "155Mb switch"),
        }
    }
}

/// The paper's §5.1 latency table, in processor cycles.
///
/// All values are *incremental* costs charged when a reference must descend
/// to the given level, exactly as listed in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// One instruction execution: 1 cycle.
    pub instr: f64,
    /// Cache hit: 1 cycle.
    pub cache_hit: f64,
    /// Cache miss serviced by local memory: 50 cycles.
    pub local_memory: f64,
    /// Cache miss serviced by another processor's cache within an SMP
    /// (snoop hit): 15 cycles.
    pub smp_remote_cache: f64,
    /// Memory miss serviced by the local disk: 2000 cycles.
    pub local_disk: f64,
    /// Cache miss serviced by a remote node's memory, per network kind
    /// (COW: 45075 / 4575 / 3275 cycles for Eth10 / Eth100 / ATM).
    pub remote_node_cow: [f64; 3],
    /// Cache miss serviced by remotely *cached* (dirty) data, per network
    /// kind (COW: 90150 / 9150 / 6550).
    pub remote_cached_cow: [f64; 3],
    /// CLUMP variants of the two remote costs (each +3 cycles for the
    /// intra-SMP hop at the home node: 45078/4578/3278 and 90153/9153/6553).
    pub remote_node_clump: [f64; 3],
    /// See [`LatencyParams::remote_node_clump`].
    pub remote_cached_clump: [f64; 3],
}

impl LatencyParams {
    /// The exact §5.1 parameter set.
    pub fn paper() -> Self {
        LatencyParams {
            instr: 1.0,
            cache_hit: 1.0,
            local_memory: 50.0,
            smp_remote_cache: 15.0,
            local_disk: 2000.0,
            remote_node_cow: [45075.0, 4575.0, 3275.0],
            remote_cached_cow: [90150.0, 9150.0, 6550.0],
            remote_node_clump: [45078.0, 4578.0, 3278.0],
            remote_cached_clump: [90153.0, 9153.0, 6553.0],
        }
    }

    fn net_index(net: NetworkKind) -> usize {
        match net {
            NetworkKind::Ethernet10 => 0,
            NetworkKind::Ethernet100 => 1,
            NetworkKind::Atm155 => 2,
        }
    }

    /// Remote-node fetch cost over `net` for a cluster of workstations.
    pub fn remote_node(&self, net: NetworkKind, clump: bool) -> f64 {
        let i = Self::net_index(net);
        if clump {
            self.remote_node_clump[i]
        } else {
            self.remote_node_cow[i]
        }
    }

    /// Remotely-cached (dirty) fetch cost over `net`.
    pub fn remote_cached(&self, net: NetworkKind, clump: bool) -> f64 {
        let i = Self::net_index(net);
        if clump {
            self.remote_cached_clump[i]
        } else {
            self.remote_cached_cow[i]
        }
    }

    /// Blended remote-access service time: `(1−f)·remote_node +
    /// f·remote_cached` where `f` is the workload's dirty fraction.
    pub fn remote_service(&self, net: NetworkKind, clump: bool, dirty_fraction: f64) -> f64 {
        let f = dirty_fraction.clamp(0.0, 1.0);
        (1.0 - f) * self.remote_node(net, clump) + f * self.remote_cached(net, clump)
    }
}

impl Default for LatencyParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_constructor_units() {
        let m = MachineSpec::new(4, 512, 128, 200.0);
        assert_eq!(m.cache_bytes, 512 * 1024);
        assert_eq!(m.memory_bytes, 128 * 1024 * 1024);
        assert_eq!(m.clock_hz, 2e8);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn machine_validation_catches_errors() {
        let mut m = MachineSpec::new(2, 256, 64, 200.0);
        m.n_procs = 0;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::new(2, 256, 64, 200.0);
        m.cache_bytes = m.memory_bytes;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::new(2, 256, 64, 200.0);
        m.clock_hz = 0.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn network_topology_classes() {
        assert_eq!(NetworkKind::Ethernet10.topology(), NetworkTopology::Bus);
        assert_eq!(NetworkKind::Ethernet100.topology(), NetworkTopology::Bus);
        assert_eq!(NetworkKind::Atm155.topology(), NetworkTopology::Switch);
    }

    #[test]
    fn network_bandwidth_order() {
        let b: Vec<f64> = NetworkKind::ALL.iter().map(|n| n.mbps()).collect();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_latencies_exact() {
        let l = LatencyParams::paper();
        assert_eq!(l.local_memory, 50.0);
        assert_eq!(l.smp_remote_cache, 15.0);
        assert_eq!(l.local_disk, 2000.0);
        assert_eq!(l.remote_node(NetworkKind::Ethernet10, false), 45075.0);
        assert_eq!(l.remote_node(NetworkKind::Ethernet100, false), 4575.0);
        assert_eq!(l.remote_node(NetworkKind::Atm155, false), 3275.0);
        assert_eq!(l.remote_cached(NetworkKind::Ethernet10, false), 90150.0);
        assert_eq!(l.remote_node(NetworkKind::Ethernet10, true), 45078.0);
        assert_eq!(l.remote_cached(NetworkKind::Atm155, true), 6553.0);
    }

    #[test]
    fn remote_service_blend() {
        let l = LatencyParams::paper();
        let s = l.remote_service(NetworkKind::Ethernet100, false, 0.0);
        assert_eq!(s, 4575.0);
        let s = l.remote_service(NetworkKind::Ethernet100, false, 1.0);
        assert_eq!(s, 9150.0);
        let s = l.remote_service(NetworkKind::Ethernet100, false, 0.5);
        assert!((s - (4575.0 + 9150.0) / 2.0).abs() < 1e-12);
        // Clamps out-of-range fractions.
        assert_eq!(
            l.remote_service(NetworkKind::Ethernet100, false, -3.0),
            4575.0
        );
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(NetworkKind::Ethernet10.to_string(), "10Mb bus");
        assert_eq!(NetworkKind::Atm155.to_string(), "155Mb switch");
    }
}
