//! The analytic execution-time model (paper §4).
//!
//! For a cluster of `N` machines with `n` processors each, clocked at `S`
//! instructions/second, running a workload with locality `(α, β)` and
//! memory-reference density `ρ`, the model predicts
//!
//! ```text
//! E(Instr) = (1/(n·N)) · (1/S + ρ·T)        (eq. 4)
//! T = t1 + Σ_{i≥2} t_i^eff · m_{i−1}        (eq. 7)
//! ```
//!
//! where `m_j = ∫_{s_j}^∞ p(x) dx` is the probability a reference misses
//! all levels up to capacity `s_j`, and `t_i^eff` is the level-`i` service
//! time inflated by M/D/1 queueing contention at shared resources
//! (memory bus, cluster network, I/O bus).  Barrier synchronization adds an
//! order-statistics term (see [`crate::contention`]).
//!
//! ## Levels per platform (paper Table 1 / Figure 1)
//!
//! | platform | levels used |
//! |----------|-------------|
//! | uniprocessor / SMP | cache → shared memory (bus-contended) → disk |
//! | cluster of workstations | cache → local memory → remote memory (network-contended) → disk |
//! | cluster of SMPs | cache → intra-SMP memory (bus-contended) → remote memory (network-contended) → disk |
//!
//! ## Reconstruction choices (DESIGN.md §2.3, substitution 6)
//!
//! * The paper's eq. (9)/(11) OCR is partially garbled; the M/D/1 algebra
//!   here is pinned down by the paper's stated property that at `n = 1` the
//!   model reduces to Jacob et al.'s uniprocessor model.
//! * The paper feeds the queues with *open* arrivals `λ_i = ρ·S·m_i`
//!   (processors never slow down).  Under heavy load this saturates
//!   (`u ≥ 1`) and the prediction diverges, so we also provide a
//!   **self-consistent** variant (the default) in which the arrival rate is
//!   damped by the predicted slowdown itself, `λ_i = ρ·m_i / E_p` with
//!   `E_p = 1 + ρT` the per-processor cycles per instruction, solved by
//!   fixed-point iteration.  [`ArrivalModel`] selects between the two; the
//!   ablation benchmark `optimizer` compares them.

use crate::contention::{harmonic, md1_response};
use crate::error::ModelError;
use crate::locality::{Locality, WorkloadParams};
use crate::machine::{LatencyParams, NetworkTopology};
use crate::platform::{ClusterSpec, PlatformKind};
use serde::{Deserialize, Serialize};

/// How arrival rates at shared resources are derived (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// The paper's literal open-arrival assumption `λ = ρ·S·m`.
    /// Diverges (returns [`ModelError::Saturated`]) when a queue saturates.
    Open,
    /// Arrival rates damped by the predicted per-instruction time, solved
    /// self-consistently.  Never saturates; always converges in practice.
    SelfConsistent,
}

/// Whether the locality tail honors the workload's data footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TailMode {
    /// Use eq. (1) untruncated, as printed in the paper.  The heavy tail
    /// stands in for sharing/coherence misses on cluster platforms.
    Untruncated,
    /// Zero the tail beyond the (per-process share of the) footprint.
    /// Matches what a paging simulator observes for in-memory workloads.
    Truncated,
}

/// Per-level diagnostic emitted by [`AnalyticModel::evaluate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelBreakdown {
    /// Level name (`"cache"`, `"memory"`, `"remote"`, `"disk"`).
    pub name: String,
    /// Probability a memory reference reaches (at least) this level.
    pub reach_prob: f64,
    /// Uncontended service time, cycles.
    pub service_cycles: f64,
    /// Contention-inflated effective time, cycles.
    pub effective_cycles: f64,
    /// Utilization of the shared resource backing this level (0 for
    /// private resources).
    pub utilization: f64,
}

/// The model's output for one (cluster, workload) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Average memory-access time per reference `T`, in cycles.
    pub t_cycles: f64,
    /// Per-processor cycles per instruction, `1 + ρ·T` plus barrier wait.
    pub per_proc_cpi: f64,
    /// Application-level average execution time per instruction
    /// `E(Instr)`, in cycles (per-proc CPI divided by `n·N`).
    pub e_instr_cycles: f64,
    /// `E(Instr)` in seconds at the machine's clock.
    pub e_instr_seconds: f64,
    /// Barrier waiting folded in, cycles per instruction.
    pub barrier_cycles_per_instr: f64,
    /// Per-level breakdown (cache first).
    pub levels: Vec<LevelBreakdown>,
    /// Fixed-point iterations used (1 for the open model).
    pub iterations: u32,
}

impl Prediction {
    /// Whole-application execution time (paper eq. 3):
    /// `E(App) = (m + M) · E(Instr)` for a program of `total_instructions`.
    pub fn app_seconds(&self, total_instructions: u64) -> f64 {
        total_instructions as f64 * self.e_instr_seconds
    }

    /// Diagnostic breakdown of this prediction: where each cycle of `T`
    /// comes from, level by level, with the M/D/1 queueing delay split out
    /// from the raw service time.  Use it to explain model-vs-sim
    /// disagreements per level rather than as one opaque scalar.
    pub fn report(&self) -> ModelReport {
        let t = self.t_cycles.max(f64::MIN_POSITIVE);
        let levels: Vec<LevelDiagnostic> = self
            .levels
            .iter()
            .map(|lv| {
                let queueing = lv.effective_cycles - lv.service_cycles;
                let contribution = lv.reach_prob * lv.effective_cycles;
                LevelDiagnostic {
                    name: lv.name.clone(),
                    reach_prob: lv.reach_prob,
                    service_cycles: lv.service_cycles,
                    queueing_cycles: queueing,
                    contribution_cycles: contribution,
                    share_of_t: contribution / t,
                    utilization: lv.utilization,
                }
            })
            .collect();
        let queueing_cycles: f64 = levels
            .iter()
            .map(|l| l.reach_prob * l.queueing_cycles)
            .sum();
        ModelReport {
            t_cycles: self.t_cycles,
            per_proc_cpi: self.per_proc_cpi,
            e_instr_cycles: self.e_instr_cycles,
            barrier_cycles_per_instr: self.barrier_cycles_per_instr,
            barrier_share_of_cpi: self.barrier_cycles_per_instr / self.per_proc_cpi.max(1e-300),
            queueing_cycles,
            queueing_share_of_t: queueing_cycles / t,
            levels,
        }
    }
}

/// One row of a [`ModelReport`]: a hierarchy level's contribution to the
/// average memory time `T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelDiagnostic {
    /// Level name (`"cache"`, `"memory"`, `"remote"`, `"disk"`).
    pub name: String,
    /// Probability a reference reaches this level.
    pub reach_prob: f64,
    /// Uncontended service time, cycles.
    pub service_cycles: f64,
    /// M/D/1 queueing delay on top of the service time, cycles
    /// (`effective − service`, i.e. eq. (9)'s waiting term).
    pub queueing_cycles: f64,
    /// This level's contribution to `T`: `reach · effective`, cycles.
    pub contribution_cycles: f64,
    /// `contribution / T`, in `[0, 1]`.
    pub share_of_t: f64,
    /// Utilization of the level's shared resource (0 when private).
    pub utilization: f64,
}

/// The analytic mirror of the simulator's metrics: a per-level breakdown
/// of where `E(Instr)` comes from.  Obtained from [`Prediction::report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// Average memory-access time per reference `T`, cycles.
    pub t_cycles: f64,
    /// Per-processor cycles per instruction.
    pub per_proc_cpi: f64,
    /// `E(Instr)` in cycles.
    pub e_instr_cycles: f64,
    /// Barrier waiting, cycles per instruction.
    pub barrier_cycles_per_instr: f64,
    /// Barrier share of the per-processor CPI, in `[0, 1]`.
    pub barrier_share_of_cpi: f64,
    /// Total M/D/1 queueing delay folded into `T`
    /// (`Σ reach·(effective − service)`), cycles.
    pub queueing_cycles: f64,
    /// Queueing share of `T`, in `[0, 1]`.
    pub queueing_share_of_t: f64,
    /// Per-level rows, cache first.
    pub levels: Vec<LevelDiagnostic>,
}

impl ModelReport {
    /// Human-readable rendering, one level per line — handy in assertion
    /// messages when model and simulator disagree.
    pub fn render(&self) -> String {
        let mut out = format!(
            "T = {:.4} cyc (queueing {:.4} cyc, {:.1}%), per-proc CPI = {:.4}, \
             barrier = {:.4} cyc/instr ({:.1}%)\n",
            self.t_cycles,
            self.queueing_cycles,
            100.0 * self.queueing_share_of_t,
            self.per_proc_cpi,
            self.barrier_cycles_per_instr,
            100.0 * self.barrier_share_of_cpi,
        );
        out.push_str(
            "  level     reach        service      queueing     contrib      share   util\n",
        );
        for l in &self.levels {
            out.push_str(&format!(
                "  {:<9} {:<12.6e} {:<12.4} {:<12.4} {:<12.6e} {:>5.1}%  {:.3}\n",
                l.name,
                l.reach_prob,
                l.service_cycles,
                l.queueing_cycles,
                l.contribution_cycles,
                100.0 * l.share_of_t,
                l.utilization,
            ));
        }
        out
    }
}

/// The analytic model: latency table + evaluation policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// Hierarchy latency parameters (§5.1 values by default).
    pub latencies: LatencyParams,
    /// Arrival-rate policy (default [`ArrivalModel::SelfConsistent`]).
    pub arrival: ArrivalModel,
    /// Locality-tail policy (default [`TailMode::Untruncated`], as printed).
    pub tail_mode: TailMode,
    /// The §5.3.2 remote-access-rate adjustment compensating for unmodeled
    /// coherence traffic: remote rates are multiplied by
    /// `1 + coherence_adjustment` on cluster platforms.  Paper value 0.124.
    pub coherence_adjustment: f64,
    /// Scale on the disk level's reach probability.  1.0 = the raw
    /// untruncated tail (paper formula); calibrating toward 0 matches a
    /// paging simulator in which resident workloads only take cold misses
    /// (the same measure-and-adjust methodology as §5.3.2).
    pub disk_rate_scale: f64,
    /// Scale on the order-statistics barrier term.  The paper's formula
    /// assumes exponentially-random phase lengths, which yields a
    /// `(H_q − 1)` cycles-per-instruction wait; real bulk-synchronous
    /// kernels are far more deterministic, so calibration typically pulls
    /// this well below 1.
    pub barrier_scale: f64,
    /// Fixed-point iteration cap for the self-consistent arrival model.
    pub max_iterations: u32,
    /// Relative convergence tolerance of the fixed point.
    pub tolerance: f64,
}

impl Default for AnalyticModel {
    fn default() -> Self {
        AnalyticModel {
            latencies: LatencyParams::paper(),
            arrival: ArrivalModel::SelfConsistent,
            tail_mode: TailMode::Untruncated,
            coherence_adjustment: 0.124,
            disk_rate_scale: 1.0,
            barrier_scale: 1.0,
            max_iterations: 10_000,
            tolerance: 1e-12,
        }
    }
}

/// One queue-fed hierarchy level, before contention is applied.
struct LevelSpec {
    name: &'static str,
    /// Probability a reference reaches this level.
    reach: f64,
    /// Uncontended service time in cycles.
    service: f64,
    /// Number of *other* clients whose traffic interferes at this level's
    /// shared resource (0 ⇒ private, no queueing).
    interferers: f64,
    /// Rate multiplier on interfering traffic (coherence adjustment and
    /// switch port dilution are folded in here).
    rate_scale: f64,
}

impl AnalyticModel {
    /// Evaluate the model for `cluster` running `workload`.
    ///
    /// Returns [`ModelError::Saturated`] under [`ArrivalModel::Open`] when a
    /// shared resource's utilization reaches 1, and
    /// [`ModelError::NoConvergence`] if the self-consistent fixed point
    /// fails to settle (not observed for sane parameters).
    pub fn evaluate(
        &self,
        cluster: &ClusterSpec,
        workload: &WorkloadParams,
    ) -> Result<Prediction, ModelError> {
        cluster.validate()?;
        if !(0.0..=1.0).contains(&workload.rho) {
            return Err(ModelError::InvalidRho(workload.rho));
        }
        let levels = self.level_specs(cluster, workload)?;
        let q = cluster.total_procs();
        let rho = workload.rho;

        // Barrier term: (H_q − 1) cycles per instruction (paper eq. 11's
        // "+ (1/2 + … + 1/n)" term; see crate::contention docs).  Zero when
        // the workload declares no barriers or there is a single processor.
        let barrier = if workload.barrier_per_instr > 0.0 && q > 1 {
            self.barrier_scale * (harmonic(q) - 1.0)
        } else {
            0.0
        };

        match self.arrival {
            ArrivalModel::Open => {
                let (t, lv) = self.apply_contention(&levels, rho, 1.0)?;
                let per_proc = self.latencies.instr + rho * t + barrier;
                Ok(self.finish(cluster, t, per_proc, barrier, lv, 1))
            }
            ArrivalModel::SelfConsistent => {
                // Solve e = f(e) where f(e) = 1 + ρ·T(λ(e)) + barrier and
                // λ ∝ 1/e.  f is monotonically decreasing in e (slower
                // processors generate less interfering traffic), so
                // g(e) = f(e) − e is strictly decreasing with a unique root;
                // bisection is unconditionally robust where plain Picard
                // iteration oscillates near saturation.
                let f = |e: f64| -> Option<f64> {
                    self.apply_contention(&levels, rho, 1.0 / e)
                        .ok()
                        .map(|(t, _)| self.latencies.instr + rho * t + barrier)
                };
                // Lower bracket: the uncontended CPI (f(e) ≥ e there, since
                // contention only adds time).  Upper bracket: grow until
                // f(hi) < hi; f is bounded once utilization < 1.
                let e_unc = self.latencies.instr + barrier + rho * uncontended_t(&levels);
                let mut lo = e_unc;
                let mut hi = e_unc.max(2.0);
                let mut iters = 0u32;
                while f(hi).map(|v| v > hi).unwrap_or(true) {
                    hi *= 2.0;
                    iters += 1;
                    if iters >= self.max_iterations || !hi.is_finite() {
                        return Err(ModelError::NoConvergence {
                            iterations: iters,
                            residual: f64::INFINITY,
                        });
                    }
                }
                while (hi - lo) / hi.max(1e-30) > self.tolerance {
                    iters += 1;
                    if iters >= self.max_iterations {
                        break;
                    }
                    let mid = 0.5 * (lo + hi);
                    // Saturated at mid ⇒ f(mid) = ∞ > mid ⇒ root is above.
                    match f(mid) {
                        Some(v) if v <= mid => hi = mid,
                        _ => lo = mid,
                    }
                }
                let e = hi; // the stable side of the bracket
                let (t, lv) = self.apply_contention(&levels, rho, 1.0 / e).map_err(|_| {
                    ModelError::NoConvergence {
                        iterations: iters,
                        residual: hi - lo,
                    }
                })?;
                let per_proc = self.latencies.instr + rho * t + barrier;
                Ok(self.finish(cluster, t, per_proc, barrier, lv, iters))
            }
        }
    }

    /// Like [`AnalyticModel::evaluate`] but maps saturation/non-convergence
    /// to `E(Instr) = ∞`, which the optimizer treats as "reject this
    /// configuration".
    pub fn evaluate_or_inf(&self, cluster: &ClusterSpec, workload: &WorkloadParams) -> f64 {
        match self.evaluate(cluster, workload) {
            Ok(p) => p.e_instr_seconds,
            Err(ModelError::Saturated { .. }) | Err(ModelError::NoConvergence { .. }) => {
                f64::INFINITY
            }
            Err(_) => f64::INFINITY,
        }
    }

    fn finish(
        &self,
        cluster: &ClusterSpec,
        t: f64,
        per_proc: f64,
        barrier: f64,
        levels: Vec<LevelBreakdown>,
        iterations: u32,
    ) -> Prediction {
        let q = cluster.total_procs() as f64;
        let e_cycles = per_proc / q;
        Prediction {
            t_cycles: t,
            per_proc_cpi: per_proc,
            e_instr_cycles: e_cycles,
            e_instr_seconds: e_cycles / cluster.machine.clock_hz,
            barrier_cycles_per_instr: barrier,
            levels,
            iterations,
        }
    }

    /// Locality tail honoring the model's [`TailMode`].
    fn tail(&self, loc: &Locality, s: f64, q: u32) -> f64 {
        let mut l = *loc;
        if self.tail_mode == TailMode::Untruncated {
            l.footprint = None;
        }
        l.tail_scaled(s, q)
    }

    /// Build the hierarchy level list for the cluster's platform.
    fn level_specs(
        &self,
        cluster: &ClusterSpec,
        w: &WorkloadParams,
    ) -> Result<Vec<LevelSpec>, ModelError> {
        let lat = &self.latencies;
        let m = &cluster.machine;
        let n = m.n_procs as f64;
        let q = cluster.total_procs();
        let loc = &w.locality;
        let s1 = m.cache_bytes as f64;
        let s2 = m.memory_bytes as f64;
        let m2 = self.tail(loc, s1, q); // miss past cache
        let m3 = self.tail(loc, s2, q); // miss past one machine's memory

        let mut levels = vec![LevelSpec {
            name: "cache",
            reach: 1.0,
            service: lat.cache_hit,
            interferers: 0.0,
            rate_scale: 1.0,
        }];

        match cluster.platform() {
            PlatformKind::Uniprocessor | PlatformKind::Smp => {
                // Level 2: shared memory over the SMP bus.  A fraction of
                // misses is served cache-to-cache at the snoop-hit cost.
                // On a NUMA machine with d domains, (d−1)/d of accesses hit
                // a remote domain (page-interleaved placement) and pay the
                // remote-domain penalty, but each domain's bus is shared by
                // only n/d processors instead of all n.
                let f = if m.n_procs > 1 {
                    w.dirty_fraction.clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let d = m.numa_domains() as f64;
                let numa_penalty = m.numa.map(|nu| nu.remote_penalty_cycles).unwrap_or(0.0);
                let service = (1.0 - f) * lat.local_memory
                    + f * lat.smp_remote_cache
                    + (d - 1.0) / d * numa_penalty;
                levels.push(LevelSpec {
                    name: "memory",
                    reach: m2,
                    service,
                    interferers: (n / d - 1.0).max(0.0),
                    rate_scale: 1.0,
                });
                // Level 3: local disk over the shared I/O bus.
                levels.push(LevelSpec {
                    name: "disk",
                    reach: (m3 * self.disk_rate_scale).min(1.0),
                    service: lat.local_disk,
                    interferers: n - 1.0,
                    rate_scale: 1.0,
                });
            }
            PlatformKind::ClusterOfWorkstations | PlatformKind::ClusterOfSmps => {
                let net = cluster.network.ok_or(ModelError::MissingNetwork)?;
                let clump = cluster.platform() == PlatformKind::ClusterOfSmps;
                let s3 = cluster.total_memory_bytes() as f64; // aggregate memory
                let m4 = self.tail(loc, s3, q); // miss past aggregate memory
                let coh = 1.0 + self.coherence_adjustment;

                // Level 2: this machine's memory.  Private for a COW node;
                // bus-contended among n processors inside a CLUMP node
                // (per NUMA domain, when the node is NUMA-aware).
                let (l2_service, l2_intf) = if clump {
                    let f = w.dirty_fraction.clamp(0.0, 1.0);
                    let d = m.numa_domains() as f64;
                    let pen = m.numa.map(|nu| nu.remote_penalty_cycles).unwrap_or(0.0);
                    (
                        (1.0 - f) * lat.local_memory
                            + f * lat.smp_remote_cache
                            + (d - 1.0) / d * pen,
                        (n / d - 1.0).max(0.0),
                    )
                } else {
                    (lat.local_memory, 0.0)
                };
                levels.push(LevelSpec {
                    name: "memory",
                    reach: m2,
                    service: l2_service,
                    interferers: l2_intf,
                    rate_scale: 1.0,
                });

                // Level 3: remote memory over the cluster network.  Two
                // flows reach it: capacity misses past the local memory
                // (`m3`) and cache misses to data homed at another process
                // (`sharing_fraction · m2` — coherence/sharing traffic the
                // capacity tail cannot see).  Both carry the §5.3.2
                // coherence adjustment.  Contention: a bus network is one
                // server shared by all q processors; a switch contends only
                // at the destination port, diluting interfering traffic by N.
                let mut service = lat.remote_service(net, clump, w.dirty_fraction);
                let sharing = w.sharing_fraction.clamp(0.0, 1.0);
                let remote_reach = ((m3 + sharing * m2) * coh).min(1.0);
                let (interferers, dilution) = match net.topology() {
                    NetworkTopology::Bus => ((q as f64) - 1.0, 1.0),
                    NetworkTopology::Switch => ((q as f64) - 1.0, 1.0 / cluster.machines as f64),
                    // A fat tree is switch-like per destination port, but a
                    // `cross` fraction of transfers leaves the rack, paying
                    // the uplink crossing cost and squeezing through
                    // oversubscribed uplinks (which un-dilutes interfering
                    // traffic by the oversubscription ratio on that share).
                    NetworkTopology::FatTree => {
                        let spec = net.spec();
                        let per_rack = spec.machines_per_rack.max(1) as f64;
                        let cross = (1.0 - per_rack / cluster.machines as f64).max(0.0);
                        service += cross * spec.rack_crossing_cycles;
                        (
                            (q as f64) - 1.0,
                            (1.0 + (spec.oversubscription - 1.0) * cross) / cluster.machines as f64,
                        )
                    }
                };
                levels.push(LevelSpec {
                    name: "remote",
                    reach: remote_reach,
                    service,
                    interferers,
                    rate_scale: coh * dilution,
                });

                // Level 4: disk (paging past the aggregate memory), served
                // by the local disk through the node's I/O bus.
                levels.push(LevelSpec {
                    name: "disk",
                    reach: (m4 * self.disk_rate_scale).min(1.0),
                    service: lat.local_disk,
                    interferers: if clump { n - 1.0 } else { 0.0 },
                    rate_scale: 1.0,
                });
            }
        }
        Ok(levels)
    }

    /// Apply M/D/1 contention to each level.  `rate_damp` scales per-client
    /// arrival rates (1.0 for the open model, `1/E_p` self-consistently).
    /// Returns `(T, breakdown)`.
    fn apply_contention(
        &self,
        levels: &[LevelSpec],
        rho: f64,
        rate_damp: f64,
    ) -> Result<(f64, Vec<LevelBreakdown>), ModelError> {
        let mut t = 0.0;
        let mut out = Vec::with_capacity(levels.len());
        for lv in levels {
            let (eff, util) = if lv.interferers > 0.0 && lv.reach > 0.0 {
                // Per-client arrival rate to this level, accesses/cycle.
                let lambda = rho * lv.reach * rate_damp * lv.rate_scale;
                let arrival = lv.interferers * lambda;
                let util = arrival * lv.service;
                match md1_response(lv.service, arrival) {
                    Some(r) => (r, util),
                    None => {
                        return Err(ModelError::Saturated {
                            level: lv.name,
                            utilization: util,
                        })
                    }
                }
            } else {
                (lv.service, 0.0)
            };
            t += lv.reach * eff;
            out.push(LevelBreakdown {
                name: lv.name.to_string(),
                reach_prob: lv.reach,
                service_cycles: lv.service,
                effective_cycles: eff,
                utilization: util,
            });
        }
        Ok((t, out))
    }
}

/// `T` with zero contention — the fixed-point seed.
fn uncontended_t(levels: &[LevelSpec]) -> f64 {
    levels.iter().map(|l| l.reach * l.service).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineSpec, NetworkKind};

    fn fft() -> WorkloadParams {
        WorkloadParams::new("FFT", 1.21, 103.26, 0.20).unwrap()
    }
    fn radix() -> WorkloadParams {
        WorkloadParams::new("Radix", 1.14, 120.84, 0.37).unwrap()
    }
    fn edge() -> WorkloadParams {
        WorkloadParams::new("EDGE", 1.71, 85.03, 0.45).unwrap()
    }

    fn uni() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(1, 256, 64, 200.0))
    }
    fn smp(n: u32) -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(n, 256, 128, 200.0))
    }
    fn cow(nn: u32, net: NetworkKind) -> ClusterSpec {
        ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), nn, net)
    }
    fn clump(n: u32, nn: u32, net: NetworkKind) -> ClusterSpec {
        ClusterSpec::cluster(MachineSpec::new(n, 256, 128, 200.0), nn, net)
    }

    #[test]
    fn uniprocessor_reduces_to_jacob_model() {
        // At n = 1 there is no contention and no barrier: T must equal the
        // plain weighted sum of service times (Jacob et al.'s model), for
        // both arrival policies.
        let w = fft();
        for arrival in [ArrivalModel::Open, ArrivalModel::SelfConsistent] {
            let model = AnalyticModel {
                arrival,
                ..AnalyticModel::default()
            };
            let p = model.evaluate(&uni(), &w).unwrap();
            let loc = w.locality;
            let m2 = loc.tail(256.0 * 1024.0);
            let m3 = loc.tail(64.0 * 1024.0 * 1024.0);
            let expect = 1.0 + 50.0 * m2 + 2000.0 * m3;
            assert!(
                (p.t_cycles - expect).abs() < 1e-9,
                "{arrival:?}: T = {} vs closed form {expect}",
                p.t_cycles
            );
            assert_eq!(p.barrier_cycles_per_instr, 0.0);
        }
    }

    #[test]
    fn e_instr_formula_holds() {
        let model = AnalyticModel::default();
        let w = fft();
        let c = smp(4);
        let p = model.evaluate(&c, &w).unwrap();
        // E(Instr) = per_proc_cpi / (nN), seconds = cycles / clock.
        assert!((p.e_instr_cycles - p.per_proc_cpi / 4.0).abs() < 1e-12);
        assert!((p.e_instr_seconds - p.e_instr_cycles / 2e8).abs() < 1e-20);
        // CPI decomposition.
        let expect = 1.0 + w.rho * p.t_cycles + p.barrier_cycles_per_instr;
        assert!((p.per_proc_cpi - expect).abs() < 1e-6);
    }

    #[test]
    fn more_processors_reduce_e_instr_for_cpu_bound() {
        // FFT (small rho) on SMPs: E(Instr) should drop with n.
        let model = AnalyticModel::default();
        let w = fft();
        let e2 = model.evaluate(&smp(2), &w).unwrap().e_instr_cycles;
        let e4 = model.evaluate(&smp(4), &w).unwrap().e_instr_cycles;
        assert!(e4 < e2, "e4 = {e4}, e2 = {e2}");
    }

    #[test]
    fn bigger_cache_helps() {
        let model = AnalyticModel::default();
        let w = radix();
        let small = ClusterSpec::single(MachineSpec::new(2, 256, 128, 200.0));
        let big = ClusterSpec::single(MachineSpec::new(2, 512, 128, 200.0));
        let es = model.evaluate(&small, &w).unwrap().e_instr_cycles;
        let eb = model.evaluate(&big, &w).unwrap().e_instr_cycles;
        assert!(eb < es, "512KB {eb} should beat 256KB {es}");
    }

    #[test]
    fn faster_network_helps_cow() {
        let model = AnalyticModel::default();
        let w = fft();
        let slow = model
            .evaluate(&cow(4, NetworkKind::Ethernet10), &w)
            .unwrap();
        let mid = model
            .evaluate(&cow(4, NetworkKind::Ethernet100), &w)
            .unwrap();
        let fast = model.evaluate(&cow(4, NetworkKind::Atm155), &w).unwrap();
        assert!(slow.e_instr_cycles > mid.e_instr_cycles);
        assert!(mid.e_instr_cycles > fast.e_instr_cycles);
    }

    #[test]
    fn open_model_saturates_on_slow_ethernet() {
        // The paper-literal open arrival model must detect divergence for a
        // memory-bound workload on a big 10 Mb Ethernet cluster.
        let model = AnalyticModel {
            arrival: ArrivalModel::Open,
            ..AnalyticModel::default()
        };
        let w = radix();
        let r = model.evaluate(&cow(8, NetworkKind::Ethernet10), &w);
        assert!(
            matches!(r, Err(ModelError::Saturated { .. })),
            "expected saturation, got {r:?}"
        );
        // evaluate_or_inf maps that to infinity for the optimizer.
        assert!(model
            .evaluate_or_inf(&cow(8, NetworkKind::Ethernet10), &w)
            .is_infinite());
    }

    #[test]
    fn over_saturated_cluster_surfaces_model_error_not_panic() {
        // Regression for the robustness audit: a pathologically
        // over-committed cluster (32 machines sharing 10 Mb Ethernet under
        // the most memory-bound kernel) must come back as a typed
        // ModelError carrying the saturated level — never a panic, never
        // NaN leaking out of the M/D/1 algebra.
        let model = AnalyticModel {
            arrival: ArrivalModel::Open,
            ..AnalyticModel::default()
        };
        let spec = cow(32, NetworkKind::Ethernet10);
        let r = std::panic::catch_unwind(|| model.evaluate(&spec, &radix()))
            .expect("degenerate configs must not panic");
        match r {
            Err(ModelError::Saturated { level, utilization }) => {
                assert_eq!(level, "remote");
                assert!(utilization >= 1.0, "reported utilization {utilization}");
            }
            other => panic!("expected Saturated, got {other:?}"),
        }
        // The self-consistent default absorbs the same spec finitely.
        let p = AnalyticModel::default().evaluate(&spec, &radix()).unwrap();
        assert!(p.e_instr_cycles.is_finite() && p.e_instr_cycles > 0.0);
    }

    #[test]
    fn self_consistent_stays_finite_under_heavy_load() {
        let model = AnalyticModel::default();
        let w = radix();
        let p = model
            .evaluate(&cow(8, NetworkKind::Ethernet10), &w)
            .unwrap();
        assert!(p.e_instr_cycles.is_finite());
        assert!(p.iterations > 1);
        // All reported utilizations must be stable.
        for l in &p.levels {
            assert!(l.utilization < 1.0, "{}: u = {}", l.name, l.utilization);
        }
    }

    #[test]
    fn self_consistent_matches_open_at_light_load() {
        // EDGE has excellent locality: queues are nearly idle, so the two
        // arrival policies must agree closely.
        let w = edge();
        let open = AnalyticModel {
            arrival: ArrivalModel::Open,
            ..AnalyticModel::default()
        };
        let sc = AnalyticModel::default();
        let c = smp(2);
        let eo = open.evaluate(&c, &w).unwrap().e_instr_cycles;
        let es = sc.evaluate(&c, &w).unwrap().e_instr_cycles;
        assert!(
            (eo - es).abs() / eo < 0.02,
            "open {eo} vs self-consistent {es}"
        );
    }

    #[test]
    fn clump_remote_costs_exceed_cow() {
        // Same geometry, same workload: the CLUMP +3-cycle remote costs must
        // make a (2x1)-CLUMP... rather, verify the latency table is wired:
        // a CLUMP with n=2,N=2 over Eth10 uses 45078 not 45075.
        let model = AnalyticModel::default();
        let w = fft();
        let p = model
            .evaluate(&clump(2, 2, NetworkKind::Ethernet10), &w)
            .unwrap();
        let remote = p.levels.iter().find(|l| l.name == "remote").unwrap();
        let expect = 0.8 * 45078.0 + 0.2 * 90153.0;
        assert!((remote.service_cycles - expect).abs() < 1e-9);
    }

    #[test]
    fn switch_contention_milder_than_bus() {
        // Hypothetical: same service time over bus vs switch topology is not
        // directly comparable via NetworkKind (kinds imply service costs),
        // so check via breakdown utilization: ATM (switch) utilization is
        // diluted by N compared to a bus of the same traffic.
        let model = AnalyticModel::default();
        let w = radix();
        let p_bus = model
            .evaluate(&cow(4, NetworkKind::Ethernet100), &w)
            .unwrap();
        let p_sw = model.evaluate(&cow(4, NetworkKind::Atm155), &w).unwrap();
        let u_bus = p_bus
            .levels
            .iter()
            .find(|l| l.name == "remote")
            .unwrap()
            .utilization;
        let u_sw = p_sw
            .levels
            .iter()
            .find(|l| l.name == "remote")
            .unwrap()
            .utilization;
        assert!(u_sw < u_bus, "switch u {u_sw} vs bus u {u_bus}");
    }

    #[test]
    fn barrier_term_is_harmonic() {
        let model = AnalyticModel::default();
        let w = fft(); // default barrier rate > 0
        let p = model.evaluate(&smp(4), &w).unwrap();
        let expect = 1.0 / 2.0 + 1.0 / 3.0 + 1.0 / 4.0;
        assert!((p.barrier_cycles_per_instr - expect).abs() < 1e-12);
        // No barriers declared -> no term.
        let mut w0 = fft();
        w0.barrier_per_instr = 0.0;
        let p0 = model.evaluate(&smp(4), &w0).unwrap();
        assert_eq!(p0.barrier_cycles_per_instr, 0.0);
        assert!(p0.e_instr_cycles < p.e_instr_cycles);
    }

    #[test]
    fn coherence_adjustment_increases_remote_reach() {
        let base = AnalyticModel {
            coherence_adjustment: 0.0,
            ..AnalyticModel::default()
        };
        let adj = AnalyticModel::default(); // 0.124
        let w = fft();
        let c = cow(4, NetworkKind::Ethernet100);
        let e0 = base.evaluate(&c, &w).unwrap().e_instr_cycles;
        let e1 = adj.evaluate(&c, &w).unwrap().e_instr_cycles;
        assert!(e1 > e0, "adjusted {e1} must exceed unadjusted {e0}");
        // Queueing amplifies the 12.4% rate bump nonlinearly, but it must
        // stay the same order of magnitude.
        assert!(e1 < e0 * 3.0, "adjusted {e1} vs unadjusted {e0}");
    }

    #[test]
    fn truncated_tail_removes_disk_traffic() {
        let model = AnalyticModel {
            tail_mode: TailMode::Truncated,
            ..AnalyticModel::default()
        };
        let w = fft().with_footprint(2e6); // 2 MB fits in 64 MB memory
        let p = model.evaluate(&uni(), &w).unwrap();
        let disk = p.levels.iter().find(|l| l.name == "disk").unwrap();
        assert_eq!(disk.reach_prob, 0.0);
        // Untruncated default keeps a nonzero disk tail.
        let p2 = AnalyticModel::default().evaluate(&uni(), &w).unwrap();
        let disk2 = p2.levels.iter().find(|l| l.name == "disk").unwrap();
        assert!(disk2.reach_prob > 0.0);
    }

    #[test]
    fn breakdown_levels_ordered_and_weighted() {
        let model = AnalyticModel::default();
        let p = model
            .evaluate(&cow(4, NetworkKind::Atm155), &fft())
            .unwrap();
        let names: Vec<_> = p.levels.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["cache", "memory", "remote", "disk"]);
        // Reach probabilities non-increasing down the hierarchy (modulo the
        // coherence adjustment which can only inflate "remote" above the raw
        // tail; it is still below the "memory" reach).
        assert!(p.levels[0].reach_prob >= p.levels[1].reach_prob);
        assert!(p.levels[1].reach_prob >= p.levels[2].reach_prob);
        assert!(p.levels[2].reach_prob >= p.levels[3].reach_prob);
        // T equals the weighted sum of effective times.
        let t: f64 = p
            .levels
            .iter()
            .map(|l| l.reach_prob * l.effective_cycles)
            .sum();
        assert!((t - p.t_cycles).abs() < 1e-9);
    }

    #[test]
    fn app_time_is_eq3() {
        let model = AnalyticModel::default();
        let p = model.evaluate(&uni(), &fft()).unwrap();
        // E(App) = (m+M) * E(Instr).
        let app = p.app_seconds(1_000_000);
        assert!((app - 1e6 * p.e_instr_seconds).abs() < 1e-18);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let model = AnalyticModel::default();
        let mut w = fft();
        w.rho = 1.5;
        assert!(model.evaluate(&uni(), &w).is_err());
        let mut c = cow(4, NetworkKind::Ethernet100);
        c.network = None;
        assert!(matches!(
            model.evaluate(&c, &fft()),
            Err(ModelError::MissingNetwork)
        ));
    }

    #[test]
    fn numa_adds_remote_domain_penalty_to_memory_service() {
        let model = AnalyticModel::default();
        let w = radix();
        let flat = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
        let numa = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0).with_numa(2, 40.0));
        let p_flat = model.evaluate(&flat, &w).unwrap();
        let p_numa = model.evaluate(&numa, &w).unwrap();
        let mem_flat = p_flat.levels.iter().find(|l| l.name == "memory").unwrap();
        let mem_numa = p_numa.levels.iter().find(|l| l.name == "memory").unwrap();
        // 2 domains: half the accesses pay the 40-cycle penalty.
        assert!(
            (mem_numa.service_cycles - (mem_flat.service_cycles + 20.0)).abs() < 1e-9,
            "numa {} vs flat {}",
            mem_numa.service_cycles,
            mem_flat.service_cycles
        );
        // ...but each domain bus carries only n/d clients, so utilization
        // per bus drops.
        assert!(mem_numa.utilization < mem_flat.utilization);
        // A 1-domain NUMA spec is exactly a flat machine.
        let trivial = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0).with_numa(1, 40.0));
        let p_trivial = model.evaluate(&trivial, &w).unwrap();
        assert_eq!(p_trivial.t_cycles, p_flat.t_cycles);
    }

    #[test]
    fn fat_tree_charges_rack_crossings() {
        let model = AnalyticModel::default();
        let w = fft();
        let lat = LatencyParams::paper();
        // 8 machines = 2 racks of 4: half the remote traffic crosses racks.
        let p8 = model.evaluate(&cow(8, NetworkKind::FatTree), &w).unwrap();
        let r8 = p8.levels.iter().find(|l| l.name == "remote").unwrap();
        let base = lat.remote_service(NetworkKind::FatTree, false, w.dirty_fraction);
        assert!(
            (r8.service_cycles - (base + 0.5 * 400.0)).abs() < 1e-9,
            "8-machine fat tree service {}",
            r8.service_cycles
        );
        // 4 machines fit one rack: no crossing cost at all.
        let p4 = model.evaluate(&cow(4, NetworkKind::FatTree), &w).unwrap();
        let r4 = p4.levels.iter().find(|l| l.name == "remote").unwrap();
        assert!((r4.service_cycles - base).abs() < 1e-9);
        // And the gigabit fabric beats ATM on the same geometry.
        let p_atm = model.evaluate(&cow(8, NetworkKind::Atm155), &w).unwrap();
        assert!(p8.e_instr_cycles < p_atm.e_instr_cycles);
    }

    #[test]
    fn radix_prefers_smp_over_slow_cow() {
        // §6: memory-bound, poor-locality workloads (Radix) favor the short
        // hierarchy of an SMP over a slow-network COW of equal processor
        // count.
        let model = AnalyticModel::default();
        let w = radix();
        let e_smp = model.evaluate(&smp(4), &w).unwrap().e_instr_seconds;
        let e_cow = model
            .evaluate(&cow(4, NetworkKind::Ethernet10), &w)
            .unwrap()
            .e_instr_seconds;
        assert!(e_smp < e_cow, "SMP {e_smp} should beat 10Mb COW {e_cow}");
    }
}
