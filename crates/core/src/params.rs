//! The paper's published constants: Table 2 workload characteristics,
//! Tables 3–5 platform configurations (C1–C15), and problem sizes (§5.2).

use crate::locality::WorkloadParams;
use crate::machine::{MachineSpec, NetworkKind};
use crate::platform::ClusterSpec;

/// Paper problem sizes (§5.2) and the resulting data footprints in bytes.
pub mod sizes {
    /// FFT: 64 K complex points (two arrays of complex doubles).
    pub const FFT_POINTS: usize = 64 * 1024;
    /// LU: 512 × 512 dense matrix of doubles.
    pub const LU_N: usize = 512;
    /// Radix: 1 M integers, radix 1024.
    pub const RADIX_KEYS: usize = 1024 * 1024;
    /// Radix digit width (radix 1024).
    pub const RADIX_RADIX: usize = 1024;
    /// EDGE: 128 × 128 bitmap.
    pub const EDGE_DIM: usize = 128;
    /// Stencil4D: 16⁴ lattice (QCD-style 4-D nearest-neighbor stencil).
    pub const STENCIL_L: usize = 16;
    /// Stream: 1 M doubles copied/scanned per pass.
    pub const STREAM_ELEMS: usize = 1024 * 1024;
    /// GraphWalk: 256 K-node pointer-chase permutation.
    pub const GRAPH_NODES: usize = 256 * 1024;
    /// Inference: 128-wide layers, 4 of them, batch 32.
    pub const INFER_DIM: usize = 128;
    /// Inference layer count.
    pub const INFER_LAYERS: usize = 4;
    /// Inference batch size.
    pub const INFER_BATCH: usize = 32;

    /// FFT footprint: data + roots-of-unity arrays, 16 B per complex point.
    pub const FFT_FOOTPRINT: f64 = (FFT_POINTS * 16 * 2) as f64;
    /// LU footprint: the matrix, 8 B per element.
    pub const LU_FOOTPRINT: f64 = (LU_N * LU_N * 8) as f64;
    /// Radix footprint: keys + permutation buffer (4 B each) + histograms.
    pub const RADIX_FOOTPRINT: f64 = (RADIX_KEYS * 4 * 2 + RADIX_RADIX * 8) as f64;
    /// EDGE footprint: image + 3 working planes, 4 B per pixel.
    pub const EDGE_FOOTPRINT: f64 = (EDGE_DIM * EDGE_DIM * 4 * 4) as f64;
    /// Stencil4D footprint: two lattice fields (src/dst), 8 B per site.
    pub const STENCIL_FOOTPRINT: f64 =
        (STENCIL_L * STENCIL_L * STENCIL_L * STENCIL_L * 8 * 2) as f64;
    /// Stream footprint: source + destination arrays, 8 B per element.
    pub const STREAM_FOOTPRINT: f64 = (STREAM_ELEMS * 8 * 2) as f64;
    /// GraphWalk footprint: successor pointers + payloads, 8 B each.
    pub const GRAPH_FOOTPRINT: f64 = (GRAPH_NODES * 8 * 2) as f64;
    /// Inference footprint: layer weights + double-buffered activations.
    pub const INFER_FOOTPRINT: f64 =
        (INFER_LAYERS * INFER_DIM * INFER_DIM * 8 + 2 * INFER_BATCH * INFER_DIM * 8) as f64;
}

/// FFT workload parameters (Table 2: α = 1.21, β = 103.26, ρ = 0.20).
pub fn workload_fft() -> WorkloadParams {
    WorkloadParams::new("FFT", 1.21, 103.26, 0.20)
        .expect("paper constants are valid")
        .with_footprint(sizes::FFT_FOOTPRINT)
}

/// LU workload parameters (Table 2: α = 1.30, β = 90.27, ρ = 0.31).
pub fn workload_lu() -> WorkloadParams {
    WorkloadParams::new("LU", 1.30, 90.27, 0.31)
        .expect("paper constants are valid")
        .with_footprint(sizes::LU_FOOTPRINT)
}

/// Radix workload parameters (Table 2: α = 1.14, β = 120.84, ρ = 0.37).
pub fn workload_radix() -> WorkloadParams {
    WorkloadParams::new("Radix", 1.14, 120.84, 0.37)
        .expect("paper constants are valid")
        .with_footprint(sizes::RADIX_FOOTPRINT)
}

/// EDGE workload parameters (Table 2: α = 1.71, β = 85.03, ρ = 0.45).
pub fn workload_edge() -> WorkloadParams {
    WorkloadParams::new("EDGE", 1.71, 85.03, 0.45)
        .expect("paper constants are valid")
        .with_footprint(sizes::EDGE_FOOTPRINT)
        // EDGE barriers after every iteration (§5.2) — the most
        // barrier-intensive of the four kernels.
        .with_barrier_rate(1e-5)
}

/// The TPC-C commercial workload the paper characterizes as an aside in
/// §5.2: α = 1.73, β = 1222.66, ρ = 0.36.
pub fn workload_tpcc() -> WorkloadParams {
    WorkloadParams::new("TPC-C", 1.73, 1222.66, 0.36).expect("paper constants are valid")
}

/// QCD-style 4-D stencil with halo exchange.  (α, β, ρ) measured with
/// `memhier record → fit` on the paper-size generator: dense
/// nearest-neighbor sweeps give FFT-like reuse with a larger memory
/// fraction (loads of 8 neighbors + 1 center per site update).
pub fn workload_stencil4d() -> WorkloadParams {
    WorkloadParams::new("Stencil4D", 1.38, 9.85, 0.33)
        .expect("measured constants are valid")
        .with_footprint(sizes::STENCIL_FOOTPRINT)
        // One barrier per lattice sweep: halo exchange each iteration.
        .with_barrier_rate(2e-6)
}

/// Streaming scan: touch-once locality, the pathological corner of the
/// stack-distance model.  The fit converges with β driven to its floor —
/// there is no reuse beyond the cache line itself.
pub fn workload_stream() -> WorkloadParams {
    WorkloadParams::new("Stream", 1.23, 1.01, 0.40)
        .expect("measured constants are valid")
        .with_footprint(sizes::STREAM_FOOTPRINT)
}

/// Pointer-chasing graph traversal over a random permutation: the
/// stack-distance distribution is near-uniform, so the power-law fit
/// diverges (`memhier fit` reports `converged: false` with unbounded
/// α/β).  ρ is measured; (α, β) is the documented no-locality stand-in
/// closest to the empirical CDF at cache-sized capacities.
pub fn workload_graphwalk() -> WorkloadParams {
    WorkloadParams::new("GraphWalk", 1.08, 400.0, 0.43)
        .expect("measured constants are valid")
        .with_footprint(sizes::GRAPH_FOOTPRINT)
}

/// Batched weight-streaming ML inference: layer weights stream past while
/// activations stay hot, giving a bimodal reuse profile — steep locality
/// near the top of the stack (activations), a long weight tail behind it.
pub fn workload_inference() -> WorkloadParams {
    WorkloadParams::new("Inference", 2.90, 8818.76, 0.33)
        .expect("measured constants are valid")
        .with_footprint(sizes::INFER_FOOTPRINT)
        // One barrier per layer per batch: weight broadcast points.
        .with_barrier_rate(1e-6)
}

/// Look up a registered workload by name, case-insensitively (`TPCC` is
/// accepted for `TPC-C`).  Covers the paper's Table 2 plus the four
/// post-paper generators.  Returns `None` for unknown names — callers
/// with their own (α, β, ρ) should construct [`WorkloadParams`] directly.
pub fn workload_by_name(name: &str) -> Option<WorkloadParams> {
    match name.to_ascii_uppercase().as_str() {
        "FFT" => Some(workload_fft()),
        "LU" => Some(workload_lu()),
        "RADIX" => Some(workload_radix()),
        "EDGE" => Some(workload_edge()),
        "TPC-C" | "TPCC" => Some(workload_tpcc()),
        "STENCIL4D" | "STENCIL" => Some(workload_stencil4d()),
        "STREAM" => Some(workload_stream()),
        "GRAPHWALK" | "GRAPH" => Some(workload_graphwalk()),
        "INFERENCE" | "INFER" => Some(workload_inference()),
        _ => None,
    }
}

/// Canonical names of every characterized workload, Table-2 kernels
/// first, in [`workload_by_name`] order — the list error messages quote.
pub fn workload_names() -> Vec<&'static str> {
    vec![
        "FFT",
        "LU",
        "Radix",
        "EDGE",
        "TPC-C",
        "Stencil4D",
        "Stream",
        "GraphWalk",
        "Inference",
    ]
}

/// All four Table-2 kernels, in the paper's order.
pub fn paper_workloads() -> Vec<WorkloadParams> {
    vec![
        workload_fft(),
        workload_lu(),
        workload_radix(),
        workload_edge(),
    ]
}

/// The paper's platform configurations (Tables 3–5), all at 200 MHz.
pub mod configs {
    use super::*;

    /// Table 3 — C1: 2P SMP, 256 KB cache, 64 MB memory.
    pub fn c1() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0)).named("C1")
    }
    /// Table 3 — C2: 2P SMP, 512 KB, 64 MB.
    pub fn c2() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(2, 512, 64, 200.0)).named("C2")
    }
    /// Table 3 — C3: 2P SMP, 256 KB, 128 MB.
    pub fn c3() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(2, 256, 128, 200.0)).named("C3")
    }
    /// Table 3 — C4: 2P SMP, 512 KB, 128 MB.
    pub fn c4() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(2, 512, 128, 200.0)).named("C4")
    }
    /// Table 3 — C5: 4P SMP, 256 KB, 128 MB.
    pub fn c5() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0)).named("C5")
    }
    /// Table 3 — C6: 4P SMP, 512 KB, 128 MB.
    pub fn c6() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(4, 512, 128, 200.0)).named("C6")
    }

    /// Table 4 — C7: 2 workstations, 256 KB, 32 MB, 10 Mb bus.
    pub fn c7() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet10,
        )
        .named("C7")
    }
    /// Table 4 — C8: 4 workstations, 256 KB, 64 MB, 100 Mb bus.
    pub fn c8() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 64, 200.0),
            4,
            NetworkKind::Ethernet100,
        )
        .named("C8")
    }
    /// Table 4 — C9: 4 workstations, 512 KB, 64 MB, 100 Mb bus.
    pub fn c9() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(1, 512, 64, 200.0),
            4,
            NetworkKind::Ethernet100,
        )
        .named("C9")
    }
    /// Table 4 — C10: 4 workstations, 256 KB, 64 MB, 155 Mb switch.
    pub fn c10() -> ClusterSpec {
        ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, NetworkKind::Atm155)
            .named("C10")
    }
    /// Table 4 — C11: 8 workstations, 512 KB, 64 MB, 155 Mb switch.
    pub fn c11() -> ClusterSpec {
        ClusterSpec::cluster(MachineSpec::new(1, 512, 64, 200.0), 8, NetworkKind::Atm155)
            .named("C11")
    }

    /// Table 5 — C12: 2 × 2P SMPs, 256 KB, 64 MB, 10 Mb bus.
    pub fn c12() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(2, 256, 64, 200.0),
            2,
            NetworkKind::Ethernet10,
        )
        .named("C12")
    }
    /// Table 5 — C13: 2 × 2P SMPs, 256 KB, 128 MB, 100 Mb bus.
    pub fn c13() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(2, 256, 128, 200.0),
            2,
            NetworkKind::Ethernet100,
        )
        .named("C13")
    }
    /// Table 5 — C14: 2 × 4P SMPs, 256 KB, 128 MB, 100 Mb bus.
    pub fn c14() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(4, 256, 128, 200.0),
            2,
            NetworkKind::Ethernet100,
        )
        .named("C14")
    }
    /// Table 5 — C15: 2 × 4P SMPs, 256 KB, 128 MB, 155 Mb switch.
    pub fn c15() -> ClusterSpec {
        ClusterSpec::cluster(MachineSpec::new(4, 256, 128, 200.0), 2, NetworkKind::Atm155)
            .named("C15")
    }

    /// Table 3's SMP configurations C1–C6.
    pub fn smp_configs() -> Vec<ClusterSpec> {
        vec![c1(), c2(), c3(), c4(), c5(), c6()]
    }
    /// Table 4's cluster-of-workstations configurations C7–C11.
    pub fn cow_configs() -> Vec<ClusterSpec> {
        vec![c7(), c8(), c9(), c10(), c11()]
    }
    /// Table 5's cluster-of-SMPs configurations C12–C15.
    pub fn clump_configs() -> Vec<ClusterSpec> {
        vec![c12(), c13(), c14(), c15()]
    }
    /// Every configuration C1–C15 in paper order.
    pub fn all_configs() -> Vec<ClusterSpec> {
        let mut v = smp_configs();
        v.extend(cow_configs());
        v.extend(clump_configs());
        v
    }

    /// Post-paper — N4: one 4P SMP, 256 KB, 128 MB, 2 NUMA domains with a
    /// 40-cycle remote-domain penalty (C5's geometry made NUMA-aware).
    pub fn n4() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0).with_numa(2, 40.0)).named("N4")
    }
    /// Post-paper — N8: one 8P SMP, 512 KB, 256 MB, 4 NUMA domains.
    pub fn n8() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::new(8, 512, 256, 200.0).with_numa(4, 40.0)).named("N8")
    }
    /// Post-paper — FT8: 8 workstations, 256 KB, 64 MB, 1 Gb fat tree
    /// (2 racks of 4).
    pub fn ft8() -> ClusterSpec {
        ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 8, NetworkKind::FatTree)
            .named("FT8")
    }
    /// Post-paper — FT16: 16 workstations, 512 KB, 64 MB, 1 Gb fat tree
    /// (4 racks of 4).
    pub fn ft16() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(1, 512, 64, 200.0),
            16,
            NetworkKind::FatTree,
        )
        .named("FT16")
    }
    /// Post-paper configurations: NUMA SMPs and fat-tree clusters.  Kept
    /// separate from [`all_configs`] so the paper's C1–C15 net is pinned.
    pub fn extended_configs() -> Vec<ClusterSpec> {
        vec![n4(), n8(), ft8(), ft16()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind;

    #[test]
    fn table2_constants() {
        let w = paper_workloads();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].name, "FFT");
        assert_eq!(w[0].locality.alpha, 1.21);
        assert_eq!(w[0].locality.beta, 103.26);
        assert_eq!(w[0].rho, 0.20);
        assert_eq!(w[2].name, "Radix");
        assert_eq!(w[2].rho, 0.37);
        assert_eq!(w[3].locality.alpha, 1.71);
    }

    #[test]
    fn tpcc_beta_is_ten_times_scientific() {
        // §5.2: TPC-C's β is over 10x any scientific program's.
        let t = workload_tpcc();
        for w in paper_workloads() {
            assert!(t.locality.beta > 10.0 * w.locality.beta);
        }
    }

    #[test]
    fn config_counts_and_names() {
        assert_eq!(configs::smp_configs().len(), 6);
        assert_eq!(configs::cow_configs().len(), 5);
        assert_eq!(configs::clump_configs().len(), 4);
        let all = configs::all_configs();
        assert_eq!(all.len(), 15);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.name.as_deref(), Some(format!("C{}", i + 1).as_str()));
            assert!(c.validate().is_ok(), "{:?}", c.name);
        }
    }

    #[test]
    fn config_platform_kinds() {
        for c in configs::smp_configs() {
            assert_eq!(c.platform(), PlatformKind::Smp);
        }
        for c in configs::cow_configs() {
            assert_eq!(c.platform(), PlatformKind::ClusterOfWorkstations);
        }
        for c in configs::clump_configs() {
            assert_eq!(c.platform(), PlatformKind::ClusterOfSmps);
        }
    }

    #[test]
    fn table5_geometry() {
        let c14 = configs::c14();
        assert_eq!(c14.machine.n_procs, 4);
        assert_eq!(c14.machines, 2);
        assert_eq!(c14.total_procs(), 8);
        assert_eq!(c14.network, Some(NetworkKind::Ethernet100));
    }

    #[test]
    fn extended_configs_validate_and_classify() {
        let ext = configs::extended_configs();
        assert_eq!(ext.len(), 4);
        for c in &ext {
            assert!(c.validate().is_ok(), "{:?}", c.name);
        }
        assert_eq!(configs::n4().platform(), PlatformKind::Smp);
        assert_eq!(configs::n4().machine.numa_domains(), 2);
        assert_eq!(configs::n8().machine.numa_domains(), 4);
        assert_eq!(
            configs::ft8().platform(),
            PlatformKind::ClusterOfWorkstations
        );
        assert_eq!(configs::ft16().machines, 16);
        assert_eq!(configs::ft8().network, Some(NetworkKind::FatTree));
        // The paper set stays exactly C1-C15.
        assert_eq!(configs::all_configs().len(), 15);
    }

    #[test]
    fn new_workloads_resolve_by_name() {
        for (name, expect) in [
            ("stencil4d", "Stencil4D"),
            ("Stream", "Stream"),
            ("GRAPHWALK", "GraphWalk"),
            ("inference", "Inference"),
        ] {
            let w = workload_by_name(name).expect(name);
            assert_eq!(w.name, expect);
            assert!(w.locality.alpha > 1.0, "{name} alpha must exceed 1");
            assert!(w.locality.footprint.is_some(), "{name} needs a footprint");
        }
        // Stream's measured fit drives beta to its floor: no reuse
        // beyond the cache line itself.
        let s = workload_stream().locality.beta;
        assert!(s < 1.1, "stream beta {s} should sit at the fit floor");
    }

    #[test]
    fn footprints_fit_in_paper_memories() {
        // Every kernel's data fits in even the smallest studied memory
        // (32 MB), so disk traffic in a paging simulator is cold-miss only.
        for w in paper_workloads() {
            let fp = w.locality.footprint.unwrap();
            assert!(fp < 32.0 * 1024.0 * 1024.0, "{} footprint {fp}", w.name);
        }
    }
}
