//! Cluster specifications and platform classification (paper §2, Table 1).

use crate::error::ModelError;
use crate::machine::{MachineSpec, NetworkKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three (plus uniprocessor) platform families of the paper's Table 1,
/// distinguished by which gray blocks of the Figure-1 hierarchy they add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// One machine, one processor: no extra hierarchy levels.
    Uniprocessor,
    /// A single SMP: adds gray block A (intra-machine shared memory).
    Smp,
    /// A cluster of workstations: adds gray blocks B and C (remote memory
    /// and remote disks over the cluster network).
    ClusterOfWorkstations,
    /// A cluster of SMPs: adds gray blocks A, B and C.
    ClusterOfSmps,
}

impl PlatformKind {
    /// The paper's Table-1 description of which memory levels the platform
    /// adds on top of cache/local-memory/local-disk.
    pub fn additional_levels(&self) -> &'static str {
        match self {
            PlatformKind::Uniprocessor => "none",
            PlatformKind::Smp => "gray block A",
            PlatformKind::ClusterOfWorkstations => "gray blocks B and C",
            PlatformKind::ClusterOfSmps => "gray blocks A, B, and C",
        }
    }

    /// Number of memory-hierarchy levels `k` seen by one processor
    /// (paper Figure 1): uniprocessor 3 (cache/memory/disk), SMP 3 (its
    /// shared memory is level 2), clusters 5 (adds remote memory and
    /// remote disk).
    pub fn hierarchy_length(&self) -> u32 {
        match self {
            PlatformKind::Uniprocessor | PlatformKind::Smp => 3,
            PlatformKind::ClusterOfWorkstations | PlatformKind::ClusterOfSmps => 5,
        }
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformKind::Uniprocessor => write!(f, "uniprocessor"),
            PlatformKind::Smp => write!(f, "a single SMP"),
            PlatformKind::ClusterOfWorkstations => write!(f, "a cluster of workstations"),
            PlatformKind::ClusterOfSmps => write!(f, "a cluster of SMPs"),
        }
    }
}

/// A complete homogeneous cluster: `machines` identical machines connected
/// by `network` (None for a single machine, which needs no cluster network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// The per-machine specification.
    pub machine: MachineSpec,
    /// Number of machines `N` in the cluster.
    pub machines: u32,
    /// Cluster network (Networks 2/3 of Figure 1); required when
    /// `machines > 1`.
    pub network: Option<NetworkKind>,
    /// Optional human-readable configuration name (e.g. `"C5"`).
    pub name: Option<String>,
}

impl ClusterSpec {
    /// A single machine (SMP or uniprocessor).
    pub fn single(machine: MachineSpec) -> Self {
        ClusterSpec {
            machine,
            machines: 1,
            network: None,
            name: None,
        }
    }

    /// A cluster of `machines` identical machines over `network`.
    pub fn cluster(machine: MachineSpec, machines: u32, network: NetworkKind) -> Self {
        ClusterSpec {
            machine,
            machines,
            network: Some(network),
            name: None,
        }
    }

    /// Builder-style: attach a configuration name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Total processor count `q = n·N`.
    pub fn total_procs(&self) -> u32 {
        self.machine.n_procs * self.machines
    }

    /// Aggregate memory across the cluster, in bytes.
    pub fn total_memory_bytes(&self) -> u64 {
        self.machine.memory_bytes * self.machines as u64
    }

    /// Classify per the paper's Table 1.
    pub fn platform(&self) -> PlatformKind {
        match (self.machines, self.machine.n_procs) {
            (0, _) | (_, 0) => PlatformKind::Uniprocessor, // caught by validate()
            (1, 1) => PlatformKind::Uniprocessor,
            (1, _) => PlatformKind::Smp,
            (_, 1) => PlatformKind::ClusterOfWorkstations,
            (_, _) => PlatformKind::ClusterOfSmps,
        }
    }

    /// Structural validation: machine sanity, machine count, network
    /// presence for multi-machine clusters.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.machine.validate()?;
        if self.machines == 0 {
            return Err(ModelError::InvalidSpec("cluster with 0 machines".into()));
        }
        if self.machines > 1 && self.network.is_none() {
            return Err(ModelError::MissingNetwork);
        }
        Ok(())
    }

    /// Short human-readable description, e.g.
    /// `"C9: 4 x (1P, 512KB, 64MB) over 100Mb bus"`.
    pub fn describe(&self) -> String {
        let m = &self.machine;
        let base = format!(
            "{} x ({}P, {}KB, {}MB)",
            self.machines,
            m.n_procs,
            m.cache_bytes / 1024,
            m.memory_bytes / (1024 * 1024)
        );
        let net = match self.network {
            Some(n) if self.machines > 1 => format!(" over {n}"),
            _ => String::new(),
        };
        match &self.name {
            Some(name) => format!("{name}: {base}{net}"),
            None => format!("{base}{net}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> MachineSpec {
        MachineSpec::new(1, 256, 64, 200.0)
    }
    fn smp(n: u32) -> MachineSpec {
        MachineSpec::new(n, 256, 128, 200.0)
    }

    #[test]
    fn classification_matches_table1() {
        assert_eq!(
            ClusterSpec::single(ws()).platform(),
            PlatformKind::Uniprocessor
        );
        assert_eq!(ClusterSpec::single(smp(2)).platform(), PlatformKind::Smp);
        assert_eq!(
            ClusterSpec::cluster(ws(), 4, NetworkKind::Ethernet100).platform(),
            PlatformKind::ClusterOfWorkstations
        );
        assert_eq!(
            ClusterSpec::cluster(smp(2), 2, NetworkKind::Atm155).platform(),
            PlatformKind::ClusterOfSmps
        );
    }

    #[test]
    fn table1_additional_levels_text() {
        assert_eq!(PlatformKind::Smp.additional_levels(), "gray block A");
        assert_eq!(
            PlatformKind::ClusterOfWorkstations.additional_levels(),
            "gray blocks B and C"
        );
        assert_eq!(
            PlatformKind::ClusterOfSmps.additional_levels(),
            "gray blocks A, B, and C"
        );
    }

    #[test]
    fn hierarchy_lengths() {
        assert_eq!(PlatformKind::Smp.hierarchy_length(), 3);
        assert_eq!(PlatformKind::ClusterOfSmps.hierarchy_length(), 5);
    }

    #[test]
    fn totals() {
        let c = ClusterSpec::cluster(smp(4), 2, NetworkKind::Ethernet100);
        assert_eq!(c.total_procs(), 8);
        assert_eq!(c.total_memory_bytes(), 2 * 128 * 1024 * 1024);
    }

    #[test]
    fn validation_requires_network_for_clusters() {
        let mut c = ClusterSpec::cluster(ws(), 4, NetworkKind::Ethernet10);
        assert!(c.validate().is_ok());
        c.network = None;
        assert_eq!(c.validate(), Err(ModelError::MissingNetwork));
        c.machines = 1;
        assert!(c.validate().is_ok(), "single machine needs no network");
    }

    #[test]
    fn validation_rejects_zero_machines() {
        let mut c = ClusterSpec::single(ws());
        c.machines = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn describe_contains_essentials() {
        let c = ClusterSpec::cluster(ws(), 4, NetworkKind::Ethernet100).named("C8");
        let d = c.describe();
        assert!(d.contains("C8"), "{d}");
        assert!(d.contains("4 x"), "{d}");
        assert!(d.contains("256KB"), "{d}");
        assert!(d.contains("100Mb bus"), "{d}");
        // Single machine omits the network clause.
        let s = ClusterSpec::single(smp(2)).describe();
        assert!(!s.contains("over"), "{s}");
    }
}
