//! Sensitivity analysis of `E(Instr)` to the architectural factors — the
//! quantitative backing for the paper's abstract claim that *"the length
//! of memory hierarchy is the most sensitive factor to affect the
//! execution time for many types of workloads."*
//!
//! Each factor is perturbed around a baseline cluster and the elasticity
//! `(ΔE/E) / (Δx/x)` is reported, plus a discrete "hierarchy-length"
//! factor comparing platform families at equal processor count and
//! aggregate memory.

use crate::locality::WorkloadParams;
use crate::machine::{MachineSpec, NetworkKind};
use crate::model::AnalyticModel;
use crate::platform::ClusterSpec;
use serde::{Deserialize, Serialize};

/// One factor's measured effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorSensitivity {
    /// Factor name.
    pub factor: String,
    /// Baseline `E(Instr)` in seconds.
    pub baseline_seconds: f64,
    /// Perturbed `E(Instr)` in seconds.
    pub perturbed_seconds: f64,
    /// Relative change of E per relative change of the factor
    /// (elasticity; sign kept: negative = improving the factor reduces E).
    pub elasticity: f64,
}

/// The discrete hierarchy-length comparison (3-level SMP vs 5-level
/// cluster at equal `q` and aggregate memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyLengthEffect {
    /// `E(Instr)` on the single SMP (3 levels).
    pub smp_seconds: f64,
    /// `E(Instr)` on the cluster of workstations (5 levels), best network.
    pub cow_seconds: f64,
    /// `cow / smp` — how much the two extra levels cost.
    pub ratio: f64,
}

/// Full sensitivity report for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Workload name.
    pub workload: String,
    /// Continuous factors, sorted by |elasticity| descending.
    pub factors: Vec<FactorSensitivity>,
    /// The discrete hierarchy-length effect.
    pub hierarchy: HierarchyLengthEffect,
}

impl SensitivityReport {
    /// The most sensitive continuous factor.
    pub fn dominant_factor(&self) -> &str {
        &self.factors[0].factor
    }
}

/// Compute elasticities of `E(Instr)` around `baseline` for `workload`:
/// cache size, memory size, processor clock, network service time (via the
/// model's latency table), and machine count.
pub fn analyze(
    model: &AnalyticModel,
    baseline: &ClusterSpec,
    workload: &WorkloadParams,
) -> SensitivityReport {
    let e0 = model.evaluate_or_inf(baseline, workload);
    let bump = 0.25; // 25% perturbations
    let mut factors = Vec::new();

    let push = |factors: &mut Vec<FactorSensitivity>, name: &str, e1: f64, dx: f64| {
        if e0.is_finite() && e1.is_finite() && e0 > 0.0 {
            factors.push(FactorSensitivity {
                factor: name.to_string(),
                baseline_seconds: e0,
                perturbed_seconds: e1,
                elasticity: ((e1 - e0) / e0) / dx,
            });
        }
    };

    // Cache capacity +25%.
    let mut c = baseline.clone();
    c.machine.cache_bytes = (baseline.machine.cache_bytes as f64 * (1.0 + bump)) as u64;
    push(
        &mut factors,
        "cache capacity",
        model.evaluate_or_inf(&c, workload),
        bump,
    );

    // Memory capacity +25%.
    let mut c = baseline.clone();
    c.machine.memory_bytes = (baseline.machine.memory_bytes as f64 * (1.0 + bump)) as u64;
    push(
        &mut factors,
        "memory capacity",
        model.evaluate_or_inf(&c, workload),
        bump,
    );

    // Clock +25%.
    let mut c = baseline.clone();
    c.machine.clock_hz = baseline.machine.clock_hz * (1.0 + bump);
    push(
        &mut factors,
        "processor clock",
        model.evaluate_or_inf(&c, workload),
        bump,
    );

    // Network service −25% (faster network): scale the latency table.
    if baseline.network.is_some() {
        let mut m = model.clone();
        for v in m
            .latencies
            .remote_node_cow
            .iter_mut()
            .chain(m.latencies.remote_cached_cow.iter_mut())
            .chain(m.latencies.remote_node_clump.iter_mut())
            .chain(m.latencies.remote_cached_clump.iter_mut())
        {
            *v *= 1.0 - bump;
        }
        push(
            &mut factors,
            "network speed",
            m.evaluate_or_inf(baseline, workload),
            // E should fall as the network gets faster; express the factor
            // change as +25% speed.
            bump,
        );
    }

    // Machine count +1 (relative change 1/N).
    if baseline.machines > 1 {
        let mut c = baseline.clone();
        c.machines += 1;
        push(
            &mut factors,
            "machine count",
            model.evaluate_or_inf(&c, workload),
            1.0 / baseline.machines as f64,
        );
    }

    factors.sort_by(|a, b| b.elasticity.abs().total_cmp(&a.elasticity.abs()));

    // Hierarchy length: q processors as one SMP (clamped to the 4-way
    // market limit) vs q workstations on the best network, equal aggregate
    // memory.
    let q = baseline.total_procs().clamp(2, 4);
    let agg_mem_mb = (baseline.total_memory_bytes() / (1024 * 1024)).max(64);
    let smp = ClusterSpec::single(MachineSpec::new(
        q,
        baseline.machine.cache_bytes / 1024,
        agg_mem_mb,
        baseline.machine.clock_hz / 1e6,
    ));
    let cow = ClusterSpec::cluster(
        MachineSpec::new(
            1,
            baseline.machine.cache_bytes / 1024,
            (agg_mem_mb / q as u64).max(32),
            baseline.machine.clock_hz / 1e6,
        ),
        q,
        NetworkKind::Atm155,
    );
    let (es, ec) = (
        model.evaluate_or_inf(&smp, workload),
        model.evaluate_or_inf(&cow, workload),
    );
    SensitivityReport {
        workload: workload.name.clone(),
        factors,
        hierarchy: HierarchyLengthEffect {
            smp_seconds: es,
            cow_seconds: ec,
            ratio: ec / es,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    fn cow_baseline() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 64, 200.0),
            4,
            NetworkKind::Ethernet100,
        )
    }

    #[test]
    fn produces_all_factors_for_cluster() {
        let r = analyze(
            &AnalyticModel::default(),
            &cow_baseline(),
            &params::workload_fft(),
        );
        let names: Vec<&str> = r.factors.iter().map(|f| f.factor.as_str()).collect();
        assert!(names.contains(&"cache capacity"));
        assert!(names.contains(&"memory capacity"));
        assert!(names.contains(&"processor clock"));
        assert!(names.contains(&"network speed"));
        assert!(names.contains(&"machine count"));
    }

    #[test]
    fn clock_elasticity_is_negative() {
        // A faster clock reduces E(Instr).
        let r = analyze(
            &AnalyticModel::default(),
            &cow_baseline(),
            &params::workload_lu(),
        );
        let clock = r
            .factors
            .iter()
            .find(|f| f.factor == "processor clock")
            .unwrap();
        assert!(clock.elasticity < 0.0, "{clock:?}");
    }

    #[test]
    fn faster_network_reduces_e_for_cluster() {
        let r = analyze(
            &AnalyticModel::default(),
            &cow_baseline(),
            &params::workload_fft(),
        );
        let net = r
            .factors
            .iter()
            .find(|f| f.factor == "network speed")
            .unwrap();
        assert!(net.perturbed_seconds < net.baseline_seconds, "{net:?}");
    }

    #[test]
    fn hierarchy_length_penalizes_clusters() {
        // The headline claim: the 5-level platform is slower than the
        // 3-level SMP at equal q for the paper's kernels.
        for w in params::paper_workloads() {
            let r = analyze(&AnalyticModel::default(), &cow_baseline(), &w);
            assert!(
                r.hierarchy.ratio > 1.0,
                "{}: hierarchy ratio {}",
                w.name,
                r.hierarchy.ratio
            );
        }
    }

    #[test]
    fn factors_sorted_by_magnitude() {
        let r = analyze(
            &AnalyticModel::default(),
            &cow_baseline(),
            &params::workload_radix(),
        );
        for w in r.factors.windows(2) {
            assert!(w[0].elasticity.abs() >= w[1].elasticity.abs());
        }
        assert!(!r.dominant_factor().is_empty());
    }

    #[test]
    fn smp_baseline_skips_network_factor() {
        let smp = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
        let r = analyze(&AnalyticModel::default(), &smp, &params::workload_fft());
        assert!(r.factors.iter().all(|f| f.factor != "network speed"));
        assert!(r.factors.iter().all(|f| f.factor != "machine count"));
    }
}
