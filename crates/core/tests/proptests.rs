//! Property-based tests of the analytic model's invariants.

use memhier_core::contention::{barrier_wait, harmonic, md1_response};
use memhier_core::locality::{Locality, WorkloadParams};
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::model::{AnalyticModel, ArrivalModel, TailMode};
use memhier_core::platform::ClusterSpec;
use proptest::prelude::*;

fn locality_strategy() -> impl Strategy<Value = Locality> {
    (1.01f64..3.0, 2.0f64..5000.0).prop_map(|(alpha, beta)| Locality::new(alpha, beta).unwrap())
}

fn workload_strategy() -> impl Strategy<Value = WorkloadParams> {
    (1.01f64..3.0, 2.0f64..5000.0, 0.01f64..0.9)
        .prop_map(|(a, b, r)| WorkloadParams::new("prop", a, b, r).unwrap())
}

fn cluster_strategy() -> impl Strategy<Value = ClusterSpec> {
    (
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![Just(256u64), Just(512)],
        prop_oneof![Just(32u64), Just(64), Just(128)],
        1u32..=8,
        prop_oneof![
            Just(NetworkKind::Ethernet10),
            Just(NetworkKind::Ethernet100),
            Just(NetworkKind::Atm155)
        ],
    )
        .prop_map(|(n, ckb, mmb, nn, net)| {
            let m = MachineSpec::new(n, ckb, mmb, 200.0);
            if nn == 1 {
                ClusterSpec::single(m)
            } else {
                ClusterSpec::cluster(m, nn, net)
            }
        })
}

proptest! {
    #[test]
    fn cdf_monotone_nondecreasing(loc in locality_strategy(), x in 0.0f64..1e9, dx in 0.0f64..1e9) {
        prop_assert!(loc.cdf_raw(x + dx) + 1e-12 >= loc.cdf_raw(x));
    }

    #[test]
    fn cdf_and_tail_partition_unity(loc in locality_strategy(), x in 0.0f64..1e9) {
        let s = loc.cdf_raw(x) + loc.tail(x);
        prop_assert!((s - 1.0).abs() < 1e-9, "sum {s}");
    }

    #[test]
    fn tail_monotone_in_processors(loc in locality_strategy(), s in 1.0f64..1e8, q in 1u32..32) {
        // More processors never increase the per-process miss tail.
        prop_assert!(loc.tail_scaled(s, q + 1) <= loc.tail_scaled(s, q) + 1e-12);
    }

    #[test]
    fn truncated_tail_never_exceeds_raw(
        loc in locality_strategy(),
        s in 1.0f64..1e8,
        w in 1e3f64..1e9,
    ) {
        let mut tr = loc;
        tr.footprint = Some(w);
        prop_assert!(tr.tail(s) <= loc.tail(s) + 1e-12);
        prop_assert!(tr.tail(s) >= 0.0);
    }

    #[test]
    fn md1_response_at_least_service(service in 0.1f64..1e5, util in 0.0f64..0.99) {
        let arrival = util / service;
        let r = md1_response(service, arrival).unwrap();
        prop_assert!(r >= service - 1e-9);
        // And it's finite below saturation.
        prop_assert!(r.is_finite());
    }

    #[test]
    fn md1_monotone_in_arrival(service in 0.1f64..1e4, u1 in 0.0f64..0.98, du in 0.0f64..0.01) {
        let r1 = md1_response(service, u1 / service).unwrap();
        let r2 = md1_response(service, (u1 + du) / service).unwrap();
        prop_assert!(r2 + 1e-9 >= r1);
    }

    #[test]
    fn md1_never_nan_or_negative(service in -10.0f64..1e5, arrival in -0.1f64..10.0) {
        // Over a domain that includes negative (illegal) inputs and every
        // utilization regime, the answer is either None or a finite,
        // non-negative response — Some(NaN) must be unrepresentable.
        if let Some(r) = md1_response(service, arrival) {
            prop_assert!(r.is_finite() && r >= 0.0, "md1({service}, {arrival}) = {r}");
        }
    }

    #[test]
    fn open_model_is_typed_error_or_finite_never_nan(
        w in workload_strategy(),
        c in cluster_strategy(),
    ) {
        // The open-arrival model may saturate, but saturation is a typed
        // ModelError — an Ok prediction is always finite and positive.
        let open = AnalyticModel { arrival: ArrivalModel::Open, ..AnalyticModel::default() };
        match open.evaluate(&c, &w) {
            Ok(p) => {
                prop_assert!(p.e_instr_seconds.is_finite() && p.e_instr_seconds > 0.0);
                prop_assert!(!p.t_cycles.is_nan());
                for l in &p.levels {
                    prop_assert!(!l.effective_cycles.is_nan(), "{}", l.name);
                }
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn harmonic_increments(n in 1u32..1000) {
        let h1 = harmonic(n);
        let h2 = harmonic(n + 1);
        prop_assert!((h2 - h1 - 1.0 / (n + 1) as f64).abs() < 1e-12);
    }

    #[test]
    fn barrier_wait_nonnegative_and_monotone(n in 2u32..64, rate in 1e-9f64..1e-3) {
        prop_assert!(barrier_wait(n, rate) >= 0.0);
        prop_assert!(barrier_wait(n + 1, rate) >= barrier_wait(n, rate));
    }

    #[test]
    fn model_always_finite_self_consistent(
        w in workload_strategy(),
        c in cluster_strategy(),
    ) {
        let model = AnalyticModel::default();
        let p = model.evaluate(&c, &w);
        // The self-consistent model must converge on any sane input.
        let p = p.expect("self-consistent model converges");
        prop_assert!(p.e_instr_seconds.is_finite() && p.e_instr_seconds > 0.0);
        prop_assert!(p.t_cycles >= 1.0, "T at least the cache-hit cycle");
        for l in &p.levels {
            prop_assert!(l.utilization < 1.0, "{}: {}", l.name, l.utilization);
            prop_assert!(l.effective_cycles + 1e-9 >= l.service_cycles);
            prop_assert!((0.0..=1.0).contains(&l.reach_prob));
        }
    }

    #[test]
    fn open_model_never_beats_uncontended(
        w in workload_strategy(),
        c in cluster_strategy(),
    ) {
        // When the open model converges, its prediction is at least the
        // contention-free one.
        let open = AnalyticModel { arrival: ArrivalModel::Open, ..AnalyticModel::default() };
        if let Ok(p) = open.evaluate(&c, &w) {
            let mut free = w.clone();
            free.barrier_per_instr = 0.0;
            // Uncontended lower bound: every level at raw service time.
            let lower: f64 = p
                .levels
                .iter()
                .map(|l| l.reach_prob * l.service_cycles)
                .sum();
            prop_assert!(p.t_cycles + 1e-9 >= lower);
        }
    }

    #[test]
    fn e_instr_scales_down_with_machines_for_private_levels(
        w in workload_strategy(),
        nn in 1u32..=7,
    ) {
        // EDGE-like workloads (zero sharing) on a switch network: adding a
        // machine never slows the self-consistent prediction by more than
        // the barrier effect; we check the weaker invariant that E stays
        // finite and positive while q grows.
        let model = AnalyticModel::default();
        let m = MachineSpec::new(1, 256, 64, 200.0);
        let c1 = if nn == 1 {
            ClusterSpec::single(m)
        } else {
            ClusterSpec::cluster(m, nn, NetworkKind::Atm155)
        };
        let e = model.evaluate_or_inf(&c1, &w);
        prop_assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn tail_mode_truncation_only_reduces_prediction(
        w in workload_strategy(),
        c in cluster_strategy(),
        footprint in 1e4f64..1e8,
    ) {
        let w = w.with_footprint(footprint);
        let raw = AnalyticModel { tail_mode: TailMode::Untruncated, ..AnalyticModel::default() };
        let tr = AnalyticModel { tail_mode: TailMode::Truncated, ..AnalyticModel::default() };
        let (er, et) = (raw.evaluate_or_inf(&c, &w), tr.evaluate_or_inf(&c, &w));
        if er.is_finite() && et.is_finite() {
            prop_assert!(et <= er + er * 1e-9, "truncated {et} vs raw {er}");
        }
    }
}
