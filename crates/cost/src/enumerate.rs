//! The candidate configuration space (§4: "we can determine these integer
//! variables and solve the optimization problem by enumerating solutions").

use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;

/// The space of cluster configurations the optimizer enumerates.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSpace {
    /// Processor counts per machine on offer (paper: 1, 2, 4).
    pub proc_counts: Vec<u32>,
    /// Cache sizes in KB (paper: 256, 512).
    pub cache_kb: Vec<u64>,
    /// Memory sizes in MB (paper: 32, 64, 128).
    pub memory_mb: Vec<u64>,
    /// Machine counts to consider.
    pub max_machines: u32,
    /// Networks on offer.
    pub networks: Vec<NetworkKind>,
    /// CPU clock in MHz (paper: 200 everywhere).
    pub clock_mhz: f64,
}

impl CandidateSpace {
    /// The paper's full market: 1/2/4-way machines, 256/512 KB caches,
    /// 32/64/128 MB memories, up to 16 machines, all three networks.
    pub fn paper_market() -> Self {
        CandidateSpace {
            proc_counts: vec![1, 2, 4],
            cache_kb: vec![256, 512],
            memory_mb: vec![32, 64, 128],
            max_machines: 16,
            networks: NetworkKind::ALL.to_vec(),
            clock_mhz: 200.0,
        }
    }

    /// All candidate clusters (single machines carry no network; N > 1
    /// pairs with every network kind).
    pub fn candidates(&self) -> Vec<ClusterSpec> {
        let mut out = Vec::new();
        for &n in &self.proc_counts {
            for &ckb in &self.cache_kb {
                for &mmb in &self.memory_mb {
                    let machine = MachineSpec::new(n, ckb, mmb, self.clock_mhz);
                    out.push(ClusterSpec::single(machine));
                    for nn in 2..=self.max_machines {
                        for &net in &self.networks {
                            out.push(ClusterSpec::cluster(machine, nn, net));
                        }
                    }
                }
            }
        }
        out
    }

    /// Size of the enumeration (for reporting).
    pub fn len(&self) -> usize {
        self.proc_counts.len()
            * self.cache_kb.len()
            * self.memory_mb.len()
            * (1 + (self.max_machines.saturating_sub(1) as usize) * self.networks.len())
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CandidateSpace {
    /// The paper market.
    fn default() -> Self {
        Self::paper_market()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_count_matches_len() {
        let s = CandidateSpace::paper_market();
        assert_eq!(s.candidates().len(), s.len());
        // 3 procs × 2 caches × 3 mems × (1 + 15×3) = 18 × 46 = 828.
        assert_eq!(s.len(), 828);
    }

    #[test]
    fn all_candidates_valid() {
        for c in CandidateSpace::paper_market().candidates() {
            assert!(c.validate().is_ok(), "{c:?}");
        }
    }

    #[test]
    fn includes_paper_configs() {
        // C5 (4P SMP 256 KB / 128 MB) and C10 (4 ws / ATM) must be in the
        // space, modulo names.
        let cands = CandidateSpace::paper_market().candidates();
        assert!(cands.iter().any(|c| c.machines == 1
            && c.machine.n_procs == 4
            && c.machine.memory_bytes == 128 << 20));
        assert!(cands.iter().any(|c| c.machines == 4
            && c.machine.n_procs == 1
            && c.network == Some(NetworkKind::Atm155)));
    }

    #[test]
    fn singles_have_no_network() {
        for c in CandidateSpace::paper_market().candidates() {
            if c.machines == 1 {
                assert!(c.network.is_none());
            } else {
                assert!(c.network.is_some());
            }
        }
    }
}
