//! # memhier-cost
//!
//! The paper's cost model and optimizers (§4 eqs. 5–6, §6, and the §7
//! tool (3) "generation of all possible cluster configurations meeting the
//! budget requirements"):
//!
//! * [`prices`] — a c.-1999 component price table (reconstructed;
//!   DESIGN.md substitution 4) and the cluster cost function
//!   `C = N·C_machine(n) + N·C_net` (eq. 5).
//! * [`enumerate`] — the candidate configuration space.
//! * [`mod@optimize`] — exhaustive budget-constrained minimization of
//!   `E(Instr)` (eq. 6), parallelized with Rayon.
//! * [`upgrade`] — the §6 upgrade planner: best spend of a budget
//!   *increase* on an existing cluster.
//! * [`mod@recommend`] — the §6 qualitative recommendation rules
//!   (ρ × β classification → platform advice).
//! * [`wire`] — the typed request/response wire format behind `memhier
//!   optimize`/`recommend` and `memhierd`'s `/v1/optimize` and
//!   `/v1/recommend` (fixed-point JSON, unknown-field rejection,
//!   [`CostError`]).

pub mod enumerate;
pub mod optimize;
pub mod prices;
pub mod recommend;
pub mod sweep;
pub mod upgrade;
pub mod wire;

pub use enumerate::CandidateSpace;
pub use optimize::{
    analyze, analyze_eval, evaluate_space, optimize, pareto_frontier, RankedConfig, SpaceEvaluation,
};
pub use prices::PriceTable;
pub use recommend::{recommend, recommendation_json, Recommendation, RecommendedPlatform};
pub use sweep::{render_map, sweep, PlatformClass, SweepCell};
pub use upgrade::{plan_upgrade, UpgradePlan};
pub use wire::{
    network_by_name, network_name, CostError, OptimizeReport, OptimizeRequest, RankedEntry,
    RecommendReport, RecommendRequest, SearchStats, SimConfirmation, WorkloadSpec,
};
