//! Budget-constrained optimization (paper eq. 6):
//! minimize `E(Instr)` subject to `C_cluster ≤ B`.
//!
//! The space is small (hundreds of configurations), so we follow the paper
//! and enumerate exhaustively; Rayon parallelizes the model evaluations
//! across candidates (the per-candidate work is a closed-form evaluation
//! plus a short fixed-point solve).

use crate::enumerate::CandidateSpace;
use crate::prices::PriceTable;
use crate::wire::{CostError, OptimizeReport, OptimizeRequest, RankedEntry, SearchStats};
use memhier_core::locality::WorkloadParams;
use memhier_core::model::AnalyticModel;
use memhier_core::platform::ClusterSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedConfig {
    /// The cluster.
    pub spec: ClusterSpec,
    /// Its cost in dollars.
    pub cost: f64,
    /// Predicted `E(Instr)` in seconds (∞ = model rejected/saturated).
    pub e_instr_seconds: f64,
}

/// Where one candidate of the grid landed during evaluation.
enum Tally {
    Unpriced,
    OverBudget,
    ModelRejected,
    SloFiltered,
    Feasible(RankedConfig),
}

/// A fully evaluated candidate space: the ranked feasible survivors,
/// their Pareto frontier, and the counted fate of every candidate.
#[derive(Debug, Clone)]
pub struct SpaceEvaluation {
    /// Feasible candidates, best predicted `E(Instr)` first (ties broken
    /// by lower cost).
    pub feasible: Vec<RankedConfig>,
    /// Cost/performance Pareto frontier of the feasible set, cost
    /// ascending and `E(Instr)` strictly descending.
    pub pareto: Vec<RankedConfig>,
    /// Where every candidate went (`confirmed` still 0 at this stage —
    /// simulation confirmation happens in `memhier-bench`).
    pub stats: SearchStats,
}

/// Evaluate every candidate of `space` against `budget`, an optional
/// `slo` (max model-predicted seconds), `workload`, and `prices` in one
/// parallel pass.  Nothing is silently dropped: a candidate the market
/// cannot price, an over-budget cluster, a model-rejected config, and an
/// SLO miss are each counted in [`SearchStats`].
pub fn evaluate_space(
    budget: f64,
    slo: Option<f64>,
    workload: &WorkloadParams,
    model: &AnalyticModel,
    prices: &PriceTable,
    space: &CandidateSpace,
) -> SpaceEvaluation {
    let tallies: Vec<Tally> = space
        .candidates()
        .into_par_iter()
        .map(|spec| {
            let Some(cost) = prices.cluster_cost(&spec) else {
                return Tally::Unpriced;
            };
            if cost > budget {
                return Tally::OverBudget;
            }
            let e = model.evaluate_or_inf(&spec, workload);
            if !e.is_finite() {
                return Tally::ModelRejected;
            }
            if slo.is_some_and(|max| e > max) {
                return Tally::SloFiltered;
            }
            Tally::Feasible(RankedConfig {
                spec,
                cost,
                e_instr_seconds: e,
            })
        })
        .collect();

    let mut stats = SearchStats {
        candidates: tallies.len(),
        unpriced: 0,
        over_budget: 0,
        model_rejected: 0,
        slo_filtered: 0,
        feasible: 0,
        confirmed: 0,
        pruning_ratio: 0.0,
    };
    let mut feasible = Vec::new();
    for t in tallies {
        match t {
            Tally::Unpriced => stats.unpriced += 1,
            Tally::OverBudget => stats.over_budget += 1,
            Tally::ModelRejected => stats.model_rejected += 1,
            Tally::SloFiltered => stats.slo_filtered += 1,
            Tally::Feasible(r) => feasible.push(r),
        }
    }
    stats.feasible = feasible.len();
    stats.set_confirmed(0);
    feasible.sort_by(|a, b| {
        a.e_instr_seconds
            .total_cmp(&b.e_instr_seconds)
            .then(a.cost.total_cmp(&b.cost))
    });
    let pareto = frontier_of(feasible.clone());
    SpaceEvaluation {
        feasible,
        pareto,
        stats,
    }
}

/// The Pareto frontier of an arbitrary evaluated set: sort by cost, keep
/// every config no cheaper config can match.
fn frontier_of(mut all: Vec<RankedConfig>) -> Vec<RankedConfig> {
    all.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(a.e_instr_seconds.total_cmp(&b.e_instr_seconds))
    });
    let mut frontier: Vec<RankedConfig> = Vec::new();
    let mut best = f64::INFINITY;
    for c in all {
        if c.e_instr_seconds < best {
            best = c.e_instr_seconds;
            frontier.push(c);
        }
    }
    frontier
}

/// Enumerate `space`, keep candidates within `budget`, evaluate the model
/// for `workload`, and return the survivors sorted by predicted
/// `E(Instr)` (ties broken by lower cost).
///
/// The first element, if any, is the optimizer's answer to the paper's
/// question 1: *"what is an optimal or a nearly optimal cluster platform
/// for cost-effective parallel computing under a given budget and a given
/// type of workload?"*  (Thin wrapper over [`evaluate_space`], which
/// additionally reports where every pruned candidate went.)
pub fn optimize(
    budget: f64,
    workload: &WorkloadParams,
    model: &AnalyticModel,
    prices: &PriceTable,
    space: &CandidateSpace,
) -> Vec<RankedConfig> {
    evaluate_space(budget, None, workload, model, prices, space).feasible
}

/// Run the analytic stage of an [`OptimizeRequest`] end to end: resolve
/// the workload, evaluate the grid, and assemble the [`OptimizeReport`]
/// (ranked shortlist, analytic `best`, feasible-set Pareto frontier,
/// pruning diagnostics).  Simulation confirmation of the finalists —
/// `confirm > 0` — is layered on by `memhier-bench`, which owns the
/// simulator; this function alone leaves `search.confirmed` at 0.
pub fn analyze(req: &OptimizeRequest) -> Result<OptimizeReport, CostError> {
    Ok(analyze_eval(req)?.0)
}

/// [`analyze`] returning the underlying [`SpaceEvaluation`] alongside
/// the report, so a confirmation stage can reach the concrete
/// [`ClusterSpec`]s of the ranked finalists (the report itself carries
/// only their flattened wire projection).
pub fn analyze_eval(req: &OptimizeRequest) -> Result<(OptimizeReport, SpaceEvaluation), CostError> {
    let w = req.workload.resolve()?;
    let eval = evaluate_space(
        req.budget,
        req.slo,
        &w,
        &AnalyticModel::default(),
        &req.prices,
        &req.search_space,
    );
    // The shortlist must show every simulated finalist, so it extends to
    // `confirm` when that exceeds `top`.
    let shortlist = req.top.max(req.confirm).min(eval.feasible.len());
    let ranked: Vec<RankedEntry> = eval.feasible[..shortlist]
        .iter()
        .map(RankedEntry::from_ranked)
        .collect();
    let best = ranked.first().cloned();
    let pareto = eval.pareto.iter().map(RankedEntry::from_ranked).collect();
    let report = OptimizeReport {
        workload: w.name.clone(),
        alpha: w.locality.alpha,
        beta: w.locality.beta,
        rho: w.rho,
        budget: req.budget,
        slo: req.slo,
        search: eval.stats.clone(),
        ranked,
        best,
        pareto,
    };
    Ok((report, eval))
}

/// The cost-vs-performance **Pareto frontier** of a candidate space: the
/// configurations that no cheaper configuration can match.  Useful when
/// the budget itself is negotiable — the frontier shows where extra
/// dollars stop buying meaningful speedup.  Returned sorted by cost
/// ascending (and, by construction, `E(Instr)` strictly descending).
pub fn pareto_frontier(
    workload: &WorkloadParams,
    model: &AnalyticModel,
    prices: &PriceTable,
    space: &CandidateSpace,
) -> Vec<RankedConfig> {
    let all: Vec<RankedConfig> = space
        .candidates()
        .into_par_iter()
        .filter_map(|spec| {
            let cost = prices.cluster_cost(&spec)?;
            let e = model.evaluate_or_inf(&spec, workload);
            if !e.is_finite() {
                return None;
            }
            Some(RankedConfig {
                spec,
                cost,
                e_instr_seconds: e,
            })
        })
        .collect();
    frontier_of(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fft() -> WorkloadParams {
        WorkloadParams::new("FFT", 1.21, 103.26, 0.20).unwrap()
    }
    fn lu() -> WorkloadParams {
        WorkloadParams::new("LU", 1.30, 90.27, 0.31).unwrap()
    }
    fn radix() -> WorkloadParams {
        WorkloadParams::new("Radix", 1.14, 120.84, 0.37).unwrap()
    }

    fn run(budget: f64, w: &WorkloadParams) -> Vec<RankedConfig> {
        optimize(
            budget,
            w,
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
            &CandidateSpace::paper_market(),
        )
    }

    #[test]
    fn respects_budget() {
        for r in run(5000.0, &fft()) {
            assert!(r.cost <= 5000.0);
        }
    }

    #[test]
    fn sorted_by_predicted_time() {
        let rs = run(20_000.0, &lu());
        assert!(!rs.is_empty());
        for w in rs.windows(2) {
            assert!(w[0].e_instr_seconds <= w[1].e_instr_seconds);
        }
    }

    #[test]
    fn five_k_budget_excludes_smps() {
        // §6 case 1: at $5,000 no SMP is affordable — every candidate is
        // workstation-based (n = 1).
        let rs = run(5000.0, &fft());
        assert!(!rs.is_empty());
        assert!(
            rs.iter().all(|r| r.spec.machine.n_procs == 1),
            "SMP leaked under $5k"
        );
    }

    #[test]
    fn lu_wants_more_machines_slower_net_than_fft() {
        // §6's FFT-vs-LU contrast: among genuinely parallel candidates
        // (N ≥ 2), LU (good locality) tolerates a slow network and buys
        // machine count, while FFT (poor locality) spends on the network.
        let budget = 12_000.0;
        let best_multi = |w: &WorkloadParams| {
            run(budget, w)
                .into_iter()
                .find(|r| r.spec.machines >= 2)
                .expect("a multi-machine candidate exists")
        };
        let lu_best = best_multi(&lu());
        let fft_best = best_multi(&fft());
        assert!(
            lu_best.spec.machines >= fft_best.spec.machines,
            "LU {} vs FFT {}",
            lu_best.spec.describe(),
            fft_best.spec.describe()
        );
        let bw = |r: &RankedConfig| r.spec.network.map(|n| n.mbps()).unwrap_or(0.0);
        assert!(
            bw(&lu_best) <= bw(&fft_best),
            "LU picked a faster network ({}) than FFT ({})",
            lu_best.spec.describe(),
            fft_best.spec.describe()
        );
    }

    #[test]
    fn bigger_budget_never_hurts() {
        let small = run(5000.0, &radix());
        let big = run(20_000.0, &radix());
        assert!(big[0].e_instr_seconds <= small[0].e_instr_seconds);
        assert!(big.len() > small.len());
    }

    #[test]
    fn zero_budget_buys_nothing() {
        assert!(run(0.0, &fft()).is_empty());
    }

    #[test]
    fn memory_bound_poor_locality_prefers_short_hierarchy() {
        // §6: Radix-class workloads should pick an SMP (or at worst a fast
        // switch cluster) over slow-Ethernet clusters at a budget where
        // SMPs are affordable.
        let rs = run(20_000.0, &radix());
        let best = &rs[0];
        let net_ok = best
            .spec
            .network
            .map(|n| n != memhier_core::machine::NetworkKind::Ethernet10)
            .unwrap_or(true);
        assert!(
            net_ok,
            "Radix should avoid 10Mb Ethernet: {}",
            best.spec.describe()
        );
    }
    #[test]
    fn pareto_frontier_is_monotone() {
        let f = pareto_frontier(
            &radix(),
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
            &CandidateSpace::paper_market(),
        );
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].cost < w[1].cost, "costs strictly increase");
            assert!(
                w[0].e_instr_seconds > w[1].e_instr_seconds,
                "E(Instr) strictly decreases along the frontier"
            );
        }
    }

    #[test]
    fn frontier_head_matches_cheapest_and_optimizer() {
        // The frontier's best-E point equals the unconstrained optimum.
        let model = AnalyticModel::default();
        let prices = PriceTable::circa_1999();
        let space = CandidateSpace::paper_market();
        let f = pareto_frontier(&fft(), &model, &prices, &space);
        let unconstrained = optimize(f64::INFINITY, &fft(), &model, &prices, &space);
        let best = f.last().unwrap();
        assert_eq!(best.e_instr_seconds, unconstrained[0].e_instr_seconds);
    }
}
