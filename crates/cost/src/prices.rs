//! Component prices and the cluster cost function (paper eq. 5).
//!
//! The paper's exact price list lives in its unavailable tech report; this
//! table is reconstructed from late-1998 market prices with the orderings
//! the paper asserts (DESIGN.md substitution 4):
//!
//! * an SMP box is "significantly more expensive than a normal cluster
//!   network connecting independent computer nodes" — a $5,000 budget
//!   cannot cover one (§6 case study 1);
//! * ATM NIC + switch port ≫ Fast-Ethernet NIC + hub port ≫ Ethernet.

use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Price table in dollars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTable {
    /// Uniprocessor workstation base (200 MHz CPU, chassis, 256 KB cache).
    pub ws_base: f64,
    /// 2-processor SMP box base (256 KB cache per processor).
    pub smp2_base: f64,
    /// 4-processor SMP box base.
    pub smp4_base: f64,
    /// Memory, per megabyte.
    pub mem_per_mb: f64,
    /// Upgrading one processor's cache from 256 KB to 512 KB.
    pub cache512_per_proc: f64,
    /// Per-machine 10 Mb Ethernet cost (NIC + hub port).
    pub eth10_per_machine: f64,
    /// Per-machine 100 Mb Fast Ethernet cost.
    pub eth100_per_machine: f64,
    /// Per-machine 155 Mb ATM cost (NIC + switch port).
    pub atm_per_machine: f64,
}

impl PriceTable {
    /// The reconstructed late-1998 price table used throughout the case
    /// studies.
    pub fn circa_1999() -> Self {
        PriceTable {
            ws_base: 1750.0,
            smp2_base: 5500.0,
            smp4_base: 11_000.0,
            mem_per_mb: 1.50,
            cache512_per_proc: 250.0,
            eth10_per_machine: 50.0,
            eth100_per_machine: 150.0,
            atm_per_machine: 750.0,
        }
    }

    /// `C_machine(n)`: one machine's cost.
    ///
    /// Returns `None` for processor counts the market of the paper's era
    /// does not offer (only 1, 2, 4).
    pub fn machine_cost(&self, m: &MachineSpec) -> Option<f64> {
        let base = match m.n_procs {
            1 => self.ws_base,
            2 => self.smp2_base,
            4 => self.smp4_base,
            _ => return None,
        };
        let cache = match m.cache_bytes {
            c if c == 256 * 1024 => 0.0,
            c if c == 512 * 1024 => self.cache512_per_proc * m.n_procs as f64,
            _ => return None,
        };
        let mem = self.mem_per_mb * (m.memory_bytes / (1024 * 1024)) as f64;
        Some(base + cache + mem)
    }

    /// `C_net`: per-machine network cost.
    pub fn network_cost(&self, net: NetworkKind) -> f64 {
        match net {
            NetworkKind::Ethernet10 => self.eth10_per_machine,
            NetworkKind::Ethernet100 => self.eth100_per_machine,
            NetworkKind::Atm155 => self.atm_per_machine,
            // `NetworkKind` is non_exhaustive; unknown media are priced as
            // the most expensive known one so the optimizer never
            // underestimates.
            _ => self.atm_per_machine,
        }
    }

    /// Eq. (5): `C_cluster = N·C_machine(n) + N·C_net` (the network term
    /// vanishing for a single machine).
    pub fn cluster_cost(&self, c: &ClusterSpec) -> Option<f64> {
        let m = self.machine_cost(&c.machine)?;
        let net = match (c.machines, c.network) {
            (1, _) => 0.0,
            (_, Some(k)) => self.network_cost(k),
            (_, None) => return None,
        };
        Some(c.machines as f64 * (m + net))
    }
}

impl Default for PriceTable {
    fn default() -> Self {
        Self::circa_1999()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(cache_kb: u64, mem_mb: u64) -> MachineSpec {
        MachineSpec::new(1, cache_kb, mem_mb, 200.0)
    }

    #[test]
    fn machine_costs() {
        let p = PriceTable::circa_1999();
        assert_eq!(p.machine_cost(&ws(256, 64)), Some(1750.0 + 96.0));
        assert_eq!(p.machine_cost(&ws(512, 64)), Some(1750.0 + 250.0 + 96.0));
        let smp = MachineSpec::new(4, 512, 128, 200.0);
        assert_eq!(p.machine_cost(&smp), Some(11_000.0 + 1000.0 + 192.0));
        // Unavailable processor counts and cache sizes.
        assert_eq!(p.machine_cost(&MachineSpec::new(3, 256, 64, 200.0)), None);
        assert_eq!(p.machine_cost(&MachineSpec::new(1, 128, 64, 200.0)), None);
    }

    #[test]
    fn cluster_cost_includes_network_per_machine() {
        let p = PriceTable::circa_1999();
        let c = ClusterSpec::cluster(ws(256, 64), 4, NetworkKind::Ethernet100);
        assert_eq!(p.cluster_cost(&c), Some(4.0 * (1846.0 + 150.0)));
        // Single machine pays no network.
        let s = ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0));
        assert_eq!(p.cluster_cost(&s), Some(5500.0 + 96.0));
    }

    #[test]
    fn paper_ordering_smp_unaffordable_at_5k() {
        // §6 case 1: $5,000 covers workstation clusters but no SMP.
        let p = PriceTable::circa_1999();
        let smp2 = ClusterSpec::single(MachineSpec::new(2, 256, 32, 200.0));
        assert!(p.cluster_cost(&smp2).unwrap() > 5000.0);
        let cow = ClusterSpec::cluster(ws(256, 64), 2, NetworkKind::Ethernet100);
        assert!(p.cluster_cost(&cow).unwrap() < 5000.0);
    }

    #[test]
    fn paper_fft_case_configs_cost_comparably() {
        // §6: 4 workstations (64 MB) on Ethernet vs 3 workstations (32 MB)
        // on ATM — "different cluster platforms of the same cost".
        let p = PriceTable::circa_1999();
        let eth = ClusterSpec::cluster(ws(256, 64), 4, NetworkKind::Ethernet10);
        let atm = ClusterSpec::cluster(ws(256, 32), 3, NetworkKind::Atm155);
        let (ce, ca) = (p.cluster_cost(&eth).unwrap(), p.cluster_cost(&atm).unwrap());
        assert!(
            (ce - ca).abs() / ce < 0.05,
            "Ethernet {ce} vs ATM {ca} should be within 5%"
        );
    }

    #[test]
    fn network_price_ordering() {
        let p = PriceTable::circa_1999();
        assert!(p.network_cost(NetworkKind::Ethernet10) < p.network_cost(NetworkKind::Ethernet100));
        assert!(p.network_cost(NetworkKind::Ethernet100) < p.network_cost(NetworkKind::Atm155));
    }
}
