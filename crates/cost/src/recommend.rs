//! The §6 recommendation rules: a qualitative classification of workloads
//! by memory-boundedness (ρ) and locality (β) onto platform advice.
//!
//! | class | paper rule | example |
//! |-------|-----------|---------|
//! | ρ small, β < 100 | slow network of many high-speed workstations | LU |
//! | ρ small, β > 100 | fast network of few high-speed workstations | FFT |
//! | ρ large, β < 100 | slow network of workstations with large memory | EDGE |
//! | ρ large, β > 100 | an SMP | Radix |
//! | ρ large, β ≫ 100 (commercial) | an SMP or fast cluster of SMPs | TPC-C |

use memhier_core::locality::WorkloadParams;
use serde::{Deserialize, Serialize};

/// Platform classes the paper recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecommendedPlatform {
    /// Slow network, many high-speed workstations (CPU-bound, good locality).
    ManyWorkstationsSlowNetwork,
    /// Fast network, few high-speed workstations (CPU-bound, poor locality).
    FewWorkstationsFastNetwork,
    /// Slow network, workstations with large memories (memory-bound, good
    /// locality).
    WorkstationsLargeMemory,
    /// A single SMP (memory-bound, poor locality).
    SingleSmp,
    /// An SMP or a fast cluster of SMPs (memory- and I/O-bound commercial
    /// workloads).
    SmpOrFastClusterOfSmps,
}

/// A recommendation with its rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended platform class.
    pub platform: RecommendedPlatform,
    /// Why (restating the triggering rule).
    pub rationale: String,
    /// §6 upgrade guidance for this class.
    pub upgrade_advice: String,
}

/// ρ at or above this is "memory bound" (Radix 0.37 and EDGE 0.45 classify
/// as bound; FFT 0.20 and LU 0.31 as CPU bound, matching §6's examples).
pub const RHO_MEMORY_BOUND: f64 = 0.35;
/// β below this is "good program locality" (§6 uses β ≶ 100 explicitly).
pub const BETA_GOOD_LOCALITY: f64 = 100.0;
/// β above this marks commercial-scale locality (TPC-C's β ≈ 1223 is "over
/// 10 times higher" than the scientific kernels').
pub const BETA_COMMERCIAL: f64 = 1000.0;

/// Apply the §6 rules to a characterized workload.
pub fn recommend(w: &WorkloadParams) -> Recommendation {
    let rho = w.rho;
    let beta = w.locality.beta;
    let memory_bound = rho >= RHO_MEMORY_BOUND;
    let good_locality = beta < BETA_GOOD_LOCALITY;

    let (platform, rationale) = match (memory_bound, good_locality) {
        (false, true) => (
            RecommendedPlatform::ManyWorkstationsSlowNetwork,
            format!(
                "CPU bound (rho = {rho:.2}) with good locality (beta = {beta:.1} < 100): \
                 accesses rarely leave a node, so buy compute, not network"
            ),
        ),
        (false, false) => (
            RecommendedPlatform::FewWorkstationsFastNetwork,
            format!(
                "CPU bound (rho = {rho:.2}) with poor locality (beta = {beta:.1} > 100): \
                 network accesses will be frequent, so buy network speed"
            ),
        ),
        (true, true) => (
            RecommendedPlatform::WorkstationsLargeMemory,
            format!(
                "memory bound (rho = {rho:.2}) with good locality (beta = {beta:.1} < 100): \
                 accesses stay in-node, so buy memory capacity"
            ),
        ),
        (true, false) if beta >= BETA_COMMERCIAL => (
            RecommendedPlatform::SmpOrFastClusterOfSmps,
            format!(
                "memory bound (rho = {rho:.2}) with commercial-scale locality \
                 (beta = {beta:.1}): data transfer dominates, use an SMP or a fast \
                 cluster of SMPs"
            ),
        ),
        (true, false) => (
            RecommendedPlatform::SingleSmp,
            format!(
                "memory bound (rho = {rho:.2}) with poor locality (beta = {beta:.1} > 100): \
                 minimize the memory-hierarchy length with an SMP"
            ),
        ),
    };

    let upgrade_advice = if good_locality {
        "spend first on cache/memory capacity to reduce network usage".to_string()
    } else {
        "network activity is largely capacity-independent here: upgrade the \
         cluster network bandwidth first"
            .to_string()
    };

    Recommendation {
        platform,
        rationale,
        upgrade_advice,
    }
}

/// The one JSON shape for a recommendation, shared by `memhier recommend
/// --format json` and the `memhierd` `/v1/recommend` endpoint so the CLI
/// and the service stay byte-compatible.
///
/// `ranked` (present only when a budget was supplied) carries the
/// cost-optimal concrete clusters backing the qualitative advice.
///
/// Thin wrapper over the typed [`RecommendReport`](crate::wire::RecommendReport)
/// wire struct — prefer that type directly in new code.
pub fn recommendation_json(
    w: &WorkloadParams,
    r: &Recommendation,
    ranked: Option<&[crate::optimize::RankedConfig]>,
) -> serde_json::Value {
    let entries = ranked.map(|rs| {
        rs.iter()
            .map(crate::wire::RankedEntry::from_ranked)
            .collect()
    });
    crate::wire::RecommendReport::new(w, r, entries).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::params;

    #[test]
    fn paper_examples_classify_as_stated() {
        // §6 names an example program for each rule.
        assert_eq!(
            recommend(&params::workload_lu()).platform,
            RecommendedPlatform::ManyWorkstationsSlowNetwork,
            "LU"
        );
        assert_eq!(
            recommend(&params::workload_fft()).platform,
            RecommendedPlatform::FewWorkstationsFastNetwork,
            "FFT"
        );
        assert_eq!(
            recommend(&params::workload_edge()).platform,
            RecommendedPlatform::WorkstationsLargeMemory,
            "EDGE"
        );
        assert_eq!(
            recommend(&params::workload_radix()).platform,
            RecommendedPlatform::SingleSmp,
            "Radix"
        );
        assert_eq!(
            recommend(&params::workload_tpcc()).platform,
            RecommendedPlatform::SmpOrFastClusterOfSmps,
            "TPC-C"
        );
    }

    #[test]
    fn rationale_mentions_parameters() {
        let r = recommend(&params::workload_radix());
        assert!(r.rationale.contains("0.37"));
        assert!(r.rationale.contains("120.8"));
    }

    #[test]
    fn recommendation_json_shape() {
        let w = params::workload_fft();
        let r = recommend(&w);
        let v = recommendation_json(&w, &r, None);
        assert_eq!(v["workload"].as_str(), Some("FFT"));
        assert!(v["rationale"].as_str().unwrap().contains("locality"));
        assert!(v.get("ranked").is_none(), "no budget, no ranked list");
        let ranked = vec![];
        let v = recommendation_json(&w, &r, Some(&ranked));
        assert!(v.get("ranked").is_some());
    }

    #[test]
    fn upgrade_advice_follows_locality() {
        let good = recommend(&params::workload_edge());
        assert!(good.upgrade_advice.contains("cache/memory"));
        let poor = recommend(&params::workload_fft());
        assert!(poor.upgrade_advice.contains("network"));
    }
}
