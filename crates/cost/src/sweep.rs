//! Workload-space sweep: run the budget optimizer over a grid of
//! `(ρ, β)` characterizations and record which platform class wins — the
//! quantitative validation of the paper's §6 recommendation matrix
//! (each qualitative rule should emerge as a region of the map).

use crate::enumerate::CandidateSpace;
use crate::optimize::{optimize, RankedConfig};
use crate::prices::PriceTable;
use memhier_core::locality::WorkloadParams;
use memhier_core::machine::{NetworkKind, NetworkTopology};
use memhier_core::model::AnalyticModel;
use memhier_core::platform::PlatformKind;
use serde::{Deserialize, Serialize};

/// Coarse platform classes for map display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformClass {
    /// One machine, one processor.
    SingleWorkstation,
    /// One SMP box.
    Smp,
    /// Workstations over a bus network (Ethernet).
    CowBus,
    /// Workstations over a switch network (ATM).
    CowSwitch,
    /// Cluster of SMPs (any network).
    Clump,
}

impl PlatformClass {
    /// One-character map glyph.
    pub fn glyph(&self) -> char {
        match self {
            PlatformClass::SingleWorkstation => 'w',
            PlatformClass::Smp => 'S',
            PlatformClass::CowBus => 'e',
            PlatformClass::CowSwitch => 'a',
            PlatformClass::Clump => 'C',
        }
    }

    /// Classify an optimizer winner.
    pub fn of(cfg: &RankedConfig) -> PlatformClass {
        match cfg.spec.platform() {
            PlatformKind::Uniprocessor => PlatformClass::SingleWorkstation,
            PlatformKind::Smp => PlatformClass::Smp,
            PlatformKind::ClusterOfSmps => PlatformClass::Clump,
            PlatformKind::ClusterOfWorkstations => match cfg.spec.network.map(|n| n.topology()) {
                Some(NetworkTopology::Switch) | Some(NetworkTopology::FatTree) => {
                    PlatformClass::CowSwitch
                }
                _ => PlatformClass::CowBus,
            },
        }
    }
}

/// One grid cell's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Memory-reference density of the synthetic workload.
    pub rho: f64,
    /// Locality scale β (bytes).
    pub beta: f64,
    /// Winning platform class.
    pub class: PlatformClass,
    /// The winning configuration description.
    pub config: String,
    /// Predicted `E(Instr)` of the winner, seconds.
    pub e_instr_seconds: f64,
}

/// Sweep the optimizer over a `(ρ, β)` grid at fixed `α` and budget.
pub fn sweep(
    budget: f64,
    alpha: f64,
    rho_grid: &[f64],
    beta_grid: &[f64],
    model: &AnalyticModel,
    prices: &PriceTable,
    space: &CandidateSpace,
) -> Vec<SweepCell> {
    sweep_with_sharing(
        budget, alpha, 0.2, rho_grid, beta_grid, model, prices, space,
    )
}

/// As [`sweep`] with an explicit SPMD sharing fraction (the fraction of
/// references touching other processes' data; 0.2 is typical of the
/// paper's kernels as measured by `memhier-bench`).
#[allow(clippy::too_many_arguments)]
pub fn sweep_with_sharing(
    budget: f64,
    alpha: f64,
    sharing: f64,
    rho_grid: &[f64],
    beta_grid: &[f64],
    model: &AnalyticModel,
    prices: &PriceTable,
    space: &CandidateSpace,
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &rho in rho_grid {
        for &beta in beta_grid {
            let w = WorkloadParams::new("sweep", alpha, beta, rho)
                .expect("grid parameters valid")
                .with_sharing_fraction(sharing);
            let ranked = optimize(budget, &w, model, prices, space);
            if let Some(best) = ranked.first() {
                cells.push(SweepCell {
                    rho,
                    beta,
                    class: PlatformClass::of(best),
                    config: best.spec.describe(),
                    e_instr_seconds: best.e_instr_seconds,
                });
            }
        }
    }
    cells
}

/// Render the sweep as an ASCII map (β across, ρ down).
pub fn render_map(cells: &[SweepCell], rho_grid: &[f64], beta_grid: &[f64]) -> String {
    let mut s = String::new();
    s.push_str("        beta ->");
    for &b in beta_grid {
        s.push_str(&format!("{b:>8.0}"));
    }
    s.push('\n');
    for &rho in rho_grid {
        s.push_str(&format!("rho {rho:<5.2}    "));
        for &beta in beta_grid {
            let g = cells
                .iter()
                .find(|c| (c.rho - rho).abs() < 1e-12 && (c.beta - beta).abs() < 1e-12)
                .map(|c| c.class.glyph())
                .unwrap_or('?');
            s.push_str(&format!("{g:>8}"));
        }
        s.push('\n');
    }
    s.push_str("w=workstation  S=SMP  e=Ethernet COW  a=ATM COW  C=cluster of SMPs\n");
    s
}

/// Network bandwidth helper used by tests.
pub fn network_mbps(k: NetworkKind) -> f64 {
    k.mbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sweep(budget: f64) -> (Vec<SweepCell>, Vec<f64>, Vec<f64>) {
        let rho = vec![0.1, 0.45];
        let beta = vec![50.0, 400.0];
        let cells = sweep(
            budget,
            1.3,
            &rho,
            &beta,
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
            &CandidateSpace::paper_market(),
        );
        (cells, rho, beta)
    }

    #[test]
    fn sweep_covers_grid() {
        let (cells, rho, beta) = run_sweep(20_000.0);
        assert_eq!(cells.len(), rho.len() * beta.len());
        for c in &cells {
            assert!(c.e_instr_seconds.is_finite());
            assert!(!c.config.is_empty());
        }
    }

    #[test]
    fn map_renders_every_cell() {
        let (cells, rho, beta) = run_sweep(20_000.0);
        let map = render_map(&cells, &rho, &beta);
        assert!(!map.contains('?'), "{map}");
        assert!(map.contains("beta ->"));
    }

    #[test]
    fn worse_locality_never_prefers_slower_network() {
        // Fix rho; as beta grows the winning network bandwidth must not
        // decrease (the §6 trend from LU's rule toward FFT's rule).
        let rho = vec![0.2];
        let beta = vec![30.0, 3000.0];
        let cells = sweep(
            20_000.0,
            1.3,
            &rho,
            &beta,
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
            &CandidateSpace::paper_market(),
        );
        let bw = |c: &SweepCell| match c.class {
            PlatformClass::CowBus => 1.0,
            PlatformClass::CowSwitch => 2.0,
            // Single boxes have the "fastest network" (none needed).
            _ => 3.0,
        };
        assert!(
            bw(&cells[1]) >= bw(&cells[0]),
            "beta 3000 chose {:?}, beta 30 chose {:?}",
            cells[1].class,
            cells[0].class
        );
    }
}
