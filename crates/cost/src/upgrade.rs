//! The upgrade planner (paper question 2 and §6 case study 3): given an
//! existing cluster and a budget *increase* `B′`, find the upgrade that
//! minimizes `E(Instr)`.
//!
//! Upgrade actions: add machines of the same type, grow every machine's
//! memory, widen caches to 512 KB, and/or move to a faster network.
//! Combinations are enumerated (the space is tiny) and priced as the cost
//! of the *new* components only (no resale of replaced parts).

use crate::prices::PriceTable;
use memhier_core::locality::WorkloadParams;
use memhier_core::machine::NetworkKind;
use memhier_core::model::AnalyticModel;
use memhier_core::platform::ClusterSpec;
use serde::{Deserialize, Serialize};

/// A concrete upgrade decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpgradePlan {
    /// The upgraded cluster.
    pub spec: ClusterSpec,
    /// Dollars spent (≤ the budget increase).
    pub cost: f64,
    /// Predicted `E(Instr)` after the upgrade, seconds.
    pub e_instr_seconds: f64,
    /// Human-readable summary of the actions taken.
    pub actions: Vec<String>,
}

/// Price the delta from `old` to `new` (new components only).
fn upgrade_cost(old: &ClusterSpec, new: &ClusterSpec, prices: &PriceTable) -> Option<f64> {
    let mut cost = 0.0;
    // Added machines are bought whole, with network if the new spec has one.
    let added = new.machines.saturating_sub(old.machines) as f64;
    let mc = prices.machine_cost(&new.machine)?;
    let net_cost = new.network.map(|n| prices.network_cost(n)).unwrap_or(0.0);
    cost += added * (mc + net_cost);
    // Existing machines pay the component deltas.
    let kept = old.machines.min(new.machines) as f64;
    let mem_add_mb = (new
        .machine
        .memory_bytes
        .saturating_sub(old.machine.memory_bytes)
        / (1024 * 1024)) as f64;
    cost += kept * mem_add_mb * prices.mem_per_mb;
    if new.machine.cache_bytes > old.machine.cache_bytes {
        cost += kept * prices.cache512_per_proc * new.machine.n_procs as f64;
    }
    // A network change (or first network when going 1 → many) re-equips
    // every kept machine.
    let network_changed = new.network != old.network && new.machines > 1;
    if network_changed {
        cost += kept * net_cost;
    }
    Some(cost)
}

/// Enumerate upgrades of `existing` affordable within `extra_budget` and
/// return them ranked by predicted `E(Instr)` (the no-op plan is always
/// included, so the result is never empty for a valid input).
pub fn plan_upgrade(
    existing: &ClusterSpec,
    extra_budget: f64,
    workload: &WorkloadParams,
    model: &AnalyticModel,
    prices: &PriceTable,
) -> Vec<UpgradePlan> {
    let mem_options = [32u64, 64, 128, 256];
    let cache_options = [256u64, 512];
    let cur_mem_mb = existing.machine.memory_bytes / (1024 * 1024);
    let cur_cache_kb = existing.machine.cache_bytes / 1024;
    let net_options: Vec<Option<NetworkKind>> = {
        let mut v = vec![existing.network];
        for k in NetworkKind::ALL {
            if Some(k) != existing.network {
                v.push(Some(k));
            }
        }
        v
    };

    let mut plans = Vec::new();
    for add in 0..=16u32 {
        for &mem in mem_options.iter().filter(|&&m| m >= cur_mem_mb) {
            for &cache in cache_options.iter().filter(|&&c| c >= cur_cache_kb) {
                for &net in &net_options {
                    let machines = existing.machines + add;
                    if machines > 1 && net.is_none() {
                        continue;
                    }
                    let mut machine = existing.machine;
                    machine.memory_bytes = mem * 1024 * 1024;
                    machine.cache_bytes = cache * 1024;
                    let spec = ClusterSpec {
                        machine,
                        machines,
                        network: if machines > 1 { net } else { None },
                        name: None,
                    };
                    if spec.validate().is_err() {
                        continue;
                    }
                    let Some(cost) = upgrade_cost(existing, &spec, prices) else {
                        continue;
                    };
                    if cost > extra_budget {
                        continue;
                    }
                    let e = model.evaluate_or_inf(&spec, workload);
                    if !e.is_finite() {
                        continue;
                    }
                    let mut actions = Vec::new();
                    if add > 0 {
                        actions.push(format!("add {add} machine(s)"));
                    }
                    if mem > cur_mem_mb {
                        actions.push(format!("memory {cur_mem_mb} → {mem} MB per machine"));
                    }
                    if cache > cur_cache_kb {
                        actions.push(format!("cache {cur_cache_kb} → {cache} KB"));
                    }
                    if spec.network != existing.network && spec.machines > 1 {
                        actions.push(format!(
                            "network → {}",
                            spec.network.map(|n| n.to_string()).unwrap_or_default()
                        ));
                    }
                    if actions.is_empty() {
                        actions.push("keep as is".to_string());
                    }
                    plans.push(UpgradePlan {
                        spec,
                        cost,
                        e_instr_seconds: e,
                        actions,
                    });
                }
            }
        }
    }
    plans.sort_by(|a, b| {
        a.e_instr_seconds
            .total_cmp(&b.e_instr_seconds)
            .then(a.cost.total_cmp(&b.cost))
    });
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::MachineSpec;

    fn base_cow() -> ClusterSpec {
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet10,
        )
    }

    fn fft() -> WorkloadParams {
        WorkloadParams::new("FFT", 1.21, 103.26, 0.20).unwrap()
    }

    #[test]
    fn noop_always_available() {
        let plans = plan_upgrade(
            &base_cow(),
            0.0,
            &fft(),
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
        );
        assert!(!plans.is_empty());
        let noop = plans.iter().find(|p| p.cost == 0.0).expect("no-op plan");
        assert_eq!(noop.spec.machines, 2);
        assert_eq!(noop.actions, vec!["keep as is".to_string()]);
    }

    #[test]
    fn upgrades_respect_budget_and_help() {
        let model = AnalyticModel::default();
        let prices = PriceTable::circa_1999();
        let plans = plan_upgrade(&base_cow(), 3000.0, &fft(), &model, &prices);
        let noop_e = plans
            .iter()
            .find(|p| p.cost == 0.0)
            .unwrap()
            .e_instr_seconds;
        let best = &plans[0];
        assert!(best.cost <= 3000.0);
        assert!(
            best.e_instr_seconds < noop_e,
            "an affordable upgrade should beat the status quo"
        );
    }

    #[test]
    fn upgrade_cost_deltas() {
        let prices = PriceTable::circa_1999();
        let old = base_cow();
        // Memory 32 → 64 MB on both machines: 2 × 32 × $1.50.
        let mut new = old.clone();
        new.machine.memory_bytes = 64 << 20;
        assert_eq!(upgrade_cost(&old, &new, &prices), Some(96.0));
        // Network switch to ATM re-equips both machines.
        let mut new = old.clone();
        new.network = Some(NetworkKind::Atm155);
        assert_eq!(upgrade_cost(&old, &new, &prices), Some(1500.0));
        // Adding a machine buys machine + its NIC.
        let mut new = old.clone();
        new.machines = 3;
        let m = prices.machine_cost(&old.machine).unwrap();
        assert_eq!(upgrade_cost(&old, &new, &prices), Some(m + 50.0));
    }

    #[test]
    fn network_upgrade_wins_for_fft_on_slow_ethernet() {
        // §6: FFT (CPU-bound, poor locality) wants a fast network; with a
        // healthy upgrade budget the best plan should move off 10 Mb
        // Ethernet.
        let plans = plan_upgrade(
            &base_cow(),
            5000.0,
            &fft(),
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
        );
        let best = &plans[0];
        assert_ne!(
            best.spec.network,
            Some(NetworkKind::Ethernet10),
            "best: {:?} / {:?}",
            best.actions,
            best.spec.describe()
        );
    }
}
