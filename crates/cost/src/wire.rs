//! The cost crate's typed wire format: request/response structs for the
//! fleet-scale optimizer and the §6 recommender, following the
//! `Scenario` conventions from `memhier-bench`:
//!
//! * `to_json` → `from_json` is a **fixed point** (defaults are omitted
//!   on output and refilled on input);
//! * unknown object keys are rejected ([`CostError::UnknownField`]) so a
//!   typo'd field fails loudly instead of being silently ignored;
//! * [`FromStr`]/[`Display`](fmt::Display) give a compact one-line
//!   spelling (`FFT@20000`) that falls back to JSON when any field is
//!   non-default;
//! * errors are one `#[non_exhaustive]` enum with `From` conversions
//!   into the workspace facade error and the service's HTTP error.
//!
//! The same [`OptimizeRequest`]/[`OptimizeReport`] pair backs `memhier
//! optimize --json` and `memhierd`'s `POST /v1/optimize`, and the same
//! [`RecommendRequest`]/[`RecommendReport`] pair backs `memhier
//! recommend --format json` and `POST /v1/recommend`, so the CLI and the
//! service stay byte-for-byte interchangeable (pinned by
//! `serve_parity.rs` and the golden fixtures in `tests/golden/`).

use crate::enumerate::CandidateSpace;
use crate::optimize::RankedConfig;
use crate::prices::PriceTable;
use crate::recommend::{Recommendation, RecommendedPlatform};
use memhier_core::locality::WorkloadParams;
use memhier_core::machine::NetworkKind;
use memhier_core::params;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;
use std::str::FromStr;

/// Why a request could not be parsed or evaluated.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CostError {
    /// The named workload is not one of the paper's Table-2 kernels.
    UnknownWorkload(String),
    /// A required field was never supplied.
    Missing(&'static str),
    /// A field was present but malformed (field name, why).
    Invalid(&'static str, String),
    /// An object key no request field matches (typo guard).
    UnknownField(String),
    /// The input was not valid JSON / not a recognized compact form.
    Syntax(String),
    /// Simulation confirmation was requested for a workload the
    /// simulator has no kernel for (custom `(α, β, ρ)` parameters).
    Unsimulatable(String),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::UnknownWorkload(name) => {
                write!(
                    f,
                    "unknown workload `{name}` ({})",
                    params::workload_names().join("|")
                )
            }
            CostError::Missing(field) => write!(f, "`{field}` is required"),
            CostError::Invalid(field, why) => write!(f, "`{field}`: {why}"),
            CostError::UnknownField(key) => write!(f, "unknown request field `{key}`"),
            CostError::Syntax(why) => write!(f, "malformed request: {why}"),
            CostError::Unsimulatable(why) => {
                write!(f, "cannot confirm by simulation: {why}")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// Canonical short name of a network medium on the wire
/// (`eth10|eth100|atm|fattree`, matching the CLI's `--network`
/// spellings) — the registry's `wire` spelling, so runtime-registered
/// media serialize under their own names.
pub fn network_name(net: NetworkKind) -> &'static str {
    net.spec().wire
}

/// Parse a network medium from any registry spelling (key, wire name,
/// or alias, case-insensitive; `atm155` is accepted for `atm`).
pub fn network_by_name(name: &str) -> Result<NetworkKind, CostError> {
    NetworkKind::parse(name).ok_or_else(|| {
        let known: Vec<&str> = NetworkKind::registered()
            .iter()
            .map(|n| n.spec().wire)
            .collect();
        CostError::Invalid(
            "networks",
            format!("unknown network `{name}` ({})", known.join("|")),
        )
    })
}

/// Problem-size tiers simulation confirmation may run at.  The cost
/// crate cannot depend on the bench runner, so the three stable tier
/// names are validated here and resolved downstream.
pub const CONFIRM_SIZES: [&str; 3] = ["small", "medium", "paper"];

fn validate_confirm_size(name: &str) -> Result<String, CostError> {
    let lower = name.to_ascii_lowercase();
    if CONFIRM_SIZES.contains(&lower.as_str()) {
        Ok(lower)
    } else {
        Err(CostError::Invalid(
            "confirm_size",
            format!("unknown size `{name}` (small|medium|paper)"),
        ))
    }
}

/// The workload a request optimizes for: a paper kernel by name, or raw
/// `(α, β, ρ)` parameters for a workload characterized elsewhere (e.g.
/// by `memhier fit`).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A Table-2 kernel, stored under its canonical name (`FFT`, `LU`,
    /// `Radix`, `EDGE`, `TPC-C`).
    Named(String),
    /// Custom locality/memory-pressure parameters.
    Custom {
        /// Locality shape `α > 1`.
        alpha: f64,
        /// Locality scale `β > 1`, bytes.
        beta: f64,
        /// Memory-reference fraction `ρ`.
        rho: f64,
    },
}

impl WorkloadSpec {
    /// A named paper workload, canonicalized; errors on unknown names.
    pub fn named(name: &str) -> Result<Self, CostError> {
        let params = params::workload_by_name(name)
            .ok_or_else(|| CostError::UnknownWorkload(name.to_string()))?;
        Ok(WorkloadSpec::Named(params.name.clone()))
    }

    /// Resolve to concrete model parameters.
    pub fn resolve(&self) -> Result<WorkloadParams, CostError> {
        match self {
            WorkloadSpec::Named(name) => params::workload_by_name(name)
                .ok_or_else(|| CostError::UnknownWorkload(name.clone())),
            WorkloadSpec::Custom { alpha, beta, rho } => {
                WorkloadParams::new("custom", *alpha, *beta, *rho)
                    .map_err(|e| CostError::Invalid("workload", e.to_string()))
            }
        }
    }

    fn to_json_field(&self) -> Value {
        match self {
            WorkloadSpec::Named(name) => Value::String(name.clone()),
            WorkloadSpec::Custom { alpha, beta, rho } => Value::Object(vec![
                ("alpha".to_string(), f64_value(*alpha)),
                ("beta".to_string(), f64_value(*beta)),
                ("rho".to_string(), f64_value(*rho)),
            ]),
        }
    }

    fn from_json_field(v: &Value) -> Result<Self, CostError> {
        match v {
            Value::String(name) => WorkloadSpec::named(name),
            Value::Object(fields) => {
                let (mut alpha, mut beta, mut rho) = (None, None, None);
                for (key, value) in fields {
                    let slot = match key.as_str() {
                        "alpha" => &mut alpha,
                        "beta" => &mut beta,
                        "rho" => &mut rho,
                        other => return Err(CostError::UnknownField(other.to_string())),
                    };
                    *slot = Some(value.as_f64().ok_or_else(|| {
                        CostError::Invalid("workload", format!("`{key}` must be a number"))
                    })?);
                }
                let spec = WorkloadSpec::Custom {
                    alpha: alpha.ok_or(CostError::Missing("workload.alpha"))?,
                    beta: beta.ok_or(CostError::Missing("workload.beta"))?,
                    rho: rho.ok_or(CostError::Missing("workload.rho"))?,
                };
                // Validate (α, β, ρ) at the boundary so a bad request
                // fails at parse time, not mid-search.
                spec.resolve()?;
                Ok(spec)
            }
            _ => Err(CostError::Invalid(
                "workload",
                "must be a kernel name or an {alpha, beta, rho} object".to_string(),
            )),
        }
    }
}

fn u64_value(v: u64) -> Value {
    Value::Number(serde_json::Number::U64(v))
}

fn f64_value(v: f64) -> Value {
    Value::Number(serde_json::Number::F64(v))
}

fn as_object<'a>(v: &'a Value, what: &'static str) -> Result<&'a Vec<(String, Value)>, CostError> {
    match v {
        Value::Object(fields) => Ok(fields),
        _ => Err(CostError::Syntax(format!("{what} must be a JSON object"))),
    }
}

fn req_f64(field: &'static str, v: &Value) -> Result<f64, CostError> {
    v.as_f64()
        .ok_or_else(|| CostError::Invalid(field, "must be a number".to_string()))
}

fn req_u64(field: &'static str, v: &Value) -> Result<u64, CostError> {
    v.as_u64()
        .ok_or_else(|| CostError::Invalid(field, "must be a non-negative integer".to_string()))
}

fn req_str<'a>(field: &'static str, v: &'a Value) -> Result<&'a str, CostError> {
    v.as_str()
        .ok_or_else(|| CostError::Invalid(field, "must be a string".to_string()))
}

fn uint_list(field: &'static str, v: &Value) -> Result<Vec<u64>, CostError> {
    let arr = v
        .as_array()
        .ok_or_else(|| CostError::Invalid(field, "must be an array of integers".to_string()))?;
    if arr.is_empty() {
        return Err(CostError::Invalid(field, "must not be empty".to_string()));
    }
    arr.iter().map(|e| req_u64(field, e)).collect()
}

/// Serialize a candidate space as the wire grid object, omitting keys
/// that equal the paper-market default.
pub fn space_to_json(space: &CandidateSpace) -> Value {
    let default = CandidateSpace::paper_market();
    let mut fields = Vec::new();
    if space.proc_counts != default.proc_counts {
        fields.push((
            "procs".to_string(),
            Value::Array(
                space
                    .proc_counts
                    .iter()
                    .map(|&n| u64_value(n as u64))
                    .collect(),
            ),
        ));
    }
    if space.cache_kb != default.cache_kb {
        fields.push((
            "cache_kb".to_string(),
            Value::Array(space.cache_kb.iter().map(|&n| u64_value(n)).collect()),
        ));
    }
    if space.memory_mb != default.memory_mb {
        fields.push((
            "memory_mb".to_string(),
            Value::Array(space.memory_mb.iter().map(|&n| u64_value(n)).collect()),
        ));
    }
    if space.max_machines != default.max_machines {
        fields.push((
            "max_machines".to_string(),
            u64_value(space.max_machines as u64),
        ));
    }
    if space.networks != default.networks {
        fields.push((
            "networks".to_string(),
            Value::Array(
                space
                    .networks
                    .iter()
                    .map(|&n| Value::String(network_name(n).to_string()))
                    .collect(),
            ),
        ));
    }
    if space.clock_mhz != default.clock_mhz {
        fields.push(("clock_mhz".to_string(), f64_value(space.clock_mhz)));
    }
    Value::Object(fields)
}

/// Parse a wire grid object into a candidate space.  Missing keys take
/// their paper-market defaults; unknown keys are rejected.
pub fn space_from_json(v: &Value) -> Result<CandidateSpace, CostError> {
    let fields = as_object(v, "`search_space`")?;
    let mut space = CandidateSpace::paper_market();
    for (key, value) in fields {
        match key.as_str() {
            "procs" => {
                space.proc_counts = uint_list("procs", value)?
                    .into_iter()
                    .map(|n| {
                        u32::try_from(n).map_err(|_| {
                            CostError::Invalid("procs", format!("count {n} out of range"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "cache_kb" => space.cache_kb = uint_list("cache_kb", value)?,
            "memory_mb" => space.memory_mb = uint_list("memory_mb", value)?,
            "max_machines" => {
                let n = req_u64("max_machines", value)?;
                space.max_machines =
                    u32::try_from(n).ok().filter(|&n| n >= 1).ok_or_else(|| {
                        CostError::Invalid("max_machines", "must be at least 1".to_string())
                    })?;
            }
            "networks" => {
                let arr = value.as_array().ok_or_else(|| {
                    CostError::Invalid("networks", "must be an array of names".to_string())
                })?;
                if arr.is_empty() {
                    return Err(CostError::Invalid(
                        "networks",
                        "must not be empty".to_string(),
                    ));
                }
                space.networks = arr
                    .iter()
                    .map(|e| network_by_name(req_str("networks", e)?))
                    .collect::<Result<_, _>>()?;
            }
            "clock_mhz" => {
                let mhz = req_f64("clock_mhz", value)?;
                if !mhz.is_finite() || mhz <= 0.0 {
                    return Err(CostError::Invalid(
                        "clock_mhz",
                        "must be positive and finite".to_string(),
                    ));
                }
                space.clock_mhz = mhz;
            }
            other => return Err(CostError::UnknownField(other.to_string())),
        }
    }
    Ok(space)
}

/// Serialize a price table (full eight-field object).
pub fn prices_to_json(prices: &PriceTable) -> Value {
    serde_json::to_value(prices).expect("price table serializes")
}

/// Parse a price table.  Missing keys take their c.-1999 defaults (so a
/// request can override just one price); unknown keys are rejected;
/// every price must be finite and non-negative.
pub fn prices_from_json(v: &Value) -> Result<PriceTable, CostError> {
    let fields = as_object(v, "`prices`")?;
    let mut p = PriceTable::circa_1999();
    for (key, value) in fields {
        let slot = match key.as_str() {
            "ws_base" => &mut p.ws_base,
            "smp2_base" => &mut p.smp2_base,
            "smp4_base" => &mut p.smp4_base,
            "mem_per_mb" => &mut p.mem_per_mb,
            "cache512_per_proc" => &mut p.cache512_per_proc,
            "eth10_per_machine" => &mut p.eth10_per_machine,
            "eth100_per_machine" => &mut p.eth100_per_machine,
            "atm_per_machine" => &mut p.atm_per_machine,
            other => return Err(CostError::UnknownField(other.to_string())),
        };
        let price = req_f64("prices", value)?;
        if !price.is_finite() || price < 0.0 {
            return Err(CostError::Invalid(
                "prices",
                format!("`{key}` must be finite and non-negative"),
            ));
        }
        *slot = price;
    }
    Ok(p)
}

/// Default number of ranked configurations an optimize report carries.
pub const DEFAULT_TOP: usize = 5;

/// A fleet-scale optimization request: *"under this budget (and
/// optionally this SLO), what is the best cluster for this workload in
/// this market?"* — the paper's §6 question scaled to a parameterized
/// candidate grid with optional simulation confirmation of the analytic
/// finalists.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// What runs on the cluster.
    pub workload: WorkloadSpec,
    /// Total budget, dollars.
    pub budget: f64,
    /// Optional SLO: maximum acceptable model-predicted `E(Instr)` in
    /// seconds.  Candidates predicted slower are filtered (and counted).
    pub slo: Option<f64>,
    /// The candidate grid (default: the paper's 828-point market).
    pub search_space: CandidateSpace,
    /// Component prices (default: the reconstructed c.-1999 table).
    pub prices: PriceTable,
    /// Ranked configurations to report (default [`DEFAULT_TOP`]).
    pub top: usize,
    /// Analytic finalists to confirm with full simulation (default 0 =
    /// analytic only).  Requires a named paper workload.
    pub confirm: usize,
    /// Problem-size tier for confirmation runs (default `small`).
    pub confirm_size: String,
}

impl OptimizeRequest {
    /// A default-shaped request for `workload` under `budget`.
    pub fn new(workload: WorkloadSpec, budget: f64) -> Self {
        OptimizeRequest {
            workload,
            budget,
            slo: None,
            search_space: CandidateSpace::paper_market(),
            prices: PriceTable::circa_1999(),
            top: DEFAULT_TOP,
            confirm: 0,
            confirm_size: "small".to_string(),
        }
    }

    /// Canonical JSON form; default-valued fields are omitted so the
    /// output is also the minimal spelling of the request.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("workload".to_string(), self.workload.to_json_field()),
            ("budget".to_string(), f64_value(self.budget)),
        ];
        if let Some(slo) = self.slo {
            fields.push(("slo".to_string(), f64_value(slo)));
        }
        let space = space_to_json(&self.search_space);
        if space != Value::Object(vec![]) {
            fields.push(("search_space".to_string(), space));
        }
        if self.prices != PriceTable::circa_1999() {
            fields.push(("prices".to_string(), prices_to_json(&self.prices)));
        }
        if self.top != DEFAULT_TOP {
            fields.push(("top".to_string(), u64_value(self.top as u64)));
        }
        if self.confirm != 0 {
            fields.push(("confirm".to_string(), u64_value(self.confirm as u64)));
        }
        if self.confirm_size != "small" {
            fields.push((
                "confirm_size".to_string(),
                Value::String(self.confirm_size.clone()),
            ));
        }
        Value::Object(fields)
    }

    /// Parse the JSON form.  `workload` and `budget` are required;
    /// everything else defaults; unknown keys are rejected.
    pub fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "an optimize request")?;
        let mut workload = None;
        let mut budget = None;
        let mut req = OptimizeRequest::new(WorkloadSpec::Named(String::new()), 0.0);
        for (key, value) in fields {
            match key.as_str() {
                "workload" => workload = Some(WorkloadSpec::from_json_field(value)?),
                "budget" => {
                    let b = req_f64("budget", value)?;
                    if !b.is_finite() || b < 0.0 {
                        return Err(CostError::Invalid(
                            "budget",
                            "must be finite and non-negative".to_string(),
                        ));
                    }
                    budget = Some(b);
                }
                "slo" => {
                    let s = req_f64("slo", value)?;
                    if !s.is_finite() || s <= 0.0 {
                        return Err(CostError::Invalid(
                            "slo",
                            "must be positive and finite (seconds)".to_string(),
                        ));
                    }
                    req.slo = Some(s);
                }
                "search_space" => req.search_space = space_from_json(value)?,
                "prices" => req.prices = prices_from_json(value)?,
                "top" => {
                    let t = req_u64("top", value)?;
                    if t == 0 {
                        return Err(CostError::Invalid("top", "must be at least 1".to_string()));
                    }
                    req.top = t as usize;
                }
                "confirm" => req.confirm = req_u64("confirm", value)? as usize,
                "confirm_size" => {
                    req.confirm_size = validate_confirm_size(req_str("confirm_size", value)?)?;
                }
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        req.workload = workload.ok_or(CostError::Missing("workload"))?;
        req.budget = budget.ok_or(CostError::Missing("budget"))?;
        Ok(req)
    }

    /// Whether every optional field still has its default value (the
    /// compact `WORKLOAD@BUDGET` spelling is then lossless).
    fn is_default_shaped(&self) -> bool {
        self.slo.is_none()
            && self.search_space == CandidateSpace::paper_market()
            && self.prices == PriceTable::circa_1999()
            && self.top == DEFAULT_TOP
            && self.confirm == 0
            && self.confirm_size == "small"
    }
}

impl fmt::Display for OptimizeRequest {
    /// Compact `WORKLOAD@BUDGET` when lossless, JSON otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.workload {
            WorkloadSpec::Named(name) if self.is_default_shaped() => {
                write!(f, "{name}@{}", self.budget)
            }
            _ => {
                let text = serde_json::to_string(&self.to_json()).map_err(|_| fmt::Error)?;
                f.write_str(&text)
            }
        }
    }
}

impl FromStr for OptimizeRequest {
    type Err = CostError;

    /// Accepts the JSON object form or the compact `WORKLOAD@BUDGET`.
    fn from_str(s: &str) -> Result<Self, CostError> {
        let s = s.trim();
        if s.starts_with('{') {
            let v: Value = serde_json::from_str(s)
                .map_err(|e| CostError::Syntax(format!("invalid JSON: {e}")))?;
            return OptimizeRequest::from_json(&v);
        }
        let (name, budget) = s
            .split_once('@')
            .ok_or_else(|| CostError::Syntax(format!("expected WORKLOAD@BUDGET, got `{s}`")))?;
        let budget: f64 = budget
            .trim()
            .parse()
            .map_err(|_| CostError::Invalid("budget", format!("bad number `{budget}`")))?;
        if !budget.is_finite() || budget < 0.0 {
            return Err(CostError::Invalid(
                "budget",
                "must be finite and non-negative".to_string(),
            ));
        }
        Ok(OptimizeRequest::new(
            WorkloadSpec::named(name.trim())?,
            budget,
        ))
    }
}

impl Serialize for OptimizeRequest {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

impl Deserialize for OptimizeRequest {
    fn from_json_value(v: Value) -> Result<Self, String> {
        OptimizeRequest::from_json(&v).map_err(|e| e.to_string())
    }
}

/// Where each candidate of the search space went: the counted
/// diagnostics behind the pruning ratio.  Every candidate lands in
/// exactly one bucket, so `candidates = unpriced + over_budget +
/// model_rejected + slo_filtered + feasible`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStats {
    /// Size of the enumerated grid.
    pub candidates: usize,
    /// Skipped: the market prices no such machine (counted, not
    /// silently dropped).
    pub unpriced: usize,
    /// Filtered: cluster cost exceeds the budget.
    pub over_budget: usize,
    /// Filtered: the analytic model rejects or saturates the config.
    pub model_rejected: usize,
    /// Filtered: model-predicted `E(Instr)` misses the SLO.
    pub slo_filtered: usize,
    /// Survivors ranked by the analytic model.
    pub feasible: usize,
    /// Finalists confirmed by full simulation.
    pub confirmed: usize,
    /// Fraction of the grid **not** simulated:
    /// `(candidates − confirmed) / candidates`.
    pub pruning_ratio: f64,
}

impl SearchStats {
    /// Record that `n` finalists were simulated and refresh the ratio.
    pub fn set_confirmed(&mut self, n: usize) {
        self.confirmed = n;
        self.pruning_ratio = if self.candidates == 0 {
            0.0
        } else {
            (self.candidates - self.confirmed.min(self.candidates)) as f64 / self.candidates as f64
        };
    }

    pub(crate) fn to_json(&self) -> Value {
        Value::Object(vec![
            ("candidates".to_string(), u64_value(self.candidates as u64)),
            ("unpriced".to_string(), u64_value(self.unpriced as u64)),
            (
                "over_budget".to_string(),
                u64_value(self.over_budget as u64),
            ),
            (
                "model_rejected".to_string(),
                u64_value(self.model_rejected as u64),
            ),
            (
                "slo_filtered".to_string(),
                u64_value(self.slo_filtered as u64),
            ),
            ("feasible".to_string(), u64_value(self.feasible as u64)),
            ("confirmed".to_string(), u64_value(self.confirmed as u64)),
            ("pruning_ratio".to_string(), f64_value(self.pruning_ratio)),
        ])
    }

    pub(crate) fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "`search`")?;
        let mut s = SearchStats {
            candidates: 0,
            unpriced: 0,
            over_budget: 0,
            model_rejected: 0,
            slo_filtered: 0,
            feasible: 0,
            confirmed: 0,
            pruning_ratio: 0.0,
        };
        for (key, value) in fields {
            match key.as_str() {
                "candidates" => s.candidates = req_u64("candidates", value)? as usize,
                "unpriced" => s.unpriced = req_u64("unpriced", value)? as usize,
                "over_budget" => s.over_budget = req_u64("over_budget", value)? as usize,
                "model_rejected" => s.model_rejected = req_u64("model_rejected", value)? as usize,
                "slo_filtered" => s.slo_filtered = req_u64("slo_filtered", value)? as usize,
                "feasible" => s.feasible = req_u64("feasible", value)? as usize,
                "confirmed" => s.confirmed = req_u64("confirmed", value)? as usize,
                "pruning_ratio" => s.pruning_ratio = req_f64("pruning_ratio", value)?,
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        Ok(s)
    }
}

/// Simulation confirmation attached to a ranked finalist.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfirmation {
    /// Problem-size tier the confirmation ran at.
    pub size: String,
    /// Simulated `E(Instr)` in seconds (the model's direct counterpart).
    pub seconds: f64,
    /// Simulated wall-clock, cycles.
    pub wall_cycles: u64,
}

impl SimConfirmation {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("size".to_string(), Value::String(self.size.clone())),
            ("seconds".to_string(), f64_value(self.seconds)),
            ("wall_cycles".to_string(), u64_value(self.wall_cycles)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "`simulated`")?;
        let (mut size, mut seconds, mut wall) = (None, None, None);
        for (key, value) in fields {
            match key.as_str() {
                "size" => size = Some(req_str("size", value)?.to_string()),
                "seconds" => seconds = Some(req_f64("seconds", value)?),
                "wall_cycles" => wall = Some(req_u64("wall_cycles", value)?),
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        Ok(SimConfirmation {
            size: size.ok_or(CostError::Missing("simulated.size"))?,
            seconds: seconds.ok_or(CostError::Missing("simulated.seconds"))?,
            wall_cycles: wall.ok_or(CostError::Missing("simulated.wall_cycles"))?,
        })
    }
}

/// One ranked cluster in a report: the flattened, human-auditable
/// projection of a [`RankedConfig`] (machine shape, dollars, predicted
/// time, and — for confirmed finalists — the simulated time).
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEntry {
    /// Human-readable description (`ClusterSpec::describe`).
    pub config: String,
    /// Machine count `N`.
    pub machines: u32,
    /// Processors per machine `n`.
    pub procs_per_machine: u32,
    /// Per-processor cache, KB.
    pub cache_kb: u64,
    /// Per-machine memory, MB.
    pub memory_mb: u64,
    /// Cluster network (`eth10|eth100|atm`); absent for single machines.
    pub network: Option<String>,
    /// Cluster cost, dollars.
    pub cost: f64,
    /// Model-predicted `E(Instr)`, seconds.
    pub model_seconds: f64,
    /// Simulation confirmation, when this entry was a finalist.
    pub simulated: Option<SimConfirmation>,
}

impl RankedEntry {
    /// Project an evaluated candidate into its wire form.
    pub fn from_ranked(r: &RankedConfig) -> Self {
        RankedEntry {
            config: r.spec.describe(),
            machines: r.spec.machines,
            procs_per_machine: r.spec.machine.n_procs,
            cache_kb: r.spec.machine.cache_bytes / 1024,
            memory_mb: r.spec.machine.memory_bytes / (1024 * 1024),
            network: r.spec.network.map(|n| network_name(n).to_string()),
            cost: r.cost,
            model_seconds: r.e_instr_seconds,
            simulated: None,
        }
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("config".to_string(), Value::String(self.config.clone())),
            ("machines".to_string(), u64_value(self.machines as u64)),
            (
                "procs_per_machine".to_string(),
                u64_value(self.procs_per_machine as u64),
            ),
            ("cache_kb".to_string(), u64_value(self.cache_kb)),
            ("memory_mb".to_string(), u64_value(self.memory_mb)),
        ];
        if let Some(net) = &self.network {
            fields.push(("network".to_string(), Value::String(net.clone())));
        }
        fields.push(("cost".to_string(), f64_value(self.cost)));
        fields.push(("model_seconds".to_string(), f64_value(self.model_seconds)));
        if let Some(sim) = &self.simulated {
            fields.push(("simulated".to_string(), sim.to_json()));
        }
        Value::Object(fields)
    }

    fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "a ranked entry")?;
        let mut e = RankedEntry {
            config: String::new(),
            machines: 0,
            procs_per_machine: 0,
            cache_kb: 0,
            memory_mb: 0,
            network: None,
            cost: 0.0,
            model_seconds: 0.0,
            simulated: None,
        };
        let (mut saw_config, mut saw_cost, mut saw_model) = (false, false, false);
        for (key, value) in fields {
            match key.as_str() {
                "config" => {
                    e.config = req_str("config", value)?.to_string();
                    saw_config = true;
                }
                "machines" => e.machines = req_u64("machines", value)? as u32,
                "procs_per_machine" => {
                    e.procs_per_machine = req_u64("procs_per_machine", value)? as u32
                }
                "cache_kb" => e.cache_kb = req_u64("cache_kb", value)?,
                "memory_mb" => e.memory_mb = req_u64("memory_mb", value)?,
                "network" => e.network = Some(req_str("network", value)?.to_string()),
                "cost" => {
                    e.cost = req_f64("cost", value)?;
                    saw_cost = true;
                }
                "model_seconds" => {
                    e.model_seconds = req_f64("model_seconds", value)?;
                    saw_model = true;
                }
                "simulated" => e.simulated = Some(SimConfirmation::from_json(value)?),
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        if !saw_config {
            return Err(CostError::Missing("config"));
        }
        if !saw_cost {
            return Err(CostError::Missing("cost"));
        }
        if !saw_model {
            return Err(CostError::Missing("model_seconds"));
        }
        Ok(e)
    }
}

/// The optimizer's answer: workload echo, search diagnostics, the ranked
/// shortlist (model order, with simulation confirmations attached to
/// finalists), the winner, and the cost/performance Pareto frontier of
/// the feasible set.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// Resolved workload name (`custom` for raw parameters).
    pub workload: String,
    /// Locality shape α.
    pub alpha: f64,
    /// Locality scale β, bytes.
    pub beta: f64,
    /// Memory-reference fraction ρ.
    pub rho: f64,
    /// The budget searched under, dollars.
    pub budget: f64,
    /// The SLO applied, if any (seconds).
    pub slo: Option<f64>,
    /// Where every candidate went.
    pub search: SearchStats,
    /// The shortlist, best model prediction first.
    pub ranked: Vec<RankedEntry>,
    /// The recommendation: simulation-confirmed winner when finalists
    /// ran, the analytic optimum otherwise; absent when nothing is
    /// feasible.
    pub best: Option<RankedEntry>,
    /// Pareto frontier of the feasible set, cost ascending.
    pub pareto: Vec<RankedEntry>,
}

impl OptimizeReport {
    /// Canonical JSON form (`slo`/`best` omitted when absent).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("workload".to_string(), Value::String(self.workload.clone())),
            ("alpha".to_string(), f64_value(self.alpha)),
            ("beta".to_string(), f64_value(self.beta)),
            ("rho".to_string(), f64_value(self.rho)),
            ("budget".to_string(), f64_value(self.budget)),
        ];
        if let Some(slo) = self.slo {
            fields.push(("slo".to_string(), f64_value(slo)));
        }
        fields.push(("search".to_string(), self.search.to_json()));
        fields.push((
            "ranked".to_string(),
            Value::Array(self.ranked.iter().map(RankedEntry::to_json).collect()),
        ));
        if let Some(best) = &self.best {
            fields.push(("best".to_string(), best.to_json()));
        }
        fields.push((
            "pareto".to_string(),
            Value::Array(self.pareto.iter().map(RankedEntry::to_json).collect()),
        ));
        Value::Object(fields)
    }

    /// Parse the JSON form back (round-trip guarantee for artifacts).
    pub fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "an optimize report")?;
        let mut workload = None;
        let (mut alpha, mut beta, mut rho, mut budget) = (None, None, None, None);
        let mut slo = None;
        let mut search = None;
        let mut ranked = Vec::new();
        let mut best = None;
        let mut pareto = Vec::new();
        for (key, value) in fields {
            match key.as_str() {
                "workload" => workload = Some(req_str("workload", value)?.to_string()),
                "alpha" => alpha = Some(req_f64("alpha", value)?),
                "beta" => beta = Some(req_f64("beta", value)?),
                "rho" => rho = Some(req_f64("rho", value)?),
                "budget" => budget = Some(req_f64("budget", value)?),
                "slo" => slo = Some(req_f64("slo", value)?),
                "search" => search = Some(SearchStats::from_json(value)?),
                "ranked" => {
                    let arr = value.as_array().ok_or_else(|| {
                        CostError::Invalid("ranked", "must be an array".to_string())
                    })?;
                    ranked = arr
                        .iter()
                        .map(RankedEntry::from_json)
                        .collect::<Result<_, _>>()?;
                }
                "best" => best = Some(RankedEntry::from_json(value)?),
                "pareto" => {
                    let arr = value.as_array().ok_or_else(|| {
                        CostError::Invalid("pareto", "must be an array".to_string())
                    })?;
                    pareto = arr
                        .iter()
                        .map(RankedEntry::from_json)
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        Ok(OptimizeReport {
            workload: workload.ok_or(CostError::Missing("workload"))?,
            alpha: alpha.ok_or(CostError::Missing("alpha"))?,
            beta: beta.ok_or(CostError::Missing("beta"))?,
            rho: rho.ok_or(CostError::Missing("rho"))?,
            budget: budget.ok_or(CostError::Missing("budget"))?,
            slo,
            search: search.ok_or(CostError::Missing("search"))?,
            ranked,
            best,
            pareto,
        })
    }
}

impl Serialize for OptimizeReport {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

impl Deserialize for OptimizeReport {
    fn from_json_value(v: Value) -> Result<Self, String> {
        OptimizeReport::from_json(&v).map_err(|e| e.to_string())
    }
}

/// Default ranked-list length for budgeted recommendations.
pub const DEFAULT_RECOMMEND_TOP: usize = 3;

/// A §6 recommendation request: classify a workload (by name, by raw
/// `(α, β, ρ)`, or by trace measurement) and optionally back the advice
/// with the cost-optimal concrete clusters under a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendRequest {
    /// What to classify.
    pub workload: WorkloadSpec,
    /// Measure `(α, β, ρ)` from a trace instead of using the Table-2
    /// values (named paper workloads only).
    pub measure: bool,
    /// Problem-size tier for measurement (default `small` downstream).
    pub size: Option<String>,
    /// With a budget, attach the top ranked concrete clusters.
    pub budget: Option<f64>,
    /// Ranked list length (default [`DEFAULT_RECOMMEND_TOP`]).
    pub top: usize,
    /// Component prices for the ranked list.
    pub prices: PriceTable,
}

impl RecommendRequest {
    /// A default-shaped request for `workload`.
    pub fn new(workload: WorkloadSpec) -> Self {
        RecommendRequest {
            workload,
            measure: false,
            size: None,
            budget: None,
            top: DEFAULT_RECOMMEND_TOP,
            prices: PriceTable::circa_1999(),
        }
    }

    /// Canonical JSON form; defaults omitted.  The `workload` field is
    /// flattened for custom parameters (`alpha`/`beta`/`rho` at top
    /// level), matching the historical `/v1/recommend` body shape.
    pub fn to_json(&self) -> Value {
        let mut fields = Vec::new();
        match &self.workload {
            WorkloadSpec::Named(name) => {
                fields.push(("workload".to_string(), Value::String(name.clone())));
            }
            WorkloadSpec::Custom { alpha, beta, rho } => {
                fields.push(("alpha".to_string(), f64_value(*alpha)));
                fields.push(("beta".to_string(), f64_value(*beta)));
                fields.push(("rho".to_string(), f64_value(*rho)));
            }
        }
        if self.measure {
            fields.push(("measure".to_string(), Value::Bool(true)));
        }
        if let Some(size) = &self.size {
            fields.push(("size".to_string(), Value::String(size.clone())));
        }
        if let Some(budget) = self.budget {
            fields.push(("budget".to_string(), f64_value(budget)));
        }
        if self.top != DEFAULT_RECOMMEND_TOP {
            fields.push(("top".to_string(), u64_value(self.top as u64)));
        }
        if self.prices != PriceTable::circa_1999() {
            fields.push(("prices".to_string(), prices_to_json(&self.prices)));
        }
        Value::Object(fields)
    }

    /// Parse the JSON form (the `/v1/recommend` body): either `workload`
    /// or the `alpha`+`beta`+`rho` triple is required; unknown keys are
    /// rejected.
    pub fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "a recommend request")?;
        let mut named = None;
        let (mut alpha, mut beta, mut rho) = (None, None, None);
        let mut req = RecommendRequest::new(WorkloadSpec::Named(String::new()));
        for (key, value) in fields {
            match key.as_str() {
                "workload" => named = Some(WorkloadSpec::named(req_str("workload", value)?)?),
                "alpha" => alpha = Some(req_f64("alpha", value)?),
                "beta" => beta = Some(req_f64("beta", value)?),
                "rho" => rho = Some(req_f64("rho", value)?),
                "measure" => {
                    req.measure = value.as_bool().ok_or_else(|| {
                        CostError::Invalid("measure", "must be a boolean".to_string())
                    })?;
                }
                "size" => {
                    req.size = Some(validate_confirm_size(req_str("size", value)?)?);
                }
                "budget" => {
                    let b = req_f64("budget", value)?;
                    if !b.is_finite() || b < 0.0 {
                        return Err(CostError::Invalid(
                            "budget",
                            "must be finite and non-negative".to_string(),
                        ));
                    }
                    req.budget = Some(b);
                }
                "top" => {
                    let t = req_u64("top", value)?;
                    if t == 0 {
                        return Err(CostError::Invalid("top", "must be at least 1".to_string()));
                    }
                    req.top = t as usize;
                }
                "prices" => req.prices = prices_from_json(value)?,
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        req.workload = match (named, alpha, beta, rho) {
            (Some(w), None, None, None) => w,
            (None, Some(alpha), Some(beta), Some(rho)) => {
                let spec = WorkloadSpec::Custom { alpha, beta, rho };
                spec.resolve()?;
                spec
            }
            (None, None, None, None) => {
                return Err(CostError::Missing("workload (or alpha+beta+rho)"))
            }
            (Some(_), _, _, _) => {
                return Err(CostError::Invalid(
                    "workload",
                    "give either a workload name or alpha+beta+rho, not both".to_string(),
                ))
            }
            _ => return Err(CostError::Missing("alpha+beta+rho (all three)")),
        };
        if req.measure && !matches!(req.workload, WorkloadSpec::Named(_)) {
            return Err(CostError::Invalid(
                "measure",
                "requires a named paper workload".to_string(),
            ));
        }
        Ok(req)
    }
}

impl fmt::Display for RecommendRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let default_shaped = !self.measure
            && self.size.is_none()
            && self.budget.is_none()
            && self.top == DEFAULT_RECOMMEND_TOP
            && self.prices == PriceTable::circa_1999();
        match &self.workload {
            WorkloadSpec::Named(name) if default_shaped => f.write_str(name),
            _ => {
                let text = serde_json::to_string(&self.to_json()).map_err(|_| fmt::Error)?;
                f.write_str(&text)
            }
        }
    }
}

impl FromStr for RecommendRequest {
    type Err = CostError;

    /// Accepts the JSON object form or a bare workload name.
    fn from_str(s: &str) -> Result<Self, CostError> {
        let s = s.trim();
        if s.starts_with('{') {
            let v: Value = serde_json::from_str(s)
                .map_err(|e| CostError::Syntax(format!("invalid JSON: {e}")))?;
            return RecommendRequest::from_json(&v);
        }
        Ok(RecommendRequest::new(WorkloadSpec::named(s)?))
    }
}

impl Serialize for RecommendRequest {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

impl Deserialize for RecommendRequest {
    fn from_json_value(v: Value) -> Result<Self, String> {
        RecommendRequest::from_json(&v).map_err(|e| e.to_string())
    }
}

/// The §6 recommendation answer: the classified workload, the platform
/// class with its rationale, and (under a budget) the ranked concrete
/// clusters backing the advice.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendReport {
    /// Workload name.
    pub workload: String,
    /// Locality shape α.
    pub alpha: f64,
    /// Locality scale β, bytes.
    pub beta: f64,
    /// Memory-reference fraction ρ.
    pub rho: f64,
    /// The recommended platform class.
    pub platform: RecommendedPlatform,
    /// Why (restating the triggering rule).
    pub rationale: String,
    /// §6 upgrade guidance for this class.
    pub upgrade_advice: String,
    /// Cost-optimal concrete clusters (present only under a budget).
    pub ranked: Option<Vec<RankedEntry>>,
}

impl RecommendReport {
    /// Assemble a report from a classified workload.
    pub fn new(w: &WorkloadParams, r: &Recommendation, ranked: Option<Vec<RankedEntry>>) -> Self {
        RecommendReport {
            workload: w.name.clone(),
            alpha: w.locality.alpha,
            beta: w.locality.beta,
            rho: w.rho,
            platform: r.platform,
            rationale: r.rationale.clone(),
            upgrade_advice: r.upgrade_advice.clone(),
            ranked,
        }
    }

    /// Canonical JSON form (`ranked` omitted when no budget was given).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("workload".to_string(), Value::String(self.workload.clone())),
            ("alpha".to_string(), f64_value(self.alpha)),
            ("beta".to_string(), f64_value(self.beta)),
            ("rho".to_string(), f64_value(self.rho)),
            (
                "platform".to_string(),
                serde_json::to_value(&self.platform).expect("platform serializes"),
            ),
            (
                "rationale".to_string(),
                Value::String(self.rationale.clone()),
            ),
            (
                "upgrade_advice".to_string(),
                Value::String(self.upgrade_advice.clone()),
            ),
        ];
        if let Some(ranked) = &self.ranked {
            fields.push((
                "ranked".to_string(),
                Value::Array(ranked.iter().map(RankedEntry::to_json).collect()),
            ));
        }
        Value::Object(fields)
    }

    /// Parse the JSON form back.
    pub fn from_json(v: &Value) -> Result<Self, CostError> {
        let fields = as_object(v, "a recommend report")?;
        let mut workload = None;
        let (mut alpha, mut beta, mut rho) = (None, None, None);
        let mut platform = None;
        let mut rationale = None;
        let mut upgrade = None;
        let mut ranked = None;
        for (key, value) in fields {
            match key.as_str() {
                "workload" => workload = Some(req_str("workload", value)?.to_string()),
                "alpha" => alpha = Some(req_f64("alpha", value)?),
                "beta" => beta = Some(req_f64("beta", value)?),
                "rho" => rho = Some(req_f64("rho", value)?),
                "platform" => {
                    platform = Some(
                        RecommendedPlatform::from_json_value(value.clone())
                            .map_err(|e| CostError::Invalid("platform", e))?,
                    );
                }
                "rationale" => rationale = Some(req_str("rationale", value)?.to_string()),
                "upgrade_advice" => upgrade = Some(req_str("upgrade_advice", value)?.to_string()),
                "ranked" => {
                    let arr = value.as_array().ok_or_else(|| {
                        CostError::Invalid("ranked", "must be an array".to_string())
                    })?;
                    ranked = Some(
                        arr.iter()
                            .map(RankedEntry::from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                other => return Err(CostError::UnknownField(other.to_string())),
            }
        }
        Ok(RecommendReport {
            workload: workload.ok_or(CostError::Missing("workload"))?,
            alpha: alpha.ok_or(CostError::Missing("alpha"))?,
            beta: beta.ok_or(CostError::Missing("beta"))?,
            rho: rho.ok_or(CostError::Missing("rho"))?,
            platform: platform.ok_or(CostError::Missing("platform"))?,
            rationale: rationale.ok_or(CostError::Missing("rationale"))?,
            upgrade_advice: upgrade.ok_or(CostError::Missing("upgrade_advice"))?,
            ranked,
        })
    }
}

impl Serialize for RecommendReport {
    fn to_json_value(&self) -> Value {
        self.to_json()
    }
}

impl Deserialize for RecommendReport {
    fn from_json_value(v: Value) -> Result<Self, String> {
        RecommendReport::from_json(&v).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimize_request_json_fixed_point() {
        let mut req = OptimizeRequest::new(WorkloadSpec::named("fft").unwrap(), 20_000.0);
        req.slo = Some(2.5e-8);
        req.search_space.max_machines = 32;
        req.search_space.memory_mb = vec![32, 64, 128, 256];
        req.prices.atm_per_machine = 500.0;
        req.top = 7;
        req.confirm = 4;
        req.confirm_size = "medium".to_string();
        let json = req.to_json();
        let parsed = OptimizeRequest::from_json(&json).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn optimize_request_defaults_omitted() {
        let req = OptimizeRequest::new(WorkloadSpec::named("LU").unwrap(), 5_000.0);
        let json = req.to_json();
        assert_eq!(
            serde_json::to_string(&json).unwrap(),
            r#"{"workload":"LU","budget":5000.0}"#
        );
        assert_eq!(OptimizeRequest::from_json(&json).unwrap(), req);
    }

    #[test]
    fn optimize_request_compact_round_trip() {
        let req = OptimizeRequest::new(WorkloadSpec::named("Radix").unwrap(), 12_000.0);
        assert_eq!(req.to_string(), "Radix@12000");
        let parsed: OptimizeRequest = req.to_string().parse().unwrap();
        assert_eq!(parsed, req);
        // Non-default requests fall back to JSON, which also parses.
        let mut fancy = req.clone();
        fancy.confirm = 3;
        let reparsed: OptimizeRequest = fancy.to_string().parse().unwrap();
        assert_eq!(reparsed, fancy);
    }

    #[test]
    fn workload_names_canonicalize() {
        assert_eq!(
            WorkloadSpec::named("tpcc").unwrap(),
            WorkloadSpec::Named("TPC-C".to_string())
        );
        assert!(matches!(
            WorkloadSpec::named("nope"),
            Err(CostError::UnknownWorkload(_))
        ));
    }

    #[test]
    fn unknown_fields_rejected() {
        let v: Value =
            serde_json::from_str(r#"{"workload":"FFT","budget":100,"buget":5}"#).unwrap();
        assert!(matches!(
            OptimizeRequest::from_json(&v),
            Err(CostError::UnknownField(k)) if k == "buget"
        ));
        let v: Value =
            serde_json::from_str(r#"{"workload":"FFT","budget":100,"search_space":{"prcs":[1]}}"#)
                .unwrap();
        assert!(matches!(
            OptimizeRequest::from_json(&v),
            Err(CostError::UnknownField(k)) if k == "prcs"
        ));
    }

    #[test]
    fn partial_prices_override_defaults() {
        let v: Value = serde_json::from_str(r#"{"ws_base":2000.0}"#).unwrap();
        let p = prices_from_json(&v).unwrap();
        assert_eq!(p.ws_base, 2000.0);
        assert_eq!(p.atm_per_machine, PriceTable::circa_1999().atm_per_machine);
        let bad: Value = serde_json::from_str(r#"{"ws_base":-5.0}"#).unwrap();
        assert!(prices_from_json(&bad).is_err());
    }

    #[test]
    fn custom_workload_validates_at_parse() {
        let v: Value =
            serde_json::from_str(r#"{"workload":{"alpha":0.5,"beta":100,"rho":0.2},"budget":1}"#)
                .unwrap();
        assert!(matches!(
            OptimizeRequest::from_json(&v),
            Err(CostError::Invalid("workload", _))
        ));
    }

    #[test]
    fn recommend_request_fixed_point_and_flattened_custom() {
        let named = RecommendRequest::new(WorkloadSpec::named("EDGE").unwrap());
        assert_eq!(
            serde_json::to_string(&named.to_json()).unwrap(),
            r#"{"workload":"EDGE"}"#
        );
        assert_eq!(
            RecommendRequest::from_json(&named.to_json()).unwrap(),
            named
        );

        let mut custom = RecommendRequest::new(WorkloadSpec::Custom {
            alpha: 1.5,
            beta: 200.0,
            rho: 0.3,
        });
        custom.budget = Some(8_000.0);
        custom.top = 5;
        let json = custom.to_json();
        assert_eq!(
            serde_json::to_string(&json).unwrap(),
            r#"{"alpha":1.5,"beta":200.0,"rho":0.3,"budget":8000.0,"top":5}"#
        );
        let parsed = RecommendRequest::from_json(&json).unwrap();
        assert_eq!(parsed, custom);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn recommend_request_rejects_mixed_and_partial_workloads() {
        let mixed: Value =
            serde_json::from_str(r#"{"workload":"FFT","alpha":1.5,"beta":200,"rho":0.3}"#).unwrap();
        assert!(RecommendRequest::from_json(&mixed).is_err());
        let partial: Value = serde_json::from_str(r#"{"alpha":1.5,"beta":200}"#).unwrap();
        assert!(matches!(
            RecommendRequest::from_json(&partial),
            Err(CostError::Missing(_))
        ));
        let measure_custom: Value =
            serde_json::from_str(r#"{"alpha":1.5,"beta":200,"rho":0.3,"measure":true}"#).unwrap();
        assert!(matches!(
            RecommendRequest::from_json(&measure_custom),
            Err(CostError::Invalid("measure", _))
        ));
    }

    #[test]
    fn space_wire_round_trips_non_defaults() {
        let mut space = CandidateSpace::paper_market();
        space.proc_counts = vec![1, 2];
        space.networks = vec![NetworkKind::Atm155, NetworkKind::Ethernet10];
        space.clock_mhz = 300.0;
        let json = space_to_json(&space);
        let parsed = space_from_json(&json).unwrap();
        assert_eq!(parsed, space);
        assert_eq!(space_to_json(&parsed), json);
        // Order of non-default arrays is preserved verbatim.
        assert_eq!(
            serde_json::to_string(json.get("networks").unwrap()).unwrap(),
            r#"["atm","eth10"]"#
        );
    }

    #[test]
    fn search_stats_pruning_ratio() {
        let mut s = SearchStats {
            candidates: 1000,
            unpriced: 10,
            over_budget: 700,
            model_rejected: 40,
            slo_filtered: 50,
            feasible: 200,
            confirmed: 0,
            pruning_ratio: 0.0,
        };
        s.set_confirmed(5);
        assert_eq!(s.pruning_ratio, 0.995);
        let round = SearchStats::from_json(&s.to_json()).unwrap();
        assert_eq!(round, s);
    }
}
