//! Property-based tests of the cost model and optimizers.

use memhier_core::locality::WorkloadParams;
use memhier_core::machine::{MachineSpec, NetworkKind};
use memhier_core::model::AnalyticModel;
use memhier_core::platform::ClusterSpec;
use memhier_cost::{optimize, plan_upgrade, recommend, CandidateSpace, PriceTable};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = WorkloadParams> {
    (1.05f64..2.5, 5.0f64..3000.0, 0.05f64..0.8)
        .prop_map(|(a, b, r)| WorkloadParams::new("prop", a, b, r).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizer_results_affordable_and_sorted(
        w in workload_strategy(),
        budget in 2000.0f64..60_000.0,
    ) {
        let ranked = optimize(
            budget,
            &w,
            &AnalyticModel::default(),
            &PriceTable::circa_1999(),
            &CandidateSpace::paper_market(),
        );
        for pair in ranked.windows(2) {
            prop_assert!(pair[0].e_instr_seconds <= pair[1].e_instr_seconds);
        }
        for r in &ranked {
            prop_assert!(r.cost <= budget);
            prop_assert!(r.e_instr_seconds.is_finite());
            prop_assert!(r.spec.validate().is_ok());
        }
    }

    #[test]
    fn optimizer_monotone_in_budget(
        w in workload_strategy(),
        b1 in 2000.0f64..30_000.0,
        extra in 0.0f64..30_000.0,
    ) {
        let model = AnalyticModel::default();
        let prices = PriceTable::circa_1999();
        let space = CandidateSpace::paper_market();
        let r1 = optimize(b1, &w, &model, &prices, &space);
        let r2 = optimize(b1 + extra, &w, &model, &prices, &space);
        if let (Some(a), Some(b)) = (r1.first(), r2.first()) {
            prop_assert!(
                b.e_instr_seconds <= a.e_instr_seconds + 1e-18,
                "more budget got slower: {} vs {}", b.e_instr_seconds, a.e_instr_seconds
            );
        }
    }

    #[test]
    fn cluster_cost_is_linear_in_machines(
        n in prop_oneof![Just(1u32), Just(2), Just(4)],
        cache in prop_oneof![Just(256u64), Just(512)],
        mem in prop_oneof![Just(32u64), Just(64), Just(128)],
        nn in 2u32..12,
    ) {
        let prices = PriceTable::circa_1999();
        let m = MachineSpec::new(n, cache, mem, 200.0);
        let c1 = ClusterSpec::cluster(m, nn, NetworkKind::Ethernet100);
        let c2 = ClusterSpec::cluster(m, nn * 2, NetworkKind::Ethernet100);
        let (a, b) = (
            prices.cluster_cost(&c1).unwrap(),
            prices.cluster_cost(&c2).unwrap(),
        );
        prop_assert!((b - 2.0 * a).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn upgrade_plans_within_budget_and_improving(
        w in workload_strategy(),
        budget in 0.0f64..10_000.0,
    ) {
        let existing = ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet10,
        );
        let model = AnalyticModel::default();
        let plans = plan_upgrade(&existing, budget, &w, &model, &PriceTable::circa_1999());
        prop_assert!(!plans.is_empty(), "no-op must always exist");
        let noop = plans
            .iter()
            .find(|p| p.cost == 0.0)
            .expect("zero-cost plan present");
        let best = &plans[0];
        prop_assert!(best.cost <= budget);
        prop_assert!(best.e_instr_seconds <= noop.e_instr_seconds + 1e-18);
    }

    #[test]
    fn recommendation_is_total_and_consistent(w in workload_strategy()) {
        let r = recommend(&w);
        // The rationale embeds the classification thresholds consistently.
        let memory_bound = w.rho >= memhier_cost::recommend::RHO_MEMORY_BOUND;
        if memory_bound {
            prop_assert!(r.rationale.contains("memory bound"), "{}", r.rationale);
        } else {
            prop_assert!(r.rationale.contains("CPU bound"), "{}", r.rationale);
        }
    }
}
