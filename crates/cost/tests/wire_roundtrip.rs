//! Round-trip and schema guarantees for the cost crate's typed wire
//! format.
//!
//! Two layers, mirroring `memhier-bench`'s `scenario_roundtrip.rs`:
//!
//! * property tests that *struct → JSON → parse → JSON* is a fixed
//!   point for [`OptimizeRequest`] and [`RecommendRequest`] across
//!   randomly drawn workloads, budgets, grids, prices, and confirmation
//!   settings (with the `Display` spelling parsing back to the same
//!   value);
//! * golden fixtures pinning the `/v1/optimize` and `/v1/recommend`
//!   response schemas byte for byte — the exact bytes `memhierd` serves
//!   and `memhier … --json` prints.  Regenerate after an intentional
//!   schema or model change with:
//!
//!   ```text
//!   MEMHIER_BLESS=1 cargo test -p memhier-cost --test wire_roundtrip
//!   ```

use memhier_core::machine::NetworkKind;
use memhier_cost::{
    analyze, optimize, recommend, CandidateSpace, OptimizeReport, OptimizeRequest, PriceTable,
    RankedEntry, RecommendReport, RecommendRequest, WorkloadSpec,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        prop_oneof![
            Just("FFT"),
            Just("LU"),
            Just("Radix"),
            Just("EDGE"),
            Just("TPC-C"),
        ]
        .prop_map(|name| WorkloadSpec::named(name).expect("paper kernels resolve")),
        (1.05f64..3.0, 10.0f64..10_000.0, 0.05f64..0.95)
            .prop_map(|(alpha, beta, rho)| WorkloadSpec::Custom { alpha, beta, rho }),
    ]
}

fn space_strategy() -> impl Strategy<Value = CandidateSpace> {
    let procs = prop_oneof![
        Just(vec![1u32, 2, 4]),
        Just(vec![1, 2]),
        Just(vec![2, 4]),
        Just(vec![1]),
    ];
    let cache = prop_oneof![Just(vec![256u64, 512]), Just(vec![256]), Just(vec![512])];
    let mem = prop_oneof![
        Just(vec![32u64, 64, 128]),
        Just(vec![32, 64, 128, 256]),
        Just(vec![64]),
    ];
    let networks = prop_oneof![
        Just(vec![
            NetworkKind::Ethernet10,
            NetworkKind::Ethernet100,
            NetworkKind::Atm155,
        ]),
        Just(vec![NetworkKind::Ethernet100, NetworkKind::Atm155]),
        Just(vec![NetworkKind::Atm155]),
    ];
    (
        procs,
        cache,
        mem,
        1u32..=40,
        networks,
        prop_oneof![Just(200.0f64), Just(300.0), Just(450.0)],
    )
        .prop_map(
            |(proc_counts, cache_kb, memory_mb, max_machines, networks, clock_mhz)| {
                CandidateSpace {
                    proc_counts,
                    cache_kb,
                    memory_mb,
                    max_machines,
                    networks,
                    clock_mhz,
                }
            },
        )
}

fn prices_strategy() -> impl Strategy<Value = PriceTable> {
    prop_oneof![
        Just(PriceTable::circa_1999()),
        (500.0f64..5_000.0).prop_map(|ws| {
            let mut p = PriceTable::circa_1999();
            p.ws_base = ws;
            p
        }),
        (0.5f64..10.0).prop_map(|mb| {
            let mut p = PriceTable::circa_1999();
            p.mem_per_mb = mb;
            p
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// request → JSON → parse → JSON never drifts, and `Display`
    /// (compact `WORKLOAD@BUDGET` or JSON) parses back to the same
    /// request.
    #[test]
    fn optimize_request_json_is_a_fixed_point(
        workload in workload_strategy(),
        budget in 100.0f64..100_000.0,
        slo in prop_oneof![Just(None), (1e-9f64..1e-5).prop_map(Some)],
        space in space_strategy(),
        prices in prices_strategy(),
        top in 1usize..10,
        confirm in 0usize..8,
        confirm_size in prop_oneof![Just("small"), Just("medium"), Just("paper")],
    ) {
        let mut req = OptimizeRequest::new(workload, budget);
        req.slo = slo;
        req.search_space = space;
        req.prices = prices;
        req.top = top;
        req.confirm = confirm;
        req.confirm_size = confirm_size.to_string();

        let json = req.to_json();
        let parsed = OptimizeRequest::from_json(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed, &req);
        prop_assert_eq!(parsed.to_json(), json);

        let reparsed: OptimizeRequest = req
            .to_string()
            .parse()
            .map_err(|e: memhier_cost::CostError| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reparsed, req);
    }

    /// The same fixed point for recommend requests, including the
    /// flattened custom-workload spelling.
    #[test]
    fn recommend_request_json_is_a_fixed_point(
        workload in workload_strategy(),
        measure in any::<bool>(),
        size in prop_oneof![
            Just(None),
            Just(Some("small")),
            Just(Some("medium")),
            Just(Some("paper")),
        ],
        budget in prop_oneof![Just(None), (100.0f64..100_000.0).prop_map(Some)],
        top in 1usize..10,
        prices in prices_strategy(),
    ) {
        let mut req = RecommendRequest::new(workload);
        // `measure` (and its size tier) only applies to named kernels.
        if matches!(req.workload, WorkloadSpec::Named(_)) {
            req.measure = measure;
            if measure {
                req.size = size.map(str::to_string);
            }
        }
        req.budget = budget;
        req.top = top;
        req.prices = prices;

        let json = req.to_json();
        let parsed = RecommendRequest::from_json(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed, &req);
        prop_assert_eq!(parsed.to_json(), json);

        let reparsed: RecommendRequest = req
            .to_string()
            .parse()
            .map_err(|e: memhier_cost::CostError| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reparsed, req);
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against `tests/golden/<name>`, or rewrite the
/// fixture when `MEMHIER_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("MEMHIER_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, actual).expect("write fixture");
        eprintln!("[blessed {}]", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing fixture {}; generate it with MEMHIER_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "`{name}` diverged from the golden schema fixture.\n\
         If the schema or model change is intentional, re-bless with\n\
         MEMHIER_BLESS=1 and call it out in the PR."
    );
}

/// The exact bytes `POST /v1/optimize` serves (and `memhier optimize
/// --json` prints) for a fixed analytic request: schema, field order,
/// and float spelling all pinned.
#[test]
fn golden_optimize_response_schema() {
    let mut req = OptimizeRequest::new(WorkloadSpec::named("FFT").unwrap(), 9_000.0);
    req.search_space.max_machines = 4;
    req.search_space.memory_mb = vec![32, 64];
    req.top = 3;
    let report = analyze(&req).expect("analytic search succeeds");
    let body = format!(
        "{}\n",
        serde_json::to_string_pretty(&report.to_json()).unwrap()
    );
    check_golden("optimize_response.json", &body);

    // The pinned body parses back into an identical report: the wire
    // format is a fixed point on responses too.
    let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
    let parsed = OptimizeReport::from_json(&v).expect("fixture parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), report.to_json());
}

/// The exact bytes `POST /v1/recommend` serves (and `memhier recommend
/// --format json` prints) for a budgeted request.
#[test]
fn golden_recommend_response_schema() {
    let req = {
        let mut r = RecommendRequest::new(WorkloadSpec::named("LU").unwrap());
        r.budget = Some(4_000.0);
        r.top = 2;
        r
    };
    // Assemble exactly as `memhier_bench::run_recommend` does for the
    // non-measure path (the bench crate is not a dependency here).
    let params = req.workload.resolve().unwrap();
    let rec = recommend(&params);
    let ranked: Vec<RankedEntry> = optimize(
        req.budget.unwrap(),
        &params,
        &memhier_core::model::AnalyticModel::default(),
        &req.prices,
        &CandidateSpace::paper_market(),
    )
    .iter()
    .take(req.top)
    .map(RankedEntry::from_ranked)
    .collect();
    let report = RecommendReport::new(&params, &rec, Some(ranked));
    let body = format!(
        "{}\n",
        serde_json::to_string_pretty(&report.to_json()).unwrap()
    );
    check_golden("recommend_response.json", &body);

    let v: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
    let parsed = RecommendReport::from_json(&v).expect("fixture parses");
    assert_eq!(parsed, report);
}
