//! Endpoint handlers: the JSON API surface of `memhierd`.
//!
//! | endpoint | verb | body | answer |
//! |----------|------|------|--------|
//! | `/healthz`, `/livez` | GET | — | liveness + version (200 while the process runs) |
//! | `/readyz` | GET | — | readiness: 200 accepting, 503 starting/draining |
//! | `/metrics` | GET | — | counters, latency histogram, cache stats |
//! | `/v1/registry` | GET | — | the workload/platform/network registry with parameter schemas (same document `memhier workloads --json` / `memhier platforms --json` render) |
//! | `/v1/model` | POST | [`Scenario`] JSON (`{config, workload}`) | analytic `E(Instr)` prediction |
//! | `/v1/simulate` | POST | [`Scenario`] JSON (`{config, workload, size?, ...}`) | full `SimReport` |
//! | `/v1/recommend` | POST | [`RecommendRequest`] JSON (`{workload \| alpha+beta+rho, measure?, size?, budget?, top?, prices?}`) | §6 platform advice (+ ranked clusters under a budget) |
//! | `/v1/optimize` | POST | [`OptimizeRequest`] JSON (`{workload, budget, slo?, search_space?, prices?, top?, confirm?, confirm_size?}`) | fleet-scale search: ranked shortlist, pruning stats, Pareto frontier |
//! | `/v1/sweep` | POST | `{configs, workloads, size?}` — expands to one [`Scenario`] per grid point | one row per grid point |
//! | `/v1/fit` | POST | [`FitRequest`] JSON (`{trace, granularity?, chunk_records?}`) | streaming α/β/ρ fit of a recorded `.mtr` trace ([`FitReport`](memhier_trace::FitReport)) |
//!
//! Every POST endpoint parses its body with a unified typed wire format
//! — [`Scenario`] for the simulation endpoints, the `memhier-cost`
//! request structs for the advisor endpoints — so the service, the CLI
//! flags, and plan files all accept exactly the same shapes and reject
//! with the same typed error messages
//! ([`ScenarioError`](memhier_bench::ScenarioError) / [`CostError`],
//! both 400s).
//!
//! Every `/v1` response is a pure function of its request, so successful
//! bodies are memoized in the sharded LRU [`ResponseCache`] keyed by
//! `method path` plus the request JSON **canonicalized** (object keys
//! sorted recursively, compact form) — key order and whitespace in the
//! client's JSON never cause a spurious miss.
//!
//! `/v1/simulate` serializes exactly what `memhier simulate --json`
//! prints (`SimReport`, pretty, trailing newline), `/v1/recommend` the
//! [`RecommendReport`](memhier_cost::RecommendReport) `memhier recommend
//! --format json` prints, and `/v1/optimize` the
//! [`OptimizeReport`](memhier_cost::OptimizeReport) `memhier optimize
//! --json` prints, so the service and the CLI stay byte-for-byte
//! interchangeable.  `/v1/fit` likewise serializes exactly what `memhier
//! fit --trace FILE --json` prints; it is the one `/v1` endpoint that is
//! **not** memoized, because its answer depends on the trace file's
//! bytes, not only on the request body.

use crate::cache::ResponseCache;
use crate::http::{HttpError, Request, Response};
use crate::metrics::Metrics;
use memhier_bench::names::paper_params;
use memhier_bench::{run_optimize, run_recommend, run_sweep, Scenario, Sizes};
use memhier_core::model::AnalyticModel;
use memhier_cost::{CostError, OptimizeRequest, RecommendRequest};
use memhier_trace::{run_fit, FitRequest};
use serde_json::Value;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Largest `configs × workloads` grid `/v1/sweep` accepts.
pub const MAX_SWEEP_POINTS: usize = 64;

/// Largest candidate grid `/v1/optimize` will enumerate (the analytic
/// prune is cheap, but the grid is the product of six axes and a typo'd
/// request shouldn't pin a worker).
pub const MAX_OPTIMIZE_CANDIDATES: usize = 250_000;

/// Largest `confirm` count `/v1/optimize` accepts: confirmation runs
/// full simulations through the sweep runner, so it shares the sweep
/// endpoint's cap.
pub const MAX_OPTIMIZE_CONFIRM: usize = MAX_SWEEP_POINTS;

/// Lifecycle phase reported by `GET /readyz`, so load balancers can
/// route around a memhierd that is starting up or draining while
/// `/livez` (and `/healthz`) still answer 200 — "the process is fine,
/// just don't send it new traffic".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Constructed but not yet accepting (readyz answers 503).
    Starting,
    /// Accepting traffic (readyz answers 200).
    Ready,
    /// Shutdown requested: existing connections are completing, new
    /// traffic should go elsewhere (readyz answers 503).
    Draining,
}

/// Shared per-service state: the response cache plus the metric registry.
pub struct AppState {
    /// Memoized successful responses.
    pub cache: ResponseCache,
    /// Request counters and latency histogram.
    pub metrics: Metrics,
    /// Admission queue capacity (rendered in `/metrics`).
    pub queue_capacity: usize,
    /// Worker-pool width (rendered in `/metrics`).
    pub workers: usize,
    /// Lifecycle phase behind `/readyz` (0 starting / 1 ready / 2 draining).
    readiness: AtomicU8,
}

impl AppState {
    /// Fresh state for a server with the given shape, in
    /// [`Readiness::Starting`].
    pub fn new(
        cache_capacity: usize,
        cache_shards: usize,
        queue_capacity: usize,
        workers: usize,
    ) -> Self {
        AppState {
            cache: ResponseCache::new(cache_capacity, cache_shards),
            metrics: Metrics::default(),
            queue_capacity,
            workers,
            readiness: AtomicU8::new(0),
        }
    }

    /// Current lifecycle phase.
    pub fn readiness(&self) -> Readiness {
        match self.readiness.load(Ordering::Acquire) {
            1 => Readiness::Ready,
            2 => Readiness::Draining,
            _ => Readiness::Starting,
        }
    }

    /// The listener is bound and accepting: `/readyz` starts answering 200.
    pub fn set_ready(&self) {
        self.readiness.store(1, Ordering::Release);
    }

    /// Shutdown has been requested: `/readyz` answers 503 while existing
    /// connections finish.
    pub fn begin_drain(&self) {
        self.readiness.store(2, Ordering::Release);
    }
}

/// Recursively sort object keys so semantically equal requests share one
/// cache key regardless of field order.
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, val)| (k.clone(), canonicalize(val)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// Run `f` on a helper thread, waiting at most until `deadline`.  On
/// timeout the caller gets a 503 and the helper thread is detached: its
/// result is discarded when it eventually finishes (simulations have no
/// cancellation points, so this is the abort the service can offer).
pub fn run_with_deadline<T: Send + 'static>(
    deadline: Instant,
    label: &'static str,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<T, HttpError> {
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name(format!("memhierd-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .map_err(|e| HttpError::status(500, format!("spawning {label} worker: {e}")))?;
    let remaining = deadline.saturating_duration_since(Instant::now());
    rx.recv_timeout(remaining)
        .map_err(|_| HttpError::status(503, format!("deadline exceeded during {label}")))
}

fn json_error(e: serde_json::Error) -> HttpError {
    HttpError::status(500, format!("serializing response: {e}"))
}

/// Pretty body with the same trailing newline `println!` gives the CLI's
/// `--json` output.
fn pretty_body<T: serde::Serialize>(value: &T) -> Result<String, HttpError> {
    Ok(format!(
        "{}\n",
        serde_json::to_string_pretty(value).map_err(json_error)?
    ))
}

fn body_object(req: &Request) -> Result<Value, HttpError> {
    let text = req.body_str()?;
    let v: Value = serde_json::from_str(text.trim())
        .map_err(|e| HttpError::bad(format!("request body is not valid JSON: {e}")))?;
    match v {
        Value::Object(_) => Ok(v),
        _ => Err(HttpError::bad("request body must be a JSON object")),
    }
}

/// Route one parsed request.  `deadline` is absolute (accept time plus the
/// configured per-request timeout).
pub fn handle(req: &Request, state: &AppState, deadline: Instant) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") | ("GET", "/livez") => healthz(state),
        ("GET", "/readyz") => readyz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/v1/registry") => registry(),
        ("POST", "/v1/registry") => Response::error(405, "use GET without a body"),
        ("POST", "/v1/model")
        | ("POST", "/v1/simulate")
        | ("POST", "/v1/recommend")
        | ("POST", "/v1/optimize")
        | ("POST", "/v1/sweep") => cached_post(req, state, deadline),
        // Uncached: the answer depends on the trace file on disk, so a
        // memoized body could go stale if the file is re-recorded.
        ("POST", "/v1/fit") => fit_post(req, deadline),
        ("GET", "/v1/model")
        | ("GET", "/v1/simulate")
        | ("GET", "/v1/recommend")
        | ("GET", "/v1/optimize")
        | ("GET", "/v1/sweep")
        | ("GET", "/v1/fit") => Response::error(405, "use POST with a JSON body"),
        _ => Response::error(404, &format!("no route for {} {}", req.method, req.path)),
    }
}

fn healthz(state: &AppState) -> Response {
    let body = serde_json::json!({
        "status": "ok",
        "service": "memhierd",
        "version": env!("CARGO_PKG_VERSION"),
        "uptime_seconds": state.metrics.uptime_seconds(),
    });
    match pretty_body(&body) {
        Ok(b) => Response::json(200, b),
        Err(e) => Response::error(e.status, &e.message),
    }
}

/// `GET /readyz`: 200 only while the listener is accepting and no drain
/// has begun; 503 with the phase name otherwise.
fn readyz(state: &AppState) -> Response {
    let (status, phase) = match state.readiness() {
        Readiness::Ready => (200, "ready"),
        Readiness::Starting => (503, "starting"),
        Readiness::Draining => (503, "draining"),
    };
    let body = serde_json::json!({
        "status": phase,
        "service": "memhierd",
    });
    match pretty_body(&body) {
        Ok(b) => Response::json(status, b),
        Err(e) => Response::error(e.status, &e.message),
    }
}

fn metrics(state: &AppState) -> Response {
    let doc = state
        .metrics
        .render(state.cache.stats(), state.queue_capacity, state.workers);
    match pretty_body(&doc) {
        Ok(b) => Response::json(200, b),
        Err(e) => Response::error(e.status, &e.message),
    }
}

/// `GET /v1/registry`: the workload/platform/network registry document.
/// Static per process (registration happens at startup), so it is
/// answered inline on the event loop without touching the cache.
fn registry() -> Response {
    match pretty_body(&memhier_bench::registry_json()) {
        Ok(b) => Response::json(200, b),
        Err(e) => Response::error(e.status, &e.message),
    }
}

/// The memoization key for a cacheable POST: method, path, and the
/// request JSON canonicalized (sorted keys, compact form).
fn cache_key(req: &Request, parsed: &Value) -> String {
    let canon = canonicalize(parsed);
    let compact = serde_json::to_string(&canon).unwrap_or_default();
    format!("{} {}\n{compact}", req.method, req.path)
}

/// Compute one cacheable POST body (no cache involvement).
fn compute_cacheable(path: &str, parsed: &Value, deadline: Instant) -> Result<String, HttpError> {
    match path {
        "/v1/model" => v1_model(parsed),
        "/v1/simulate" => v1_simulate(parsed, deadline),
        "/v1/recommend" => v1_recommend(parsed, deadline),
        "/v1/optimize" => v1_optimize(parsed, deadline),
        "/v1/sweep" => v1_sweep(parsed, deadline),
        // Routing only sends the five paths above here.
        other => Err(HttpError::status(500, format!("unroutable path {other}"))),
    }
}

/// The shared memoization wrapper for every `/v1` POST.
fn cached_post(req: &Request, state: &AppState, deadline: Instant) -> Response {
    let parsed = match body_object(req) {
        Ok(v) => v,
        Err(e) => return Response::error(e.status, &e.message),
    };
    let key = cache_key(req, &parsed);
    if let Some(hit) = state.cache.get(&key) {
        return Response::json(hit.status, hit.body.clone()).with_header("X-Cache", "hit");
    }
    match compute_cacheable(&req.path, &parsed, deadline) {
        Ok(body) => {
            state.cache.insert(key, 200, body.clone());
            Response::json(200, body).with_header("X-Cache", "miss")
        }
        Err(e) => Response::error(e.status, &e.message),
    }
}

/// What the event loop should do with one parsed request — the split
/// behind "hits answered on the loop, misses handed to the pool".
#[derive(Debug)]
pub enum FastRoute {
    /// Fully answered without a worker: health/readiness/metrics, every
    /// routing or parse error, and fresh cache hits.
    Done(Response),
    /// A stale cache hit: serve `response` (already stamped
    /// `X-Cache: stale`) immediately, **and** dispatch a background
    /// revalidation of `key` — this arm is only returned when the
    /// caller allowed revalidation and this request won the entry's
    /// single-flight latch.
    StaleRevalidate {
        /// The stale body to serve right now.
        response: Response,
        /// Cache key the background recomputation must refresh.
        key: String,
    },
    /// A genuine miss: hand the request to a worker
    /// ([`compute_response`]), which memoizes under `key` (`None` for
    /// `/v1/fit`, which is never cached).
    Miss {
        /// Memoization key, when the endpoint is cacheable.
        key: Option<String>,
    },
}

/// Route one request as far as it can go **on the event loop** without
/// blocking: GETs, errors, and cache hits are answered inline; only
/// work that actually computes reaches a worker.
///
/// `cache_ttl` bounds memoized-entry age (`None` = entries never go
/// stale).  `allow_revalidate` is the load-shedding input: when `false`
/// (queue above its watermark) stale entries are served without
/// queueing a refresh, shedding recomputation load first.
pub fn route_fast(
    req: &Request,
    state: &AppState,
    cache_ttl: Option<Duration>,
    allow_revalidate: bool,
) -> FastRoute {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/model")
        | ("POST", "/v1/simulate")
        | ("POST", "/v1/recommend")
        | ("POST", "/v1/optimize")
        | ("POST", "/v1/sweep") => {
            let parsed = match body_object(req) {
                Ok(v) => v,
                Err(e) => return FastRoute::Done(Response::error(e.status, &e.message)),
            };
            let key = cache_key(req, &parsed);
            match state.cache.get(&key) {
                Some(hit) if !hit.is_stale(cache_ttl) => FastRoute::Done(
                    Response::json(hit.status, hit.body.clone()).with_header("X-Cache", "hit"),
                ),
                Some(stale) => {
                    let response = Response::json(stale.status, stale.body.clone())
                        .with_header("X-Cache", "stale");
                    state.metrics.on_stale_served();
                    if allow_revalidate && stale.try_begin_revalidate() {
                        state.metrics.on_revalidate();
                        FastRoute::StaleRevalidate { response, key }
                    } else {
                        FastRoute::Done(response)
                    }
                }
                None => FastRoute::Miss { key: Some(key) },
            }
        }
        ("POST", "/v1/fit") => FastRoute::Miss { key: None },
        // Everything else — health probes, metrics, 404s, 405s — is
        // cheap enough to answer inline.
        _ => FastRoute::Done(handle(req, state, Instant::now())),
    }
}

/// Worker-side computation for a [`FastRoute::Miss`]: compute the body,
/// memoize 200s under `key`, and stamp `X-Cache: miss`.
pub fn compute_response(
    req: &Request,
    state: &AppState,
    deadline: Instant,
    key: Option<&str>,
) -> Response {
    if req.path == "/v1/fit" {
        return fit_post(req, deadline);
    }
    let parsed = match body_object(req) {
        Ok(v) => v,
        Err(e) => return Response::error(e.status, &e.message),
    };
    match compute_cacheable(&req.path, &parsed, deadline) {
        Ok(body) => {
            if let Some(k) = key {
                state.cache.insert(k.to_string(), 200, body.clone());
            }
            Response::json(200, body).with_header("X-Cache", "miss")
        }
        Err(e) => Response::error(e.status, &e.message),
    }
}

/// Worker-side background refresh for a [`FastRoute::StaleRevalidate`]:
/// recompute and re-insert (a fresh insert resets both the entry's age
/// and its single-flight latch); on failure release the old entry's
/// latch so a later stale hit can try again.
pub fn revalidate(req: &Request, state: &AppState, deadline: Instant, key: &str) {
    let response = compute_response(req, state, deadline, Some(key));
    if response.status != 200 {
        if let Some(entry) = state.cache.get(key) {
            entry.end_revalidate();
        }
    }
}

fn v1_model(v: &Value) -> Result<String, HttpError> {
    // The body is a `Scenario` (the model endpoint just has no use for
    // its size/observer fields).
    let scenario = Scenario::from_json(v)?;
    let w = paper_params(scenario.workload);
    let p = AnalyticModel::default()
        .evaluate(&scenario.config, &w)
        .map_err(|e| HttpError::status(422, e.to_string()))?;
    pretty_body(&p)
}

fn v1_simulate(v: &Value, deadline: Instant) -> Result<String, HttpError> {
    // A missing `size` means `medium`, matching the CLI's default tier
    // and preserving byte parity with a flagless `memhier simulate
    // --json`.
    let scenario = Scenario::from_json_default(v, Sizes::Medium)?;
    let out = run_with_deadline(deadline, "simulate", move || scenario.run())?;
    pretty_body(&out.run.report)
}

/// Evaluation-stage cost errors are 422s (the request parsed fine, the
/// work it asked for is impossible); parse errors go through
/// `From<CostError>` as 400s.
fn cost_unprocessable(e: CostError) -> HttpError {
    HttpError::status(422, e.to_string())
}

fn v1_recommend(v: &Value, deadline: Instant) -> Result<String, HttpError> {
    let req = RecommendRequest::from_json(v)?;
    // The measure path replays the workload trace — the expensive branch
    // the deadline guards and the response cache absorbs.
    let report = run_with_deadline(deadline, "recommend", move || run_recommend(&req))?
        .map_err(cost_unprocessable)?;
    pretty_body(&report)
}

fn v1_optimize(v: &Value, deadline: Instant) -> Result<String, HttpError> {
    let req = OptimizeRequest::from_json(v)?;
    let candidates = req.search_space.len();
    if candidates > MAX_OPTIMIZE_CANDIDATES {
        return Err(HttpError::bad(format!(
            "search space of {candidates} candidates exceeds the \
             {MAX_OPTIMIZE_CANDIDATES}-candidate cap"
        )));
    }
    if req.confirm > MAX_OPTIMIZE_CONFIRM {
        return Err(HttpError::bad(format!(
            "confirm of {} finalists exceeds the {MAX_OPTIMIZE_CONFIRM}-point cap",
            req.confirm
        )));
    }
    let report = run_with_deadline(deadline, "optimize", move || run_optimize(&req))?
        .map_err(cost_unprocessable)?;
    pretty_body(&report)
}

/// `POST /v1/fit`: parse the body as a [`FitRequest`] (400 on parse
/// errors, exactly the validation `memhier fit --trace` applies), then
/// stream the trace through the out-of-core fitter (422 when the file is
/// unreadable or the fit is degenerate).
fn fit_post(req: &Request, deadline: Instant) -> Response {
    let parsed = match body_object(req) {
        Ok(v) => v,
        Err(e) => return Response::error(e.status, &e.message),
    };
    match v1_fit(&parsed, deadline) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(e.status, &e.message),
    }
}

fn v1_fit(v: &Value, deadline: Instant) -> Result<String, HttpError> {
    let req = FitRequest::from_json(v)?;
    let report = run_with_deadline(deadline, "fit", move || run_fit(&req))?
        .map_err(|e| HttpError::status(422, e.to_string()))?;
    pretty_body(&report.to_json())
}

fn v1_sweep(v: &Value, deadline: Instant) -> Result<String, HttpError> {
    // One scenario per `configs × workloads` grid point; a missing
    // `size` means `small` (sweeps multiply cost by the grid area).
    let scenarios = Scenario::expand_grid(v, Sizes::Small)?;
    if scenarios.is_empty() {
        return Err(HttpError::bad(
            "`configs` and `workloads` must be non-empty",
        ));
    }
    if scenarios.len() > MAX_SWEEP_POINTS {
        return Err(HttpError::bad(format!(
            "grid of {} points exceeds the {MAX_SWEEP_POINTS}-point cap",
            scenarios.len()
        )));
    }
    let plan = Scenario::sweep_plan("serve", &scenarios)?;
    let results = run_with_deadline(deadline, "sweep", move || run_sweep(&plan))?;
    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "config": r.point.cluster.name,
                "workload": r.point.kind.name(),
                "e_instr_cycles": r.run.report.e_instr_cycles,
                "e_instr_seconds": r.run.report.e_instr_seconds,
                "wall_cycles": r.run.report.wall_cycles,
                "barriers": r.run.report.barriers,
            })
        })
        .collect();
    pretty_body(&Value::Array(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn state() -> AppState {
        AppState::new(16, 2, 8, 1)
    }

    fn far_deadline() -> Instant {
        Instant::now() + std::time::Duration::from_secs(60)
    }

    #[test]
    fn canonicalize_sorts_keys_recursively() {
        let a: Value =
            serde_json::from_str(r#"{"b": {"y": 1, "x": 2}, "a": [ {"q": 1, "p": 2} ]}"#).unwrap();
        let b: Value =
            serde_json::from_str(r#"{"a": [{"p": 2, "q": 1}], "b": {"x": 2, "y": 1}}"#).unwrap();
        assert_eq!(
            serde_json::to_string(&canonicalize(&a)).unwrap(),
            serde_json::to_string(&canonicalize(&b)).unwrap()
        );
    }

    #[test]
    fn model_endpoint_matches_direct_evaluation() {
        let r = handle(
            &post("/v1/model", r#"{"config": "C5", "workload": "FFT"}"#),
            &state(),
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        let body: Value =
            serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        let scenario: Scenario = "C5:FFT".parse().unwrap();
        let direct = AnalyticModel::default()
            .evaluate(&scenario.config, &paper_params(scenario.workload))
            .unwrap();
        assert_eq!(
            body["e_instr_seconds"].as_f64(),
            Some(direct.e_instr_seconds)
        );
    }

    #[test]
    fn model_cache_hits_on_reordered_keys() {
        let s = state();
        let r1 = handle(
            &post("/v1/model", r#"{"config": "C1", "workload": "LU"}"#),
            &s,
            far_deadline(),
        );
        let r2 = handle(
            &post("/v1/model", r#"{ "workload": "LU", "config": "C1" }"#),
            &s,
            far_deadline(),
        );
        assert_eq!(r1.status, 200);
        assert_eq!(r2.status, 200);
        assert_eq!(r1.body, r2.body);
        let hit = r2.headers.iter().find(|(n, _)| *n == "X-Cache").unwrap();
        assert_eq!(hit.1, "hit");
        assert_eq!(s.cache.stats().hits, 1);
    }

    #[test]
    fn unknown_names_are_400_and_uncached() {
        let s = state();
        for body in [
            r#"{"config": "C99", "workload": "FFT"}"#,
            r#"{"config": "C1", "workload": "SORT"}"#,
            r#"{"config": "C1"}"#,
            r#"not json"#,
            r#"[1, 2]"#,
        ] {
            let r = handle(&post("/v1/model", body), &s, far_deadline());
            assert_eq!(r.status, 400, "{body}");
        }
        assert_eq!(s.cache.stats().entries, 0, "errors must not be cached");
    }

    #[test]
    fn recommend_custom_params_and_validation() {
        let r = handle(
            &post(
                "/v1/recommend",
                r#"{"alpha": 1.5, "beta": 50.0, "rho": 0.2}"#,
            ),
            &state(),
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        assert_eq!(v["platform"].as_str(), Some("ManyWorkstationsSlowNetwork"));
        // Out-of-domain parameters fail typed-request parsing: a 400,
        // not a panic.
        let r = handle(
            &post(
                "/v1/recommend",
                r#"{"alpha": 0.5, "beta": 50.0, "rho": 0.2}"#,
            ),
            &state(),
            far_deadline(),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn recommend_with_budget_ranks_clusters() {
        let r = handle(
            &post(
                "/v1/recommend",
                r#"{"workload": "Radix", "budget": 20000, "top": 2}"#,
            ),
            &state(),
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        let ranked = v["ranked"].as_array().expect("ranked present");
        assert!(!ranked.is_empty() && ranked.len() <= 2);
        assert!(ranked[0]["cost"].as_f64().unwrap() <= 20000.0);
    }

    #[test]
    fn optimize_endpoint_searches_and_reports() {
        let r = handle(
            &post(
                "/v1/optimize",
                r#"{"workload": "LU", "budget": 8000,
                    "search_space": {"max_machines": 4, "memory_mb": [32, 64]}}"#,
            ),
            &state(),
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        let search = &v["search"];
        assert!(search["candidates"].as_u64().unwrap() > 0);
        assert_eq!(search["confirmed"].as_u64(), Some(0));
        assert_eq!(search["pruning_ratio"].as_f64(), Some(1.0));
        assert!(!v["pareto"].as_array().unwrap().is_empty());
        assert!(v["best"]["cost"].as_f64().unwrap() <= 8000.0);
    }

    #[test]
    fn optimize_request_caps_and_typos_are_400() {
        for body in [
            // An unknown field fails the typed parse.
            r#"{"workload": "LU", "budget": 8000, "buget": 1}"#,
            // The candidate grid is capped.
            r#"{"workload": "LU", "budget": 8000,
                "search_space": {"max_machines": 1000000}}"#,
            // The confirmation count shares the sweep cap.
            r#"{"workload": "LU", "budget": 8000, "confirm": 65}"#,
        ] {
            let r = handle(&post("/v1/optimize", body), &state(), far_deadline());
            assert_eq!(r.status, 400, "{body}");
        }
        // A well-formed request for an unsimulatable confirmation is a
        // 422: it parsed, but the work is impossible.
        let r = handle(
            &post(
                "/v1/optimize",
                r#"{"workload": {"alpha": 1.5, "beta": 90, "rho": 0.3},
                    "budget": 8000, "confirm": 2}"#,
            ),
            &state(),
            far_deadline(),
        );
        assert_eq!(r.status, 422);
    }

    #[test]
    fn sweep_grid_is_capped() {
        let configs: Vec<String> = (1..=15).map(|i| format!("\"C{i}\"")).collect();
        let body = format!(
            r#"{{"configs": [{}], "workloads": ["FFT", "LU", "Radix", "EDGE", "TPC-C"]}}"#,
            configs.join(",")
        );
        let r = handle(&post("/v1/sweep", &body), &state(), far_deadline());
        assert_eq!(r.status, 400);
        let msg = String::from_utf8(r.body).unwrap();
        assert!(msg.contains("exceeds"), "{msg}");
    }

    #[test]
    fn unknown_route_is_404_get_on_post_route_is_405() {
        let mut req = post("/v1/nothing", "{}");
        assert_eq!(handle(&req, &state(), far_deadline()).status, 404);
        req.method = "GET".into();
        req.path = "/v1/model".into();
        assert_eq!(handle(&req, &state(), far_deadline()).status, 405);
    }

    #[test]
    fn registry_lists_workloads_platforms_networks() {
        let mut req = post("/v1/registry", "");
        req.method = "GET".into();
        let r = handle(&req, &state(), far_deadline());
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        let keys = |section: &str| -> Vec<String> {
            v[section]
                .as_array()
                .unwrap()
                .iter()
                .map(|e| e["key"].as_str().unwrap().to_string())
                .collect()
        };
        assert!(keys("workloads").contains(&"Stencil4D".to_string()));
        assert!(keys("platforms").contains(&"fattree-cow".to_string()));
        assert!(keys("networks").contains(&"FatTree".to_string()));
        // Every workload entry publishes a parameter schema.
        for w in v["workloads"].as_array().unwrap() {
            assert!(!w["params"].as_array().unwrap().is_empty());
        }
        // POST on the GET route is a 405 in the unified envelope.
        let r = handle(&post("/v1/registry", "{}"), &state(), far_deadline());
        assert_eq!(r.status, 405);
    }

    #[test]
    fn error_bodies_share_the_typed_envelope() {
        let cases = [
            (
                post("/v1/model", r#"{"config": "C99", "workload": "FFT"}"#),
                400,
                "bad_request",
            ),
            (post("/v1/nothing", "{}"), 404, "not_found"),
        ];
        for (req, status, code) in cases {
            let r = handle(&req, &state(), far_deadline());
            assert_eq!(r.status, status);
            let v: Value =
                serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
            let e = &v["error"];
            assert_eq!(e["status"].as_u64(), Some(status as u64));
            assert_eq!(e["code"].as_str(), Some(code));
            assert!(!e["message"].as_str().unwrap().is_empty());
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: vec![],
            body: vec![],
        }
    }

    #[test]
    fn liveness_is_200_in_every_phase_readiness_tracks_lifecycle() {
        let s = state();
        // Starting: alive but not ready.
        assert_eq!(handle(&get("/healthz"), &s, far_deadline()).status, 200);
        assert_eq!(handle(&get("/livez"), &s, far_deadline()).status, 200);
        let r = handle(&get("/readyz"), &s, far_deadline());
        assert_eq!(r.status, 503);
        assert!(String::from_utf8(r.body).unwrap().contains("starting"));
        // Ready.
        s.set_ready();
        assert_eq!(s.readiness(), Readiness::Ready);
        assert_eq!(handle(&get("/readyz"), &s, far_deadline()).status, 200);
        // Draining: readiness drops, liveness does not.
        s.begin_drain();
        assert_eq!(s.readiness(), Readiness::Draining);
        let r = handle(&get("/readyz"), &s, far_deadline());
        assert_eq!(r.status, 503);
        assert!(String::from_utf8(r.body).unwrap().contains("draining"));
        assert_eq!(handle(&get("/livez"), &s, far_deadline()).status, 200);
        assert_eq!(handle(&get("/healthz"), &s, far_deadline()).status, 200);
    }

    #[test]
    fn route_fast_answers_gets_and_errors_inline() {
        let s = state();
        for req in [
            get("/healthz"),
            get("/metrics"),
            get("/readyz"),
            get("/nothing"),
            post("/v1/model", "not json"),
        ] {
            assert!(
                matches!(route_fast(&req, &s, None, true), FastRoute::Done(_)),
                "{} {} must not reach a worker",
                req.method,
                req.path
            );
        }
        // GET on a POST route: inline 405.
        match route_fast(&get("/v1/model"), &s, None, true) {
            FastRoute::Done(r) => assert_eq!(r.status, 405),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn route_fast_miss_then_hit_through_compute_response() {
        let s = state();
        let req = post("/v1/model", r#"{"config": "C3", "workload": "FFT"}"#);
        let key = match route_fast(&req, &s, None, true) {
            FastRoute::Miss { key: Some(k) } => k,
            other => panic!("cold cache must be a miss, got {other:?}"),
        };
        let computed = compute_response(&req, &s, far_deadline(), Some(&key));
        assert_eq!(computed.status, 200);
        // Same request again: answered inline, byte-identical body.
        match route_fast(&req, &s, None, true) {
            FastRoute::Done(hit) => {
                assert_eq!(hit.body, computed.body);
                let x = hit.headers.iter().find(|(n, _)| *n == "X-Cache").unwrap();
                assert_eq!(x.1, "hit");
            }
            other => panic!("warm cache must be Done, got {other:?}"),
        }
        // /v1/fit is a keyless miss (never memoized).
        assert!(matches!(
            route_fast(&post("/v1/fit", r#"{"trace": "/nope"}"#), &s, None, true),
            FastRoute::Miss { key: None }
        ));
    }

    #[test]
    fn stale_entries_serve_immediately_and_revalidate_single_flight() {
        let s = state();
        let req = post("/v1/model", r#"{"config": "C2", "workload": "LU"}"#);
        let key = match route_fast(&req, &s, None, true) {
            FastRoute::Miss { key: Some(k) } => k,
            other => panic!("{other:?}"),
        };
        compute_response(&req, &s, far_deadline(), Some(&key));
        std::thread::sleep(Duration::from_millis(10));
        let ttl = Some(Duration::from_millis(1));
        // First stale hit: served, wins the revalidation latch.
        let stale_key = match route_fast(&req, &s, ttl, true) {
            FastRoute::StaleRevalidate { response, key: k } => {
                assert_eq!(response.status, 200);
                let x = response.headers.iter().find(|(n, _)| *n == "X-Cache");
                assert_eq!(x.unwrap().1, "stale");
                k
            }
            other => panic!("expected StaleRevalidate, got {other:?}"),
        };
        // Second stale hit while the first refresh is pending: served,
        // but no second revalidation.
        assert!(matches!(
            route_fast(&req, &s, ttl, true),
            FastRoute::Done(_)
        ));
        // Shedding mode (`allow_revalidate = false`) also just serves.
        assert!(matches!(
            route_fast(&req, &s, ttl, false),
            FastRoute::Done(_)
        ));
        assert_eq!(s.metrics.stale_served_count(), 3);
        // The background refresh re-inserts; the entry is fresh again.
        revalidate(&req, &s, far_deadline(), &stale_key);
        match route_fast(&req, &s, Some(Duration::from_secs(3600)), true) {
            FastRoute::Done(r) => {
                let x = r.headers.iter().find(|(n, _)| *n == "X-Cache").unwrap();
                assert_eq!(x.1, "hit", "revalidated entry is fresh");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_revalidation_releases_the_latch() {
        let s = state();
        // /v1/simulate goes through run_with_deadline, so an expired
        // deadline makes the refresh genuinely fail with 503.
        let req = post(
            "/v1/simulate",
            r#"{"config": "C1", "workload": "FFT", "size": "small"}"#,
        );
        let key = match route_fast(&req, &s, None, true) {
            FastRoute::Miss { key: Some(k) } => k,
            other => panic!("{other:?}"),
        };
        compute_response(&req, &s, far_deadline(), Some(&key));
        std::thread::sleep(Duration::from_millis(10));
        let ttl = Some(Duration::from_millis(1));
        match route_fast(&req, &s, ttl, true) {
            FastRoute::StaleRevalidate { key: k, .. } => {
                // Simulate the refresh failing (expired deadline → 503,
                // nothing inserted): the latch must reopen.
                revalidate(&req, &s, Instant::now() - Duration::from_secs(1), &k);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            matches!(
                route_fast(&req, &s, ttl, true),
                FastRoute::StaleRevalidate { .. }
            ),
            "a later stale hit can claim the released latch"
        );
    }

    #[test]
    fn deadline_expires_simulation() {
        let r = handle(
            &post(
                "/v1/simulate",
                r#"{"config": "C8", "workload": "LU", "size": "small"}"#,
            ),
            &state(),
            Instant::now(), // already expired
        );
        assert_eq!(r.status, 503);
        let msg = String::from_utf8(r.body).unwrap();
        assert!(msg.contains("deadline"), "{msg}");
    }
}
