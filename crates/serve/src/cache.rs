//! Sharded, capacity-bounded LRU response cache.
//!
//! Every cacheable endpoint is a pure function of its canonicalized
//! request JSON (the simulator and the analytic model are deterministic),
//! so responses are memoized whole.  Keys hash onto `RwLock`-guarded
//! shards; lookups take only the shard's **read** lock — recency is
//! tracked with a per-entry atomic stamped from a global clock, so
//! concurrent hits never serialize on a writer lock.  Inserts take the
//! shard's write lock and evict the least-recently-stamped entry once the
//! shard is at capacity.
//!
//! Entries also carry what **stale-while-revalidate** needs: an
//! insertion timestamp (so the server can decide an entry is stale past
//! its TTL yet still serve it immediately) and a single-flight
//! `revalidating` latch (so only one background recomputation per key
//! is in flight, however many stale hits arrive meanwhile).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// One memoized response.
#[derive(Debug)]
pub struct CachedResponse {
    /// HTTP status of the memoized response (only 200s are cached today).
    pub status: u16,
    /// The exact body bytes served on a hit.
    pub body: String,
    last_used: AtomicU64,
    /// When this body was computed — the basis for staleness.
    inserted_at: Instant,
    /// Single-flight latch: `true` while a background revalidation of
    /// this key is already queued or running.
    revalidating: AtomicBool,
}

impl CachedResponse {
    /// Whether this entry is older than `ttl`.  `None` means entries
    /// never go stale (the default: responses are pure functions of the
    /// request, so staleness only matters when operators want bounded
    /// memoization age).
    pub fn is_stale(&self, ttl: Option<Duration>) -> bool {
        match ttl {
            Some(ttl) => self.inserted_at.elapsed() > ttl,
            None => false,
        }
    }

    /// Claim the single revalidation slot for this entry.  Returns
    /// `true` exactly once per revalidation cycle; callers that get
    /// `false` know a refresh is already on its way and just serve the
    /// stale body.
    pub fn try_begin_revalidate(&self) -> bool {
        !self.revalidating.swap(true, Ordering::AcqRel)
    }

    /// Release the revalidation slot without a fresh insert (the
    /// recomputation failed or was shed); the next stale hit may claim
    /// it again.
    pub fn end_revalidate(&self) {
        self.revalidating.store(false, Ordering::Release);
    }
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Arc<CachedResponse>>,
}

/// The cache: `shards` independent LRU maps of `capacity` total entries.
pub struct ResponseCache {
    shards: Vec<RwLock<Shard>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits since start.
    pub hits: u64,
    /// Lookup misses since start.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total entry capacity across shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups (0 when the cache is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ResponseCache {
    /// A cache of about `capacity` entries spread over `shards` shards
    /// (both floored at 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ResponseCache {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            per_shard_capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &str) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look `key` up, stamping recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<CachedResponse>> {
        let shard = self.shard_for(key).read().expect("cache shard poisoned");
        match shard.map.get(key) {
            Some(entry) => {
                let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                entry.last_used.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoize `body` under `key`, evicting the shard's least-recently
    /// used entry if it is full.
    pub fn insert(&self, key: String, status: u16, body: String) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(CachedResponse {
            status,
            body,
            last_used: AtomicU64::new(now),
            inserted_at: Instant::now(),
            revalidating: AtomicBool::new(false),
        });
        let mut shard = self.shard_for(&key).write().expect("cache shard poisoned");
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            if let Some(coldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&coldest);
            }
        }
        shard.map.insert(key, entry);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            capacity: self.per_shard_capacity * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let c = ResponseCache::new(8, 2);
        assert!(c.get("k").is_none());
        c.insert("k".into(), 200, "body".into());
        let hit = c.get("k").expect("hit");
        assert_eq!(hit.status, 200);
        assert_eq!(hit.body, "body");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_coldest_within_shard() {
        // One shard so the LRU order is global and observable.
        let c = ResponseCache::new(2, 1);
        c.insert("a".into(), 200, "A".into());
        c.insert("b".into(), 200, "B".into());
        // Touch `a` so `b` is the coldest, then overflow.
        assert!(c.get("a").is_some());
        c.insert("c".into(), 200, "C".into());
        assert!(c.get("a").is_some(), "recently used entry survived");
        assert!(c.get("b").is_none(), "coldest entry evicted");
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let c = ResponseCache::new(2, 1);
        c.insert("a".into(), 200, "A".into());
        c.insert("b".into(), 200, "B".into());
        c.insert("a".into(), 200, "A2".into());
        assert_eq!(c.get("a").unwrap().body, "A2");
        assert!(c.get("b").is_some(), "re-insert must not evict a neighbor");
    }

    #[test]
    fn staleness_follows_ttl() {
        let c = ResponseCache::new(8, 1);
        c.insert("k".into(), 200, "body".into());
        let e = c.get("k").unwrap();
        assert!(!e.is_stale(None), "no TTL, never stale");
        assert!(!e.is_stale(Some(Duration::from_secs(3600))));
        std::thread::sleep(Duration::from_millis(15));
        assert!(e.is_stale(Some(Duration::from_millis(1))));
        // A re-insert refreshes the timestamp.
        c.insert("k".into(), 200, "body2".into());
        assert!(!c.get("k").unwrap().is_stale(Some(Duration::from_secs(1))));
    }

    #[test]
    fn revalidation_latch_is_single_flight() {
        let c = ResponseCache::new(8, 1);
        c.insert("k".into(), 200, "body".into());
        let e = c.get("k").unwrap();
        assert!(e.try_begin_revalidate(), "first claimant wins");
        assert!(!e.try_begin_revalidate(), "second claimant is refused");
        e.end_revalidate();
        assert!(e.try_begin_revalidate(), "released latch can be re-claimed");
        // A fresh insert under the same key starts with a clear latch.
        c.insert("k".into(), 200, "body2".into());
        assert!(c.get("k").unwrap().try_begin_revalidate());
    }

    #[test]
    fn concurrent_hits_and_inserts() {
        let c = Arc::new(ResponseCache::new(64, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", i % 16);
                        if c.get(&key).is_none() {
                            c.insert(key, 200, format!("t{t}i{i}"));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert!(s.entries <= 64);
        assert!(s.hits + s.misses == 8 * 200);
    }
}
