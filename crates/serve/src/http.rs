//! A deliberately small HTTP/1.1 subset: enough for `memhierd`'s JSON
//! API, nothing more.
//!
//! The core is [`try_parse`], an **incremental** parser over an
//! accumulated byte buffer: it answers "not enough bytes yet", "here is
//! one complete request plus how many bytes it consumed", or a 400
//! [`HttpError`] — never a panic, whatever the input.  The event loop
//! calls it in a loop over each connection's read buffer, which is what
//! makes keep-alive and pipelining work: bytes past the first request
//! stay in the buffer for the next call.  [`read_request`] (blocking,
//! one-shot) and [`read_request_deadline`] (blocking with a 408 timeout
//! for slow bodies) are thin drivers over the same parser, and the unit
//! tests lock the contract in.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Hard cap on the request line + header block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Absolute path, e.g. `/v1/model`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a 400.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("request body is not UTF-8"))
    }

    /// Whether the client asked to end the connection after this
    /// request (`Connection: close`).  HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// A request-level failure carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (400 for every parse failure).
    pub status: u16,
    /// Human-readable reason, returned as `{"error": ...}`.
    pub message: String,
}

impl HttpError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    /// Any other status.
    pub fn status(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Scenario parse/build failures are client errors: the typed
/// [`ScenarioError`](memhier_bench::ScenarioError) becomes a 400 with
/// its `Display` text as the reason.
impl From<memhier_bench::ScenarioError> for HttpError {
    fn from(e: memhier_bench::ScenarioError) -> Self {
        HttpError::bad(e.to_string())
    }
}

/// Optimize/recommend request parse failures are likewise client
/// errors: the typed [`CostError`](memhier_cost::CostError) becomes a
/// 400 with its `Display` text as the reason.
impl From<memhier_cost::CostError> for HttpError {
    fn from(e: memhier_cost::CostError) -> Self {
        HttpError::bad(e.to_string())
    }
}

/// Fit request parse failures are likewise client errors: the typed
/// [`TraceError`](memhier_trace::TraceError) becomes a 400 with its
/// `Display` text as the reason.  (Evaluation-stage trace errors —
/// unreadable files, degenerate fits — are mapped to 422 at the
/// endpoint, mirroring the optimize/recommend split.)
impl From<memhier_trace::TraceError> for HttpError {
    fn from(e: memhier_trace::TraceError) -> Self {
        HttpError::bad(e.to_string())
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parsed head: `(method, path, headers)`.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parse the head (request line + headers) once `\r\n\r\n` was found.
fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let head_str =
        std::str::from_utf8(head).map_err(|_| HttpError::bad("request head is not UTF-8"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::bad(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version `{version}`")));
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Declared `Content-Length`, validated against [`MAX_BODY_BYTES`].
fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let len = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::bad(format!("bad Content-Length `{v}`")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::bad(format!(
            "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )));
    }
    Ok(len)
}

/// Try to parse one complete request from the front of `buf`.
///
/// This is the event loop's incremental entry point; it never blocks
/// and never consumes implicitly:
///
/// * `Ok(None)` — the buffer does not yet hold a complete request; read
///   more bytes and call again.
/// * `Ok(Some((request, consumed)))` — one request parsed; the caller
///   must drain `consumed` bytes (`buf.drain(..consumed)`) and may call
///   again on the remainder, which is exactly request **pipelining**.
/// * `Err(_)` — the bytes at the front are malformed (bad request line
///   or header, oversized head per [`MAX_HEAD_BYTES`], bad or oversized
///   `Content-Length`).  The connection has lost framing; answer 400
///   and close.
pub fn try_parse(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::bad(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(None);
    };
    if header_end > MAX_HEAD_BYTES {
        return Err(HttpError::bad(format!(
            "header block exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    let (method, path, headers) = parse_head(&buf[..header_end])?;
    let body_len = content_length(&headers)?;
    let body_start = header_end + 4;
    if buf.len() < body_start + body_len {
        return Ok(None);
    }
    let body = buf[body_start..body_start + body_len].to_vec();
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
        },
        body_start + body_len,
    )))
}

/// How many body bytes of the (possibly incomplete) first request in
/// `buf` have arrived, as `(received, declared)` — used for the 408 and
/// truncation diagnostics.  `None` until the header block is complete.
fn body_progress(buf: &[u8]) -> Option<(usize, usize)> {
    let header_end = find_header_end(buf)?;
    let headers = parse_head(&buf[..header_end]).ok()?.2;
    let declared = content_length(&headers).ok()?;
    Some((buf.len() - (header_end + 4), declared))
}

/// Read and parse one request from `stream`, blocking until complete.
///
/// Every failure mode — connection closed mid-headers, header block over
/// [`MAX_HEAD_BYTES`], malformed request line or header, bad or oversized
/// `Content-Length`, truncated body — is a 400 [`HttpError`]; this
/// function never panics on hostile input.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some((req, _consumed)) = try_parse(&acc)? {
            return Ok(req);
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| HttpError::bad(format!("reading request: {e}")))?;
        if n == 0 {
            return Err(truncation_error(&acc));
        }
        acc.extend_from_slice(&buf[..n]);
    }
}

/// The 400 for a connection that closed before a full request arrived.
fn truncation_error(acc: &[u8]) -> HttpError {
    match body_progress(acc) {
        Some((received, declared)) => {
            HttpError::bad(format!("truncated body ({received} of {declared} bytes)"))
        }
        None => HttpError::bad("truncated request (connection closed before end of headers)"),
    }
}

/// Like [`read_request`], but bounded: if a complete request has not
/// arrived within `timeout`, answer **408 Request Timeout** instead of
/// blocking forever.
///
/// This is the slow-body defense: a client that declares
/// `Content-Length: 1000` and then stalls after 3 bytes used to tie up
/// its reader until the peer closed; under a deadline it is cut off
/// with a 408 naming how far it got.  (The event loop enforces the same
/// bound internally via its timer pass; this blocking form serves
/// one-shot readers and the regression tests.)
pub fn read_request_deadline(
    stream: &mut std::net::TcpStream,
    timeout: Duration,
) -> Result<Request, HttpError> {
    let deadline = Instant::now() + timeout;
    let mut acc = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some((req, _consumed)) = try_parse(&acc)? {
            // Leave the blocking socket unbounded again for the writer.
            let _ = stream.set_read_timeout(None);
            return Ok(req);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(timeout_error(&acc));
        }
        stream
            .set_read_timeout(Some(deadline - now))
            .map_err(|e| HttpError::bad(format!("reading request: {e}")))?;
        match stream.read(&mut buf) {
            Ok(0) => return Err(truncation_error(&acc)),
            Ok(n) => acc.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(timeout_error(&acc));
            }
            Err(e) => return Err(HttpError::bad(format!("reading request: {e}"))),
        }
    }
}

/// The 408 for a request that did not complete within its read deadline.
pub(crate) fn timeout_error(acc: &[u8]) -> HttpError {
    match body_progress(acc) {
        Some((received, declared)) => HttpError::status(
            408,
            format!("request body timed out ({received} of {declared} bytes received)"),
        ),
        None => HttpError::status(408, "request headers timed out"),
    }
}

/// One response; [`Response::to_bytes`] chooses between keep-alive and
/// close framing, [`Response::write_to`] keeps the legacy
/// `Connection: close` one-shot form.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes (always JSON here).
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// The unified error envelope: every non-2xx body across the API is
    /// `{"error": {"status": N, "code": "...", "message": "..."}}`, so
    /// clients branch on one stable machine-readable `code` instead of
    /// parsing prose (asserted end-to-end by `serve_parity.rs`).
    pub fn error(status: u16, message: &str) -> Self {
        let envelope = serde_json::Value::Object(vec![(
            "error".to_string(),
            serde_json::Value::Object(vec![
                (
                    "status".to_string(),
                    serde_json::Value::Number(serde_json::Number::U64(status as u64)),
                ),
                (
                    "code".to_string(),
                    serde_json::Value::String(Response::error_code(status).to_string()),
                ),
                (
                    "message".to_string(),
                    serde_json::Value::String(message.to_string()),
                ),
            ]),
        )]);
        let body = serde_json::to_string(&envelope)
            .unwrap_or_else(|_| "{\"error\":{\"code\":\"internal\"}}".to_string());
        Response::json(status, format!("{body}\n"))
    }

    /// Stable machine-readable code for each status the service emits.
    pub fn error_code(status: u16) -> &'static str {
        match status {
            400 => "bad_request",
            404 => "not_found",
            405 => "method_not_allowed",
            408 => "timeout",
            422 => "unprocessable",
            429 => "too_many_requests",
            500 => "internal",
            503 => "unavailable",
            _ => "error",
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Canonical reason phrase for the statuses this service emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize to wire bytes.  `keep_alive` selects the `connection:`
    /// header: the event loop passes `true` for every response except
    /// the last one before it closes (client asked `Connection: close`,
    /// framing was lost to a 400/408, or the server is draining).
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serialize onto `w` with `Connection: close` (the one-shot form).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes(false))?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/model HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/model");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status, 400, "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn truncated_headers_are_400() {
        let err = parse(b"GET /healthz HTTP/1.1\r\nHost: x").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated"), "{}", err.message);
    }

    #[test]
    fn malformed_header_is_400() {
        let err = parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn oversized_head_is_400() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("header block"), "{}", err.message);
    }

    #[test]
    fn oversized_body_is_400() {
        let raw = format!(
            "POST /v1/model HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("exceeds"), "{}", err.message);
    }

    #[test]
    fn bad_content_length_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated body"), "{}", err.message);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}\n")
            .with_header("X-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    #[test]
    fn error_response_is_json() {
        let r = Response::error(429, "queue full");
        assert_eq!(r.status, 429);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        let e = &v["error"];
        assert_eq!(e["status"].as_u64(), Some(429));
        assert_eq!(e["code"].as_str(), Some("too_many_requests"));
        assert_eq!(e["message"].as_str(), Some("queue full"));
    }

    #[test]
    fn error_codes_cover_every_emitted_status() {
        for (status, code) in [
            (400, "bad_request"),
            (404, "not_found"),
            (405, "method_not_allowed"),
            (408, "timeout"),
            (422, "unprocessable"),
            (429, "too_many_requests"),
            (500, "internal"),
            (503, "unavailable"),
        ] {
            assert_eq!(Response::error_code(status), code);
        }
        assert_eq!(Response::error_code(418), "error");
    }

    #[test]
    fn try_parse_is_incremental() {
        let raw = b"POST /v1/model HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        // Every proper prefix is "not yet"; the full buffer parses.
        for cut in 0..raw.len() {
            assert!(
                try_parse(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, consumed) = try_parse(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.path, "/v1/model");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn try_parse_consumes_exactly_one_pipelined_request() {
        let mut raw = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
        raw.extend_from_slice(b"POST /v1/model HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
        let (first, consumed) = try_parse(&raw).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        // The second request must come from the remainder, untouched.
        let rest = &raw[consumed..];
        let (second, consumed2) = try_parse(rest).unwrap().unwrap();
        assert_eq!(second.path, "/v1/model");
        assert_eq!(second.body, b"{}");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn try_parse_rejects_oversized_head_without_terminator() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        let err = try_parse(&raw).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn wants_close_reads_connection_header() {
        let keep = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!keep.wants_close(), "HTTP/1.1 defaults to keep-alive");
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(close.wants_close());
        let cased = parse(b"GET / HTTP/1.1\r\nconnection: CLOSE\r\n\r\n").unwrap();
        assert!(cased.wants_close());
    }

    /// Regression: a request declaring more `Content-Length` than it
    /// ever sends used to tie up its reader until the peer closed the
    /// connection.  Under a deadline it is answered 408 promptly.
    #[test]
    fn stalled_body_times_out_with_408() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /v1/model HTTP/1.1\r\nContent-Length: 1000\r\n\r\nabc")
                .unwrap();
            // Stall: never send the remaining 997 bytes.
            std::thread::sleep(Duration::from_millis(500));
            drop(s);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let started = Instant::now();
        let err = read_request_deadline(&mut conn, Duration::from_millis(100)).unwrap_err();
        assert_eq!(err.status, 408, "{}", err.message);
        assert!(
            err.message.contains("3 of 1000"),
            "diagnostic names progress: {}",
            err.message
        );
        assert!(
            started.elapsed() < Duration::from_millis(450),
            "must not wait for the peer to close"
        );
        client.join().unwrap();
    }

    #[test]
    fn complete_request_beats_the_deadline() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /v1/model HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
                .unwrap();
            s
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request_deadline(&mut conn, Duration::from_secs(5)).unwrap();
        assert_eq!(req.body, b"{}");
        drop(client.join().unwrap());
    }

    #[test]
    fn to_bytes_switches_connection_header() {
        let r = Response::json(200, "{}\n");
        let ka = String::from_utf8(r.to_bytes(true)).unwrap();
        assert!(ka.contains("connection: keep-alive\r\n"), "{ka}");
        let cl = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(cl.contains("connection: close\r\n"), "{cl}");
        assert_eq!(Response::reason(408), "Request Timeout");
    }
}
