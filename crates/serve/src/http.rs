//! A deliberately small HTTP/1.1 subset: enough for `memhierd`'s JSON
//! API, nothing more.
//!
//! The parser reads one request per connection (`Connection: close`
//! semantics), enforces hard caps on header-block and body size, and
//! turns every malformed input — bad request line, truncated headers,
//! non-numeric or oversized `Content-Length`, short body — into a 400
//! [`HttpError`] instead of a panic.  `crates/serve/src/http.rs` unit
//! tests lock that contract in.

use std::io::{Read, Write};

/// Hard cap on the request line + header block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Absolute path, e.g. `/v1/model`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a 400.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("request body is not UTF-8"))
    }
}

/// A request-level failure carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (400 for every parse failure).
    pub status: u16,
    /// Human-readable reason, returned as `{"error": ...}`.
    pub message: String,
}

impl HttpError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    /// Any other status.
    pub fn status(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Scenario parse/build failures are client errors: the typed
/// [`ScenarioError`](memhier_bench::ScenarioError) becomes a 400 with
/// its `Display` text as the reason.
impl From<memhier_bench::ScenarioError> for HttpError {
    fn from(e: memhier_bench::ScenarioError) -> Self {
        HttpError::bad(e.to_string())
    }
}

/// Optimize/recommend request parse failures are likewise client
/// errors: the typed [`CostError`](memhier_cost::CostError) becomes a
/// 400 with its `Display` text as the reason.
impl From<memhier_cost::CostError> for HttpError {
    fn from(e: memhier_cost::CostError) -> Self {
        HttpError::bad(e.to_string())
    }
}

/// Fit request parse failures are likewise client errors: the typed
/// [`TraceError`](memhier_trace::TraceError) becomes a 400 with its
/// `Display` text as the reason.  (Evaluation-stage trace errors —
/// unreadable files, degenerate fits — are mapped to 422 at the
/// endpoint, mirroring the optimize/recommend split.)
impl From<memhier_trace::TraceError> for HttpError {
    fn from(e: memhier_trace::TraceError) -> Self {
        HttpError::bad(e.to_string())
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read and parse one request from `stream`.
///
/// Every failure mode — connection closed mid-headers, header block over
/// [`MAX_HEAD_BYTES`], malformed request line or header, bad or oversized
/// `Content-Length`, truncated body — is a 400 [`HttpError`]; this
/// function never panics on hostile input.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::bad(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| HttpError::bad(format!("reading request: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad(
                "truncated request (connection closed before end of headers)",
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };

    let head_str = std::str::from_utf8(&head[..header_end])
        .map_err(|_| HttpError::bad("request head is not UTF-8"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::bad(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version `{version}`")));
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::bad(format!("bad Content-Length `{v}`")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::bad(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )));
    }

    let mut body = head[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut buf)
            .map_err(|e| HttpError::bad(format!("reading body: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad(format!(
                "truncated body ({} of {content_length} bytes)",
                body.len()
            )));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// One response, written with `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes (always JSON here).
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A `{"error": message}` JSON response.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&serde_json::json!({ "error": message }))
            .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response::json(status, format!("{body}\n"))
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Canonical reason phrase for the statuses this service emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize onto `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/model HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/model");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status, 400, "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn truncated_headers_are_400() {
        let err = parse(b"GET /healthz HTTP/1.1\r\nHost: x").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated"), "{}", err.message);
    }

    #[test]
    fn malformed_header_is_400() {
        let err = parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn oversized_head_is_400() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("header block"), "{}", err.message);
    }

    #[test]
    fn oversized_body_is_400() {
        let raw = format!(
            "POST /v1/model HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("exceeds"), "{}", err.message);
    }

    #[test]
    fn bad_content_length_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated body"), "{}", err.message);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}\n")
            .with_header("X-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    #[test]
    fn error_response_is_json() {
        let r = Response::error(429, "queue full");
        assert_eq!(r.status, 429);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&r.body).unwrap().trim()).unwrap();
        assert_eq!(v["error"].as_str(), Some("queue full"));
    }
}
