//! # memhier-serve
//!
//! `memhierd`: the cluster-advisor service.  Everything the `memhier`
//! CLI computes — analytic predictions, full simulations, §6 platform
//! recommendations, sweep grids — behind a std-only HTTP/1.1 JSON API,
//! so one warm process (and one warm response cache) can answer a fleet
//! of capacity-planning clients.
//!
//! The stack, bottom to top:
//!
//! * [`http`] — a minimal, panic-free HTTP/1.1 parser and serializer
//!   (`Connection: close`, hard caps on head and body size).
//! * [`cache`] — the sharded LRU response cache; lookups take only a
//!   shard read-lock.
//! * [`metrics`] — lock-free counters and a latency histogram rendered
//!   by `GET /metrics`.
//! * [`api`] — the endpoint handlers and the canonicalized-JSON cache
//!   keying; `/v1/simulate` and `/v1/recommend` reuse the CLI's exact
//!   serializers so service and CLI output stay byte-identical.
//! * [`server`] — acceptor + bounded queue + worker pool, with 429
//!   admission control, per-request deadlines (503), and graceful
//!   drain-then-join shutdown.
//! * [`signal`] — a SIGTERM/SIGINT latch for the CLI's serve loop.
//!
//! Start one in-process (tests do exactly this):
//!
//! ```no_run
//! use memhier_serve::{ServeConfig, Server};
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeConfig::default()
//! })
//! .expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.shutdown();
//! ```

pub mod api;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
pub mod signal;

pub use api::{canonicalize, handle, AppState};
pub use cache::{CacheStats, CachedResponse, ResponseCache};
pub use http::{read_request, HttpError, Request, Response};
pub use metrics::{LatencyHistogram, Metrics};
pub use server::{ServeConfig, Server};
