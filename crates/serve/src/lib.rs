//! # memhier-serve
//!
//! `memhierd`: the cluster-advisor service.  Everything the `memhier`
//! CLI computes — analytic predictions, full simulations, §6 platform
//! recommendations, sweep grids — behind a std-only HTTP/1.1 JSON API,
//! so one warm process (and one warm response cache) can answer a fleet
//! of capacity-planning clients.
//!
//! The stack, bottom to top:
//!
//! * [`http`] — a minimal, panic-free, **incremental** HTTP/1.1 parser
//!   and serializer (keep-alive and pipelining via [`http::try_parse`],
//!   hard caps on head and body size, 408 slow-body deadlines).
//! * [`cache`] — the sharded LRU response cache; lookups take only a
//!   shard read-lock; entries carry the stale-while-revalidate age and
//!   single-flight latch.
//! * [`metrics`] — lock-free counters and a latency histogram rendered
//!   by `GET /metrics`.
//! * [`api`] — the endpoint handlers, the canonicalized-JSON cache
//!   keying, and the event loop's fast/slow routing split
//!   ([`api::route_fast`]); `/v1/simulate` and `/v1/recommend` reuse
//!   the CLI's exact serializers so service and CLI output stay
//!   byte-identical.
//! * [`server`] — the nonblocking event-loop front end (readiness via
//!   the hermetic `polling` shim) feeding a bounded queue and a
//!   supervised worker pool: keep-alive, pipelining, 408/429 shedding
//!   tiers, stale-while-revalidate, requeue-on-panic, and a
//!   drain-then-join shutdown.
//! * [`signal`] — a SIGTERM/SIGINT latch for the CLI's serve loop.
//!
//! Start one in-process (tests do exactly this):
//!
//! ```no_run
//! use memhier_serve::{ServeConfig, Server};
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeConfig::default()
//! })
//! .expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.shutdown();
//! ```

pub mod api;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
pub mod signal;

pub use api::{canonicalize, handle, AppState, Readiness};
pub use cache::{CacheStats, CachedResponse, ResponseCache};
pub use http::{read_request, HttpError, Request, Response};
pub use metrics::{LatencyHistogram, Metrics};
pub use server::{ServeConfig, Server};
