//! Service-level counters and the latency histogram behind `/metrics`.
//!
//! Everything is lock-free atomics so the request hot path never blocks
//! on instrumentation, mirroring the simulator observability layer's
//! pay-for-what-you-use stance.  `/metrics` renders the same JSON
//! conventions as the `--metrics` artifacts: snake_case keys, explicit
//! units in the names (`*_us`, `*_seconds`), counts as integers.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Upper bucket bounds of the latency histogram, in microseconds; a final
/// overflow bucket catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000, 30_000_000,
];

/// A fixed-bucket latency histogram (microseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..=LATENCY_BOUNDS_US.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]`: the bound of the
    /// first bucket whose cumulative count reaches `q·count` (the overflow
    /// bucket reports the largest finite bound).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return LATENCY_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(*LATENCY_BOUNDS_US.last().expect("non-empty bounds"));
            }
        }
        *LATENCY_BOUNDS_US.last().expect("non-empty bounds")
    }

    fn to_json(&self) -> serde_json::Value {
        let buckets: Vec<serde_json::Value> = LATENCY_BOUNDS_US
            .iter()
            .enumerate()
            .map(|(i, &le)| {
                serde_json::json!({
                    "le_us": le,
                    "count": self.buckets[i].load(Ordering::Relaxed),
                })
            })
            .chain(std::iter::once(serde_json::json!({
                "le_us": "inf",
                "count": self.buckets[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed),
            })))
            .collect();
        serde_json::json!({
            "count": self.count(),
            "mean_us": if self.count() == 0 { 0.0 } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / self.count() as f64
            },
            "p50_us": self.quantile_us(0.50),
            "p95_us": self.quantile_us(0.95),
            "p99_us": self.quantile_us(0.99),
            "buckets": serde_json::Value::Array(buckets),
        })
    }
}

/// All service counters, shared across the acceptor and every worker.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    accepted: AtomicU64,
    ok_2xx: AtomicU64,
    client_errors_4xx: AtomicU64,
    server_errors_5xx: AtomicU64,
    rejected_busy: AtomicU64,
    deadline_exceeded: AtomicU64,
    worker_respawns: AtomicU64,
    timeouts_408: AtomicU64,
    keepalive_reuses: AtomicU64,
    stale_served: AtomicU64,
    revalidations: AtomicU64,
    requeued_jobs: AtomicU64,
    /// Live queue depth, maintained by the server.
    pub queue_depth: AtomicUsize,
    /// Connections currently registered with the event loop.
    pub connections_open: AtomicUsize,
    latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            ok_2xx: AtomicU64::new(0),
            client_errors_4xx: AtomicU64::new(0),
            server_errors_5xx: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            timeouts_408: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            requeued_jobs: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            connections_open: AtomicUsize::new(0),
            latency: LatencyHistogram::default(),
        }
    }
}

impl Metrics {
    /// A connection was accepted (before admission control).
    pub fn on_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was turned away with 429 (full queue).
    pub fn on_reject_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// A request finished with `status` after `elapsed` (accept-to-reply).
    pub fn on_complete(&self, status: u16, elapsed: Duration) {
        match status {
            200..=299 => &self.ok_2xx,
            503 => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                &self.server_errors_5xx
            }
            400..=499 => &self.client_errors_4xx,
            _ => &self.server_errors_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency.record(elapsed);
    }

    /// Successful (2xx) responses so far.
    pub fn ok_count(&self) -> u64 {
        self.ok_2xx.load(Ordering::Relaxed)
    }

    /// 429 admission rejections so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected_busy.load(Ordering::Relaxed)
    }

    /// A dead worker thread was replaced by the supervisor.
    pub fn on_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// A read deadline expired and the connection was answered 408.
    pub fn on_timeout_408(&self) {
        self.timeouts_408.fetch_add(1, Ordering::Relaxed);
    }

    /// A second (or later) request arrived on an existing connection.
    pub fn on_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// A stale cache entry was served while (or instead of) refreshing.
    pub fn on_stale_served(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// A background revalidation was dispatched for a stale key.
    pub fn on_revalidate(&self) {
        self.revalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// A job held by a panicking worker was put back on the queue.
    pub fn on_requeue(&self) {
        self.requeued_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs requeued after a worker panic so far.
    pub fn requeue_count(&self) -> u64 {
        self.requeued_jobs.load(Ordering::Relaxed)
    }

    /// Keep-alive reuses so far.
    pub fn keepalive_reuse_count(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Stale responses served so far.
    pub fn stale_served_count(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    /// Worker threads respawned after a panic so far.
    pub fn worker_respawn_count(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Seconds since the service started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The `/metrics` document.
    pub fn render(
        &self,
        cache: CacheStats,
        queue_capacity: usize,
        workers: usize,
    ) -> serde_json::Value {
        serde_json::json!({
            "uptime_seconds": self.uptime_seconds(),
            "requests": serde_json::json!({
                "accepted": self.accepted.load(Ordering::Relaxed),
                "ok": self.ok_2xx.load(Ordering::Relaxed),
                "client_errors": self.client_errors_4xx.load(Ordering::Relaxed),
                "server_errors": self.server_errors_5xx.load(Ordering::Relaxed),
                "rejected_busy": self.rejected_busy.load(Ordering::Relaxed),
                "deadline_exceeded": self.deadline_exceeded.load(Ordering::Relaxed),
                "timeouts_408": self.timeouts_408.load(Ordering::Relaxed),
            }),
            "connections": serde_json::json!({
                "open": self.connections_open.load(Ordering::Relaxed) as u64,
                "keepalive_reuses": self.keepalive_reuses.load(Ordering::Relaxed),
            }),
            "latency_us": self.latency.to_json(),
            "cache": serde_json::json!({
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate(),
                "entries": cache.entries as u64,
                "capacity": cache.capacity as u64,
                "stale_served": self.stale_served.load(Ordering::Relaxed),
                "revalidations": self.revalidations.load(Ordering::Relaxed),
            }),
            "queue": serde_json::json!({
                "depth": self.queue_depth.load(Ordering::Relaxed) as u64,
                "capacity": queue_capacity as u64,
            }),
            "workers": workers as u64,
            "worker_respawns": self.worker_respawns.load(Ordering::Relaxed),
            "requeued_jobs": self.requeued_jobs.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(40));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(40));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 50);
        assert_eq!(h.quantile_us(0.95), 50_000);
        assert_eq!(h.quantile_us(0.99), 50_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn overflow_bucket_catches_slow_requests() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(120));
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), *LATENCY_BOUNDS_US.last().unwrap());
    }

    #[test]
    fn render_shape() {
        let m = Metrics::default();
        m.on_accept();
        m.on_complete(200, Duration::from_micros(80));
        m.on_complete(503, Duration::from_millis(5));
        m.on_worker_respawn();
        let v = m.render(
            CacheStats {
                hits: 3,
                misses: 1,
                entries: 2,
                capacity: 8,
            },
            64,
            4,
        );
        assert_eq!(v["requests"]["accepted"].as_u64(), Some(1));
        assert_eq!(v["requests"]["ok"].as_u64(), Some(1));
        assert_eq!(v["requests"]["deadline_exceeded"].as_u64(), Some(1));
        assert_eq!(v["cache"]["hits"].as_u64(), Some(3));
        assert_eq!(v["latency_us"]["count"].as_u64(), Some(2));
        assert_eq!(v["queue"]["capacity"].as_u64(), Some(64));
        assert_eq!(v["worker_respawns"].as_u64(), Some(1));
        assert_eq!(v["requests"]["timeouts_408"].as_u64(), Some(0));
        assert_eq!(v["connections"]["keepalive_reuses"].as_u64(), Some(0));
        assert_eq!(v["cache"]["stale_served"].as_u64(), Some(0));
        assert_eq!(v["requeued_jobs"].as_u64(), Some(0));
    }

    #[test]
    fn robustness_counters_accumulate() {
        let m = Metrics::default();
        m.on_timeout_408();
        m.on_keepalive_reuse();
        m.on_keepalive_reuse();
        m.on_stale_served();
        m.on_revalidate();
        m.on_requeue();
        let v = m.render(
            CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
                capacity: 8,
            },
            64,
            4,
        );
        assert_eq!(v["requests"]["timeouts_408"].as_u64(), Some(1));
        assert_eq!(v["connections"]["keepalive_reuses"].as_u64(), Some(2));
        assert_eq!(m.keepalive_reuse_count(), 2);
        assert_eq!(v["cache"]["stale_served"].as_u64(), Some(1));
        assert_eq!(v["cache"]["revalidations"].as_u64(), Some(1));
        assert_eq!(v["requeued_jobs"].as_u64(), Some(1));
        assert_eq!(m.requeue_count(), 1);
        assert_eq!(m.stale_served_count(), 1);
    }
}
