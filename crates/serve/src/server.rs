//! The `memhierd` server: one acceptor thread feeding a bounded job queue
//! drained by a fixed worker pool.
//!
//! Admission control happens **before** a connection ever reaches a
//! worker: when the queue already holds `queue_depth` connections the
//! acceptor answers `429 Too Many Requests` (with `Retry-After`) on the
//! spot and moves on, so an overloaded service degrades by shedding load
//! instead of by growing an unbounded backlog.  Each admitted job carries
//! its accept timestamp; workers enforce `accepted_at + timeout` as an
//! absolute deadline, answering `503` when a simulation outlives it.
//!
//! Shutdown is cooperative: [`Server::shutdown`] raises a stop flag,
//! wakes the blocking `accept()` with a loopback self-connect, lets the
//! workers drain every already-admitted job, and joins all threads.
//!
//! Workers are owned by a **supervisor** thread rather than the `Server`
//! handle: if a worker dies (a handler panic that escapes `catch_unwind`,
//! or an injected `serve:panic` fault), the supervisor respawns it and
//! counts the replacement in `/metrics` as `worker_respawns`, so one
//! poisoned request can never silently shrink the pool.  The
//! [`FaultPlan`] in [`ServeConfig`] drives deterministic failure
//! injection at the `serve` site: each admitted request draws a decision
//! index from a shared sequence counter, and a firing rule can delay the
//! request (exercising the 503 deadline and 429 admission paths), fail
//! it with a synthetic 500, or kill the worker outright.

use crate::api::{handle, AppState};
use crate::http::{read_request, Response};
use memhier_bench::{FaultAction, FaultPlan, FaultSite};
use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the supervisor scans for dead workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(10);

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Admitted-but-unserved connections allowed before 429s start.
    pub queue_depth: usize,
    /// Per-request deadline, measured from accept.
    pub timeout: Duration,
    /// Response-cache entry budget.
    pub cache_capacity: usize,
    /// Response-cache shard count.
    pub cache_shards: usize,
    /// Deterministic fault injection for the `serve` site (empty = off).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            queue_depth: 64,
            timeout: Duration::from_secs(10),
            cache_capacity: 256,
            cache_shards: 8,
            faults: FaultPlan::default(),
        }
    }
}

/// One admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Everything a worker (or the supervisor respawning one) needs.
struct WorkerShared {
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    queue: Arc<(Mutex<VecDeque<Job>>, Condvar)>,
    timeout: Duration,
    faults: FaultPlan,
    /// Request decision sequence for the `serve` fault site: one index
    /// per popped job, in pop order.
    serve_seq: AtomicU64,
}

/// A running `memhierd` instance.
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    queue: Arc<(Mutex<VecDeque<Job>>, Condvar)>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and start the acceptor plus supervised worker
    /// pool.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let state = Arc::new(AppState::new(
            config.cache_capacity.max(1),
            config.cache_shards.max(1),
            queue_depth,
            workers,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let queue: Arc<(Mutex<VecDeque<Job>>, Condvar)> =
            Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));

        let shared = Arc::new(WorkerShared {
            state: Arc::clone(&state),
            stop: Arc::clone(&stop),
            queue: Arc::clone(&queue),
            timeout: config.timeout,
            faults: config.faults.clone(),
            serve_seq: AtomicU64::new(0),
        });
        let worker_handles = (0..workers)
            .map(|i| spawn_worker(i, &shared))
            .collect::<io::Result<Vec<_>>>()?;
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("memhierd-supervisor".to_string())
                .spawn(move || supervise(&shared, worker_handles))?
        };

        let acceptor = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let io_timeout = config.timeout.max(Duration::from_secs(1));
            std::thread::Builder::new()
                .name("memhierd-acceptor".to_string())
                .spawn(move || {
                    accept_loop(&listener, &state, &stop, &queue, queue_depth, io_timeout)
                })?
        };

        Ok(Server {
            local_addr,
            state,
            stop,
            queue,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared cache/metrics state (used by tests and the CLI's
    /// shutdown report).
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Stop accepting, drain admitted jobs, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept(); the acceptor sees `stop` and drops
        // this dummy connection without enqueueing it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.queue.1.notify_all();
        // The supervisor joins (and stops respawning) the workers.
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &AppState,
    stop: &AtomicBool,
    queue: &(Mutex<VecDeque<Job>>, Condvar),
    queue_depth: usize,
    io_timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        state.metrics.on_accept();
        // A stalled client must never wedge a worker past the deadline.
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));

        let mut q = queue.0.lock().expect("job queue poisoned");
        if q.len() >= queue_depth {
            drop(q);
            state.metrics.on_reject_busy();
            let mut stream = stream;
            let _ = Response::error(429, "admission queue full, retry shortly")
                .with_header("Retry-After", "1")
                .write_to(&mut stream);
            let _ = stream.shutdown(Shutdown::Both);
        } else {
            q.push_back(Job {
                stream,
                accepted_at: Instant::now(),
            });
            state.metrics.queue_depth.store(q.len(), Ordering::SeqCst);
            queue.1.notify_one();
        }
    }
}

/// Start worker thread `memhierd-worker-{n}` over `shared`.
fn spawn_worker(n: usize, shared: &Arc<WorkerShared>) -> io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("memhierd-worker-{n}"))
        .spawn(move || worker_loop(&shared))
}

/// Own the worker pool: join dead workers, respawn replacements (counted
/// in `/metrics` as `worker_respawns`), and on shutdown join everyone
/// once the drain finishes.  Workers only exit cleanly when `stop` is
/// raised, so any earlier exit is a panic escaping `worker_loop`.
fn supervise(shared: &Arc<WorkerShared>, mut handles: Vec<JoinHandle<()>>) {
    let mut next_name = handles.len();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Wake sleepers so the drain can finish, then join the pool.
            shared.queue.1.notify_all();
            for h in handles {
                let _ = h.join();
            }
            return;
        }
        for slot in handles.iter_mut() {
            if !slot.is_finished() || shared.stop.load(Ordering::SeqCst) {
                continue;
            }
            match spawn_worker(next_name, shared) {
                Ok(fresh) => {
                    next_name += 1;
                    let dead = std::mem::replace(slot, fresh);
                    // A clean exit (shutdown race) is not a respawn.
                    if dead.join().is_err() {
                        shared.state.metrics.on_worker_respawn();
                        eprintln!("memhierd: worker died (panic); respawned");
                    }
                }
                // Out of threads: leave the slot and retry next scan.
                Err(e) => eprintln!("memhierd: respawning worker failed: {e}"),
            }
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

fn worker_loop(shared: &WorkerShared) {
    let WorkerShared {
        state,
        stop,
        queue,
        timeout,
        faults,
        serve_seq,
    } = shared;
    loop {
        let job = {
            let mut q = queue.0.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    state.metrics.queue_depth.store(q.len(), Ordering::SeqCst);
                    break Some(job);
                }
                // Drain semantics: only exit once the queue is empty AND
                // shutdown was requested, so admitted requests complete.
                if stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = queue.1.wait(q).expect("job queue poisoned");
            }
        };
        let Some(mut job) = job else { return };

        // Fault decision for this request, outside the handler's
        // catch_unwind: an injected panic must kill the worker (that is
        // the failure being rehearsed), not fall into the 500 path.
        let index = serve_seq.fetch_add(1, Ordering::SeqCst);
        let injected = match faults.check(FaultSite::Serve, index, 0) {
            Some(FaultAction::Panic) => {
                // The client sees a dropped connection; the supervisor
                // sees a dead worker.
                panic!("injected fault: serve:panic (request {index})");
            }
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
            Some(FaultAction::Io) => Some(Response::error(
                500,
                &format!("injected fault: serve:io (request {index})"),
            )),
            // `FaultAction` is non-exhaustive; unknown future actions
            // (and no action) serve the request normally.
            _ => None,
        };

        let deadline = job.accepted_at + *timeout;
        let response = match injected {
            Some(r) => r,
            None => match read_request(&mut job.stream) {
                Ok(req) => catch_unwind(AssertUnwindSafe(|| handle(&req, state, deadline)))
                    .unwrap_or_else(|_| Response::error(500, "internal error (handler panicked)")),
                Err(e) => Response::error(e.status, &e.message),
            },
        };
        let _ = response.write_to(&mut job.stream);
        let _ = job.stream.shutdown(Shutdown::Both);
        state
            .metrics
            .on_complete(response.status, job.accepted_at.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn raw_request(addr: SocketAddr, payload: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(payload.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn healthz_roundtrip_and_clean_shutdown() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        })
        .expect("start");
        let addr = server.local_addr();
        let reply = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"status\": \"ok\""), "{reply}");
        // The worker stamps metrics just after closing the stream; give it
        // a beat.
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.state().metrics.ok_count() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.state().metrics.ok_count(), 1);
        server.shutdown();
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
    }

    #[test]
    fn malformed_request_is_400_not_a_crash() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 4,
            timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        })
        .expect("start");
        let reply = raw_request(server.local_addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{reply}");
        // The server is still alive afterwards.
        let reply = raw_request(server.local_addr(), "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn full_queue_answers_429_with_retry_after() {
        // One worker, queue of one.  Two idle connections pin the worker
        // (blocked reading) and fill the queue; the next connection must
        // be turned away immediately with 429.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 1,
            timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        })
        .expect("start");
        let addr = server.local_addr();
        let _pin_worker = TcpStream::connect(addr).unwrap();
        let _fill_queue = TcpStream::connect(addr).unwrap();
        // Give the acceptor a moment to hand the first job to the worker
        // and enqueue the second.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_429 = false;
        while Instant::now() < deadline && !saw_429 {
            let reply = raw_request(addr, "GET /healthz HTTP/1.1\r\n\r\n");
            if reply.starts_with("HTTP/1.1 429") {
                assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
                saw_429 = true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(saw_429, "never saw a 429 while saturated");
        assert!(server.state().metrics.rejected_count() >= 1);
        server.shutdown();
    }
}
