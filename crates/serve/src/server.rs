//! The `memhierd` server: a readiness-driven **event loop** front end
//! feeding a bounded job queue drained by a fixed worker pool.
//!
//! One nonblocking thread owns the listener and every connection
//! (multiplexed through the hermetic `polling` shim over epoll /
//! poll(2)); connections are **keep-alive** by default and requests may
//! be **pipelined**.  The split of labor is strict:
//!
//! * the event loop parses requests incrementally and answers
//!   everything cheap inline — health and readiness probes, `/metrics`,
//!   routing and parse errors, and **cache hits** — so hit traffic
//!   never touches a worker thread;
//! * only genuine cache misses (and `/v1/fit`) are handed to the
//!   worker pool through the bounded queue, one in flight per
//!   connection so pipelined responses stay ordered.
//!
//! Degradation is tiered.  Fresh hits are always served.  Entries past
//! `cache_ttl` are served **stale immediately** (`X-Cache: stale`) with
//! a single-flight background revalidation dispatched only while the
//! queue is below half capacity — under load the refresh itself is the
//! first thing shed.  A miss that finds the queue full is answered
//! `429` + `Retry-After` on the spot.  Slow clients cannot wedge the
//! loop: a connection that stalls mid-request is answered `408` at
//! `read_timeout` (the slowloris defense), an idle keep-alive
//! connection is closed at `keepalive_timeout`, and a connection that
//! stops draining its responses is dropped.
//!
//! Workers are owned by a **supervisor** thread: if one dies (an
//! injected `serve:panic` fault), the supervisor respawns it and the
//! job it held is **requeued** by a drop guard — the client's in-flight
//! request survives the respawn instead of seeing a reset.  A job that
//! keeps killing workers is abandoned with a 500 after
//! [`MAX_JOB_ATTEMPTS`] tries, so an always-firing panic rule cannot
//! spin the pool forever.
//!
//! Shutdown is a drain: [`Server::begin_drain`] flips `/readyz` to 503
//! (the load-balancer signal) while traffic continues; [`Server::shutdown`]
//! then closes the listener, finishes every in-flight and buffered
//! pipelined request — final responses switch to `connection: close` —
//! and joins all threads.

use crate::api::{compute_response, revalidate, route_fast, AppState, FastRoute};
use crate::http::{timeout_error, try_parse, Request, Response};
use memhier_bench::{FaultAction, FaultPlan, FaultSite};
use polling::{Event, Events, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the supervisor scans for dead workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(10);

/// Event-loop timer granularity (read/idle deadlines are enforced on
/// this tick; they are coarse bounds, not precision timers).
const TICK: Duration = Duration::from_millis(20);

/// Poller key of the listener; connection keys start above it.
const LISTENER_KEY: usize = 0;

/// Times a job may be requeued after killing its worker before the
/// server gives up and answers 500.
pub const MAX_JOB_ATTEMPTS: u32 = 3;

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queued-but-unserved misses allowed before 429s start.
    pub queue_depth: usize,
    /// Per-request compute deadline, measured from parse.
    pub timeout: Duration,
    /// Response-cache entry budget.
    pub cache_capacity: usize,
    /// Response-cache shard count.
    pub cache_shards: usize,
    /// How long a connection may take to deliver one complete request
    /// before it is answered 408 (slowloris defense).
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection is kept open.
    pub keepalive_timeout: Duration,
    /// Age past which a cached response is considered stale and served
    /// under stale-while-revalidate (`None`: entries never go stale).
    pub cache_ttl: Option<Duration>,
    /// Deterministic fault injection for the `serve` site (empty = off).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            queue_depth: 64,
            timeout: Duration::from_secs(10),
            cache_capacity: 256,
            cache_shards: 8,
            read_timeout: Duration::from_secs(10),
            keepalive_timeout: Duration::from_secs(30),
            cache_ttl: None,
            faults: FaultPlan::default(),
        }
    }
}

/// One unit of worker-pool work.
enum Work {
    /// A cache miss owed a response on connection `token`.
    Request {
        /// Event-loop key of the owning connection.
        token: usize,
        /// The parsed request.
        req: Request,
        /// Memoization key (`None` for `/v1/fit`).
        key: Option<String>,
        /// When the request was parsed (latency + deadline basis).
        started: Instant,
        /// How many workers have already died holding this job.
        attempts: u32,
    },
    /// A background stale-entry refresh; nobody is waiting on it.
    Revalidate {
        /// The request to recompute.
        req: Request,
        /// Cache key to refresh.
        key: String,
    },
}

/// A finished [`Work::Request`] traveling back to the event loop.
struct Completion {
    token: usize,
    response: Response,
    started: Instant,
}

type Queue = Arc<(Mutex<VecDeque<Work>>, Condvar)>;

/// Everything a worker (or the supervisor respawning one) needs.
struct WorkerShared {
    state: Arc<AppState>,
    /// Worker-pool stop flag — raised only *after* the event loop has
    /// drained, so late-dispatched jobs are never stranded.
    workers_stop: Arc<AtomicBool>,
    queue: Queue,
    completions: Arc<Mutex<Vec<Completion>>>,
    poller: Arc<Poller>,
    timeout: Duration,
    faults: FaultPlan,
    /// Fault decision sequence for the `serve` site: one index per
    /// popped job, in pop order.
    serve_seq: AtomicU64,
}

fn lock_queue(queue: &Queue) -> std::sync::MutexGuard<'_, VecDeque<Work>> {
    queue.0.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn lock_completions(c: &Mutex<Vec<Completion>>) -> std::sync::MutexGuard<'_, Vec<Completion>> {
    c.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A running `memhierd` instance.
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    workers_stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    queue: Queue,
    event_loop: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and start the event loop plus supervised
    /// worker pool.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let state = Arc::new(AppState::new(
            config.cache_capacity.max(1),
            config.cache_shards.max(1),
            queue_depth,
            workers,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let workers_stop = Arc::new(AtomicBool::new(false));
        let queue: Queue = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let completions = Arc::new(Mutex::new(Vec::new()));
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER_KEY))?;

        let shared = Arc::new(WorkerShared {
            state: Arc::clone(&state),
            workers_stop: Arc::clone(&workers_stop),
            queue: Arc::clone(&queue),
            completions: Arc::clone(&completions),
            poller: Arc::clone(&poller),
            timeout: config.timeout,
            faults: config.faults.clone(),
            serve_seq: AtomicU64::new(0),
        });
        let worker_handles = (0..workers)
            .map(|i| spawn_worker(i, &shared))
            .collect::<io::Result<Vec<_>>>()?;
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("memhierd-supervisor".to_string())
                .spawn(move || supervise(&shared, worker_handles))?
        };

        let event_loop = {
            let mut el = EventLoop {
                listener,
                poller: Arc::clone(&poller),
                state: Arc::clone(&state),
                stop: Arc::clone(&stop),
                queue: Arc::clone(&queue),
                completions,
                conns: HashMap::new(),
                next_key: LISTENER_KEY + 1,
                queue_depth,
                read_timeout: config.read_timeout,
                keepalive_timeout: config.keepalive_timeout,
                cache_ttl: config.cache_ttl,
                accepting: true,
            };
            std::thread::Builder::new()
                .name("memhierd-eventloop".to_string())
                .spawn(move || el.run())?
        };

        state.set_ready();
        Ok(Server {
            local_addr,
            state,
            stop,
            workers_stop,
            poller,
            queue,
            event_loop: Some(event_loop),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared cache/metrics state (used by tests and the CLI's
    /// shutdown report).
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Announce shutdown without taking it: `/readyz` flips to 503 so
    /// load balancers drain this instance, while every other endpoint
    /// keeps serving.  Call [`Server::shutdown`] after the grace window.
    pub fn begin_drain(&self) {
        self.state.begin_drain();
    }

    /// Stop accepting, finish every in-flight and buffered request,
    /// and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.event_loop.is_none() {
            return;
        }
        self.state.begin_drain();
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.poller.notify();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        // Only now may the workers exit: the event loop has drained, so
        // no Work::Request can still be enqueued behind their backs.
        self.workers_stop.store(true, Ordering::SeqCst);
        self.queue.1.notify_all();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet parsed into a request.
    buf: Vec<u8>,
    /// Outbound bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// A worker owes this connection a response (at most one, so
    /// pipelined responses keep request order).
    busy: bool,
    /// Stop parsing and close once `out` drains (client sent
    /// `Connection: close`, or framing was lost to a 400/408).
    close_requested: bool,
    /// The peer's read side is gone (EOF seen).
    peer_closed: bool,
    /// When the partial request at the front of `buf` started arriving.
    req_started: Option<Instant>,
    /// Last moment bytes moved in either direction.
    last_activity: Instant,
    /// Requests served on this connection (for `keepalive_reuses`).
    served: u64,
    /// Interest currently registered with the poller.
    interest: (bool, bool),
}

struct EventLoop {
    listener: TcpListener,
    poller: Arc<Poller>,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    queue: Queue,
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    queue_depth: usize,
    read_timeout: Duration,
    keepalive_timeout: Duration,
    cache_ttl: Option<Duration>,
    accepting: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Events::new();
        loop {
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                // A failed wait would spin; back off instead of burning
                // a core, and let the timer logic still run.
                std::thread::sleep(TICK);
            }
            let draining = self.stop.load(Ordering::SeqCst);
            if draining && self.accepting {
                self.accepting = false;
                let _ = self.poller.delete(&self.listener);
            }
            let keys: Vec<(usize, bool, bool)> = events
                .iter()
                .map(|ev| (ev.key, ev.readable, ev.writable))
                .collect();
            for (key, readable, writable) in keys {
                if key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    self.conn_event(key, readable, writable, draining);
                }
            }
            self.drain_completions(draining);
            self.timer_pass(draining);
            if draining && self.conns.is_empty() {
                return;
            }
        }
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        self.state.metrics.on_accept();
        let key = self.next_key;
        // Skip the reserved listener and notify keys on wraparound.
        self.next_key = match self.next_key.wrapping_add(1) {
            k if k == usize::MAX || k == LISTENER_KEY => LISTENER_KEY + 1,
            k => k,
        };
        if self.poller.add(&stream, Event::readable(key)).is_err() {
            return;
        }
        self.state
            .metrics
            .connections_open
            .fetch_add(1, Ordering::Relaxed);
        self.conns.insert(
            key,
            Conn {
                stream,
                buf: Vec::new(),
                out: Vec::new(),
                busy: false,
                close_requested: false,
                peer_closed: false,
                req_started: None,
                last_activity: Instant::now(),
                served: 0,
                interest: (true, false),
            },
        );
    }

    fn close_conn(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            let _ = self.poller.delete(&conn.stream);
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.state
                .metrics
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn conn_event(&mut self, key: usize, readable: bool, writable: bool, draining: bool) {
        if readable && !self.read_ready(key) {
            return; // connection closed
        }
        if writable {
            self.flush(key);
        }
        self.advance(key, draining);
    }

    /// Pull everything the socket has.  Returns `false` when the
    /// connection was torn down.
    fn read_ready(&mut self, key: usize) -> bool {
        let Some(conn) = self.conns.get_mut(&key) else {
            return false;
        };
        if conn.busy || conn.close_requested {
            // Backpressure: leave pipelined bytes in the kernel buffer
            // until the in-flight response lands.
            return true;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.buf.is_empty() {
                        conn.req_started = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(key);
                    return false;
                }
            }
        }
        true
    }

    /// Parse-and-answer until the buffer has no complete request, then
    /// flush, apply close rules, and re-register interest.
    fn advance(&mut self, key: usize, draining: bool) {
        self.process_buffer(key, draining);
        self.flush(key);
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let flushed = !conn.busy && conn.out.is_empty();
        if flushed
            && (conn.close_requested || conn.peer_closed || (draining && !has_parseable(&conn.buf)))
        {
            self.close_conn(key);
            return;
        }
        self.update_interest(key, draining);
    }

    fn process_buffer(&mut self, key: usize, draining: bool) {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if conn.busy || conn.close_requested {
                return;
            }
            match try_parse(&conn.buf) {
                Ok(None) => {
                    if conn.buf.is_empty() {
                        conn.req_started = None;
                    }
                    return;
                }
                Err(e) => {
                    // Framing is lost; answer and close.
                    let started = conn.req_started.take().unwrap_or_else(Instant::now);
                    conn.buf.clear();
                    conn.close_requested = true;
                    let response = Response::error(e.status, &e.message);
                    self.state
                        .metrics
                        .on_complete(response.status, started.elapsed());
                    self.enqueue_response(key, response, draining);
                    return;
                }
                Ok(Some((req, consumed))) => {
                    conn.buf.drain(..consumed);
                    let started = conn.req_started.take().unwrap_or_else(Instant::now);
                    if !conn.buf.is_empty() {
                        conn.req_started = Some(Instant::now());
                    }
                    conn.served += 1;
                    if conn.served > 1 {
                        self.state.metrics.on_keepalive_reuse();
                    }
                    if req.wants_close() {
                        conn.close_requested = true;
                    }
                    self.dispatch(key, req, started, draining);
                }
            }
        }
    }

    /// Route one parsed request: answer inline, or hand it to the pool.
    fn dispatch(&mut self, key: usize, req: Request, started: Instant, draining: bool) {
        let depth = lock_queue(&self.queue).len();
        let allow_revalidate = depth < self.queue_depth.div_ceil(2);
        match route_fast(&req, &self.state, self.cache_ttl, allow_revalidate) {
            FastRoute::Done(response) => {
                self.state
                    .metrics
                    .on_complete(response.status, started.elapsed());
                self.enqueue_response(key, response, draining);
            }
            FastRoute::StaleRevalidate { response, key: ck } => {
                self.state
                    .metrics
                    .on_complete(response.status, started.elapsed());
                self.enqueue_response(key, response, draining);
                self.push_work(Work::Revalidate { req, key: ck });
            }
            FastRoute::Miss { key: ck } => {
                if depth >= self.queue_depth {
                    // The shedding tier of last resort.
                    self.state.metrics.on_reject_busy();
                    let response = Response::error(429, "admission queue full, retry shortly")
                        .with_header("Retry-After", "1");
                    self.enqueue_response(key, response, draining);
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.busy = true;
                }
                self.push_work(Work::Request {
                    token: key,
                    req,
                    key: ck,
                    started,
                    attempts: 0,
                });
            }
        }
    }

    fn push_work(&self, work: Work) {
        let mut q = lock_queue(&self.queue);
        q.push_back(work);
        self.state
            .metrics
            .queue_depth
            .store(q.len(), Ordering::SeqCst);
        drop(q);
        self.queue.1.notify_one();
    }

    /// Append a response in the right framing and try to send it now.
    fn enqueue_response(&mut self, key: usize, response: Response, draining: bool) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        // The final response before a close is framed `connection:
        // close`; during a drain that is any response with nothing
        // parseable behind it.
        let closing = conn.close_requested
            || (draining && !conn.busy && !has_parseable(&conn.buf))
            || conn.peer_closed;
        if closing {
            conn.close_requested = true;
        }
        conn.out.extend_from_slice(&response.to_bytes(!closing));
    }

    /// Write as much of `out` as the socket will take.
    fn flush(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        while !conn.out.is_empty() {
            match conn.stream.write(&conn.out) {
                Ok(0) => break,
                Ok(n) => {
                    conn.out.drain(..n);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(key);
                    return;
                }
            }
        }
    }

    fn update_interest(&mut self, key: usize, draining: bool) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let readable = !conn.busy && !conn.close_requested && !conn.peer_closed && !draining;
        let writable = !conn.out.is_empty();
        if conn.interest == (readable, writable) {
            return;
        }
        conn.interest = (readable, writable);
        let ev = Event {
            key,
            readable,
            writable,
        };
        if self.poller.modify(&conn.stream, ev).is_err() {
            self.close_conn(key);
        }
    }

    /// Deliver finished worker responses back onto their connections.
    fn drain_completions(&mut self, draining: bool) {
        let done: Vec<Completion> = std::mem::take(&mut *lock_completions(&self.completions));
        for completion in done {
            let key = completion.token;
            // The connection may have died while its job computed.
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.busy = false;
                self.state
                    .metrics
                    .on_complete(completion.response.status, completion.started.elapsed());
                self.enqueue_response(key, completion.response, draining);
                // A pipelined follow-up may already be buffered.
                self.advance(key, draining);
            }
        }
    }

    /// Enforce the read deadline (408), the write stall bound, and the
    /// keep-alive idle timeout.
    fn timer_pass(&mut self, draining: bool) {
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            if conn.busy {
                continue; // the compute deadline (503) governs
            }
            let stalled_read = conn
                .req_started
                .map(|t| t.elapsed() > self.read_timeout)
                .unwrap_or(false);
            if stalled_read && !conn.close_requested {
                let e = timeout_error(&conn.buf);
                let started = conn.req_started.take().unwrap_or_else(Instant::now);
                conn.buf.clear();
                conn.close_requested = true;
                self.state.metrics.on_timeout_408();
                let response = Response::error(e.status, &e.message);
                self.state
                    .metrics
                    .on_complete(response.status, started.elapsed());
                self.enqueue_response(key, response, draining);
                self.advance(key, draining);
                continue;
            }
            let idle = conn.last_activity.elapsed();
            let write_stalled = !conn.out.is_empty() && idle > self.read_timeout;
            let idle_out = conn.out.is_empty()
                && conn.req_started.is_none()
                && (idle > self.keepalive_timeout || draining || conn.close_requested);
            if write_stalled || idle_out {
                self.close_conn(key);
            }
        }
    }
}

/// Whether `buf` holds a complete request (or an error that will turn
/// into a response) — i.e. whether a drain must keep this connection.
fn has_parseable(buf: &[u8]) -> bool {
    !matches!(try_parse(buf), Ok(None))
}

/// Start worker thread `memhierd-worker-{n}` over `shared`.
fn spawn_worker(n: usize, shared: &Arc<WorkerShared>) -> io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("memhierd-worker-{n}"))
        .spawn(move || worker_loop(&shared))
}

/// Own the worker pool: join dead workers, respawn replacements (counted
/// in `/metrics` as `worker_respawns`), and on shutdown join everyone
/// once the drain finishes.  Workers only exit cleanly when
/// `workers_stop` is raised, so any earlier exit is a panic escaping
/// `worker_loop`.
fn supervise(shared: &Arc<WorkerShared>, mut handles: Vec<JoinHandle<()>>) {
    let mut next_name = handles.len();
    loop {
        if shared.workers_stop.load(Ordering::SeqCst) {
            // Wake sleepers so the drain can finish, then join the pool.
            shared.queue.1.notify_all();
            for h in handles {
                let _ = h.join();
            }
            return;
        }
        for slot in handles.iter_mut() {
            if !slot.is_finished() || shared.workers_stop.load(Ordering::SeqCst) {
                continue;
            }
            match spawn_worker(next_name, shared) {
                Ok(fresh) => {
                    next_name += 1;
                    let dead = std::mem::replace(slot, fresh);
                    // A clean exit (shutdown race) is not a respawn.
                    if dead.join().is_err() {
                        shared.state.metrics.on_worker_respawn();
                        eprintln!("memhierd: worker died (panic); respawned");
                    }
                }
                // Out of threads: leave the slot and retry next scan.
                Err(e) => eprintln!("memhierd: respawning worker failed: {e}"),
            }
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

/// Drop guard armed while a worker holds a job: if the worker dies with
/// the job unfinished (an injected `serve:panic`), the job is pushed
/// back to the **front** of the queue so the in-flight request survives
/// the respawn — up to [`MAX_JOB_ATTEMPTS`] times, after which the
/// client gets a 500 instead of an infinite respawn loop.
struct JobGuard<'a> {
    shared: &'a WorkerShared,
    work: Option<Work>,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let Some(work) = self.work.take() else { return };
        if !std::thread::panicking() {
            return;
        }
        match work {
            Work::Request {
                token,
                req,
                key,
                started,
                attempts,
            } => {
                if attempts + 1 < MAX_JOB_ATTEMPTS {
                    self.shared.state.metrics.on_requeue();
                    let mut q = lock_queue(&self.shared.queue);
                    q.push_front(Work::Request {
                        token,
                        req,
                        key,
                        started,
                        attempts: attempts + 1,
                    });
                    self.shared
                        .state
                        .metrics
                        .queue_depth
                        .store(q.len(), Ordering::SeqCst);
                    drop(q);
                    self.shared.queue.1.notify_one();
                } else {
                    lock_completions(&self.shared.completions).push(Completion {
                        token,
                        started,
                        response: Response::error(
                            500,
                            "request abandoned after repeated worker panics",
                        ),
                    });
                    let _ = self.shared.poller.notify();
                }
            }
            Work::Revalidate { key, .. } => {
                // Nobody waits on a refresh; just reopen the latch.
                if let Some(entry) = self.shared.state.cache.get(&key) {
                    entry.end_revalidate();
                }
            }
        }
    }
}

fn worker_loop(shared: &WorkerShared) {
    loop {
        let work = {
            let mut q = lock_queue(&shared.queue);
            loop {
                if let Some(work) = q.pop_front() {
                    shared
                        .state
                        .metrics
                        .queue_depth
                        .store(q.len(), Ordering::SeqCst);
                    break Some(work);
                }
                // Drain semantics: only exit once the queue is empty AND
                // shutdown was requested, so dispatched work completes.
                if shared.workers_stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared
                    .queue
                    .1
                    .wait(q)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        let Some(work) = work else { return };
        let mut guard = JobGuard {
            shared,
            work: Some(work),
        };

        // Fault decision for this pop, outside the handler's
        // catch_unwind: an injected panic must kill the worker (that is
        // the failure being rehearsed), not fall into the 500 path.
        // The guard above requeues the job the dying worker holds.
        let index = shared.serve_seq.fetch_add(1, Ordering::SeqCst);
        let injected = match shared.faults.check(FaultSite::Serve, index, 0) {
            Some(FaultAction::Panic) => {
                panic!("injected fault: serve:panic (request {index})");
            }
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
            Some(FaultAction::Io) => Some(Response::error(
                500,
                &format!("injected fault: serve:io (request {index})"),
            )),
            // `FaultAction` is non-exhaustive; unknown future actions
            // (and no action) serve the request normally.
            _ => None,
        };

        match guard.work.as_ref().expect("job present until defused") {
            Work::Request {
                token,
                req,
                key,
                started,
                ..
            } => {
                let deadline = *started + shared.timeout;
                let response = match injected {
                    Some(r) => r,
                    None => catch_unwind(AssertUnwindSafe(|| {
                        compute_response(req, &shared.state, deadline, key.as_deref())
                    }))
                    .unwrap_or_else(|_| Response::error(500, "internal error (handler panicked)")),
                };
                lock_completions(&shared.completions).push(Completion {
                    token: *token,
                    started: *started,
                    response,
                });
                let _ = shared.poller.notify();
            }
            Work::Revalidate { req, key } => {
                let deadline = Instant::now() + shared.timeout;
                if injected.is_some()
                    || catch_unwind(AssertUnwindSafe(|| {
                        revalidate(req, &shared.state, deadline, key)
                    }))
                    .is_err()
                {
                    // The refresh never happened; reopen the latch.
                    if let Some(entry) = shared.state.cache.get(key) {
                        entry.end_revalidate();
                    }
                }
            }
        }
        guard.work = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_request(addr: SocketAddr, payload: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(payload.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        }
    }

    /// A keep-alive test client: reads one framed response at a time,
    /// carrying any over-read bytes (the start of a pipelined follow-up
    /// response) to the next call.
    struct KeepAlive {
        stream: TcpStream,
        carry: Vec<u8>,
    }

    impl KeepAlive {
        fn connect(addr: SocketAddr) -> KeepAlive {
            KeepAlive {
                stream: TcpStream::connect(addr).expect("connect"),
                carry: Vec::new(),
            }
        }

        fn send(&mut self, payload: &str) {
            self.stream.write_all(payload.as_bytes()).expect("send");
        }

        /// Read exactly one HTTP response (head + content-length body).
        fn read_one(&mut self) -> String {
            let mut chunk = [0u8; 1024];
            loop {
                if let Some(head_end) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                    let head = String::from_utf8_lossy(&self.carry[..head_end]).to_string();
                    let clen: usize = head
                        .lines()
                        .find_map(|l| {
                            let (name, v) = l.split_once(':')?;
                            name.eq_ignore_ascii_case("content-length")
                                .then(|| v.trim().parse().ok())?
                        })
                        .expect("content-length present");
                    if self.carry.len() >= head_end + 4 + clen {
                        let rest = self.carry.split_off(head_end + 4 + clen);
                        let one = String::from_utf8_lossy(&self.carry).to_string();
                        self.carry = rest;
                        return one;
                    }
                }
                let n = self.stream.read(&mut chunk).expect("read");
                assert!(
                    n > 0,
                    "connection closed mid-response; got so far:\n{}",
                    String::from_utf8_lossy(&self.carry)
                );
                self.carry.extend_from_slice(&chunk[..n]);
            }
        }

        /// Read until EOF; asserts nothing beyond the carried bytes.
        fn read_rest(&mut self) -> String {
            let mut rest = String::from_utf8_lossy(&self.carry).to_string();
            self.carry.clear();
            let mut tail = String::new();
            self.stream.read_to_string(&mut tail).expect("read rest");
            rest.push_str(&tail);
            rest
        }
    }

    #[test]
    fn healthz_roundtrip_and_clean_shutdown() {
        let server = Server::start(test_config()).expect("start");
        let addr = server.local_addr();
        let reply = raw_request(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("connection: close\r\n"), "{reply}");
        assert!(reply.contains("\"status\": \"ok\""), "{reply}");
        assert_eq!(server.state().metrics.ok_count(), 1);
        server.shutdown();
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
    }

    #[test]
    fn keepalive_serves_sequential_requests_on_one_connection() {
        let server = Server::start(test_config()).expect("start");
        let mut c = KeepAlive::connect(server.local_addr());
        for i in 0..3 {
            c.send("GET /healthz HTTP/1.1\r\n\r\n");
            let reply = c.read_one();
            assert!(reply.starts_with("HTTP/1.1 200"), "request {i}: {reply}");
            assert!(
                reply.contains("connection: keep-alive\r\n"),
                "request {i}: {reply}"
            );
        }
        assert_eq!(server.state().metrics.keepalive_reuse_count(), 2);
        // `Connection: close` is honored and ends the connection.
        c.send("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let reply = c.read_one();
        assert!(reply.contains("connection: close\r\n"), "{reply}");
        assert!(
            c.read_rest().is_empty(),
            "server closed after Connection: close"
        );
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = Server::start(test_config()).expect("start");
        let mut c = KeepAlive::connect(server.local_addr());
        // A worker-bound miss FOLLOWED by an inline-able GET, written in
        // one burst: the miss response must still come first.
        c.send(concat!(
            "POST /v1/model HTTP/1.1\r\nContent-Length: 39\r\n\r\n",
            r#"{"config": "C5", "workload": "TPC-C"}"#,
            "\r\n",
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        ));
        let first = c.read_one();
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        assert!(first.contains("e_instr_cycles"), "{first}");
        let second = c.read_one();
        assert!(second.starts_with("HTTP/1.1 200"), "{second}");
        assert!(second.contains("\"status\": \"ok\""), "{second}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_is_400_and_closes_without_parsing_trailing_bytes() {
        let server = Server::start(test_config()).expect("start");
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        // Malformed first request, valid second request in the same
        // burst: framing is lost, so the server must answer one 400 and
        // close — never parse the trailing bytes as a request.
        s.write_all(b"NOT-HTTP\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{all}");
        assert!(all.contains("connection: close\r\n"), "{all}");
        assert_eq!(
            all.matches("HTTP/1.1").count(),
            1,
            "exactly one response: {all}"
        );
        // The server is still alive afterwards.
        let reply = raw_request(
            server.local_addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn stalled_request_answers_408() {
        let server = Server::start(ServeConfig {
            read_timeout: Duration::from_millis(100),
            ..test_config()
        })
        .expect("start");
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(b"POST /v1/model HTTP/1.1\r\nContent-Length: 500\r\n\r\nabc")
            .unwrap();
        let started = Instant::now();
        let mut all = String::new();
        s.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "{all}");
        assert!(all.contains("3 of 500"), "{all}");
        assert!(started.elapsed() < Duration::from_secs(3));
        server.shutdown();
    }

    #[test]
    fn idle_keepalive_connection_is_reaped() {
        let server = Server::start(ServeConfig {
            keepalive_timeout: Duration::from_millis(80),
            ..test_config()
        })
        .expect("start");
        let mut c = KeepAlive::connect(server.local_addr());
        c.send("GET /healthz HTTP/1.1\r\n\r\n");
        let _ = c.read_one();
        // Idle past the keep-alive window: the server closes silently.
        c.stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let rest = c.read_rest();
        assert!(rest.is_empty(), "silent close, no bytes: {rest}");
        server.shutdown();
    }

    #[test]
    fn full_queue_answers_429_with_retry_after() {
        // One worker held busy by delay faults; queue of one.  Distinct
        // misses stack up: one in the worker, one queued, the third is
        // turned away with 429 — on a still-usable keep-alive conn.
        let server = Server::start(ServeConfig {
            workers: 1,
            queue_depth: 1,
            faults: FaultPlan::parse("serve:delay:ms=1500").expect("fault spec"),
            ..test_config()
        })
        .expect("start");
        let addr = server.local_addr();
        let send_miss = |i: usize| {
            let body = format!(r#"{{"config": "C{}", "workload": "FFT"}}"#, i + 1);
            let mut c = KeepAlive::connect(addr);
            c.send(&format!(
                "POST /v1/model HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ));
            c
        };
        let _busy = send_miss(0);
        let _queued = send_miss(1);
        // Give the loop a beat to dispatch both.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_429 = false;
        let mut i = 2;
        while Instant::now() < deadline && !saw_429 {
            let mut c = send_miss(i);
            i += 1;
            let reply = c.read_one();
            if reply.starts_with("HTTP/1.1 429") {
                assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
                saw_429 = true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(saw_429, "never saw a 429 while saturated");
        assert!(server.state().metrics.rejected_count() >= 1);
        server.shutdown();
    }

    #[test]
    fn cache_hits_are_served_inline_and_stale_after_ttl() {
        let server = Server::start(ServeConfig {
            cache_ttl: Some(Duration::from_millis(50)),
            ..test_config()
        })
        .expect("start");
        let mut c = KeepAlive::connect(server.local_addr());
        let body = r#"{"config": "C7", "workload": "EDGE"}"#;
        let post = format!(
            "POST /v1/model HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        c.send(&post);
        let miss = c.read_one();
        assert!(miss.contains("X-Cache: miss\r\n"), "{miss}");
        c.send(&post);
        let hit = c.read_one();
        assert!(hit.contains("X-Cache: hit\r\n"), "{hit}");
        std::thread::sleep(Duration::from_millis(80));
        c.send(&post);
        let stale = c.read_one();
        assert!(stale.contains("X-Cache: stale\r\n"), "{stale}");
        // Same body bytes in all three answers.
        let tail = |r: &str| r.split("\r\n\r\n").nth(1).unwrap().to_string();
        assert_eq!(tail(&miss), tail(&hit));
        assert_eq!(tail(&hit), tail(&stale));
        assert!(server.state().metrics.stale_served_count() >= 1);
        server.shutdown();
    }

    #[test]
    fn drain_completes_keepalive_connections() {
        // Workers hold every miss for 300ms, so the in-flight request's
        // completion lands well after the event loop has seen the stop
        // flag — the drain path is what delivers it.
        let server = Server::start(ServeConfig {
            faults: FaultPlan::parse("serve:delay:ms=300").expect("fault spec"),
            ..test_config()
        })
        .expect("start");
        let addr = server.local_addr();
        let mut c = KeepAlive::connect(addr);
        c.send("GET /healthz HTTP/1.1\r\n\r\n");
        let first = c.read_one();
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        // Drain announcement: readiness drops, service continues.
        server.begin_drain();
        c.send("GET /readyz HTTP/1.1\r\n\r\n");
        let ready = c.read_one();
        assert!(ready.starts_with("HTTP/1.1 503"), "{ready}");
        assert!(ready.contains("draining"), "{ready}");
        // A miss in flight when shutdown lands must still complete.
        let body = r#"{"config": "C6", "workload": "Radix"}"#;
        c.send(&format!(
            "POST /v1/model HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ));
        let handle = std::thread::spawn(move || server.shutdown());
        let last = c.read_one();
        assert!(last.starts_with("HTTP/1.1 200"), "{last}");
        assert!(last.contains("e_instr_cycles"), "{last}");
        assert!(last.contains("connection: close\r\n"), "{last}");
        assert!(c.read_rest().is_empty());
        handle.join().unwrap();
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
    }
}
