//! A SIGTERM/SIGINT latch with no libc dependency: the handler just
//! raises an [`AtomicBool`] (the only async-signal-safe thing worth
//! doing), and the CLI's serve loop polls [`shutdown_requested`] to drive
//! a graceful [`crate::Server::shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only stores to a static
        // atomic; both signals are replaced, never restored (the process
        // is shutting down when they matter).
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGTERM/SIGINT handlers (no-op off unix).
pub fn install() {
    imp::install();
}

/// True once a termination signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}
