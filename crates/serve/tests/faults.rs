//! Deterministic fault injection against a real listening `memhierd`:
//! injected worker panics must be healed by the supervisor (and counted
//! in `/metrics`), injected delays must drive the existing 503 deadline
//! and 429 admission machinery, and injected I/O faults must surface as
//! 500s — all without wall-clock randomness, so these tests replay the
//! exact same failures every run.

use memhier_bench::FaultPlan;
use memhier_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Send `payload` raw and read to EOF.  A dropped connection (the
/// injected-panic case) yields whatever arrived before the reset,
/// usually the empty string — never a test panic.
fn raw_request(addr: SocketAddr, payload: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    if s.write_all(payload.as_bytes()).is_err() {
        return String::new();
    }
    let mut reply = String::new();
    let _ = s.read_to_string(&mut reply);
    reply
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn server_with(faults: &str, workers: usize, queue_depth: usize, timeout: Duration) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        timeout,
        faults: FaultPlan::parse(faults).expect("valid fault spec"),
        ..ServeConfig::default()
    })
    .expect("start")
}

/// `serve:panic:nth=3` kills the worker on the 3rd popped request; the
/// supervisor must respawn it (visible in `/metrics` as
/// `worker_respawns`) and the service must keep answering.
#[test]
fn injected_worker_panic_is_respawned_and_counted() {
    let server = server_with("serve:panic:nth=3", 2, 8, Duration::from_secs(5));
    let addr = server.local_addr();

    // Requests 1-2 (indices 0-1) succeed; request 3 (index 2) hits the
    // panic rule and the client sees a dropped connection.
    for _ in 0..2 {
        let reply = raw_request(addr, &get("/healthz"));
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    let reply = raw_request(addr, &get("/healthz"));
    assert!(
        !reply.starts_with("HTTP/1.1 2"),
        "request at a panic index must not succeed: {reply}"
    );

    // The supervisor notices within a poll tick or two.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.state().metrics.worker_respawn_count() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.state().metrics.worker_respawn_count(), 1);

    // Index 3: alive again, full pool.
    let reply = raw_request(addr, &get("/healthz"));
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    // Index 4: the respawn is visible through the public endpoint.
    let reply = raw_request(addr, &get("/metrics"));
    assert!(reply.contains("\"worker_respawns\": 1"), "{reply}");
    server.shutdown();
}

/// An injected delay longer than the request timeout must surface as the
/// existing 503 deadline path (and count as `deadline_exceeded`), not as
/// a hang or a success.
#[test]
fn injected_delay_drives_the_503_deadline_path() {
    // Every request sleeps 300ms against a 100ms deadline.
    let server = server_with("serve:delay:ms=300", 1, 8, Duration::from_millis(100));
    let addr = server.local_addr();
    let reply = raw_request(
        addr,
        &post(
            "/v1/simulate",
            r#"{"config": "C1", "workload": "FFT", "size": "small"}"#,
        ),
    );
    assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
    assert!(reply.contains("deadline exceeded"), "{reply}");
    let m = &server.state().metrics;
    assert_eq!(m.ok_count(), 0);
    server.shutdown();
}

/// With one worker pinned by an injected delay and a queue of one, the
/// third connection must be shed with 429 + Retry-After — admission
/// control driven deterministically, no idle-socket trickery needed.
#[test]
fn injected_delay_fills_the_queue_and_sheds_429() {
    let server = server_with("serve:delay:ms=600", 1, 1, Duration::from_secs(5));
    let addr = server.local_addr();

    // First request: popped by the worker, now sleeping 600ms.
    let h1 = std::thread::spawn(move || raw_request(addr, &get("/healthz")));
    std::thread::sleep(Duration::from_millis(150));
    // Second request: admitted, fills the queue while the worker sleeps.
    let h2 = std::thread::spawn(move || raw_request(addr, &get("/healthz")));
    std::thread::sleep(Duration::from_millis(150));
    // Third request: the queue is full, the acceptor sheds it.
    let reply = raw_request(addr, &get("/healthz"));
    assert!(reply.starts_with("HTTP/1.1 429"), "{reply}");
    assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
    assert!(server.state().metrics.rejected_count() >= 1);

    // The delayed requests still complete once the worker wakes.
    for h in [h1, h2] {
        let reply = h.join().expect("client thread");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    server.shutdown();
}

/// `serve:io:nth=2` fails every 2nd request with a synthetic 500 whose
/// body names the injection, while odd requests are untouched.
#[test]
fn injected_io_fault_answers_500_and_service_stays_up() {
    let server = server_with("serve:io:nth=2", 1, 8, Duration::from_secs(5));
    let addr = server.local_addr();
    for index in 0..4u64 {
        let reply = raw_request(addr, &get("/healthz"));
        if (index + 1) % 2 == 0 {
            assert!(reply.starts_with("HTTP/1.1 500"), "index {index}: {reply}");
            assert!(reply.contains("injected fault: serve:io"), "{reply}");
        } else {
            assert!(reply.starts_with("HTTP/1.1 200"), "index {index}: {reply}");
        }
    }
    assert_eq!(server.state().metrics.ok_count(), 2);
    assert_eq!(server.state().metrics.worker_respawn_count(), 0);
    server.shutdown();
}

/// The default (empty) plan injects nothing: the fault plane costs one
/// emptiness check per request and changes no behavior.
#[test]
fn empty_plan_is_inert() {
    let server = server_with("", 2, 8, Duration::from_secs(5));
    let addr = server.local_addr();
    for _ in 0..5 {
        let reply = raw_request(addr, &get("/healthz"));
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    assert_eq!(server.state().metrics.worker_respawn_count(), 0);
    server.shutdown();
}
