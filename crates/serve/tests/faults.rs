//! Deterministic fault injection against a real listening `memhierd`:
//! injected worker panics must be healed by the supervisor (respawn) and
//! survived by the client (the in-flight job is requeued, so the
//! keep-alive connection sees a 200, not a reset), injected delays must
//! drive the existing 503 deadline and 429 admission machinery, and
//! injected I/O faults must surface as 500s — all without wall-clock
//! randomness, so these tests replay the exact same failures every run.
//!
//! Fault decisions are made per **popped worker job**, so only requests
//! that miss the cache (distinct `/v1/model` bodies here) consume fault
//! indices; probes and cache hits are answered on the event loop and
//! never see a fault.

use memhier_bench::FaultPlan;
use memhier_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Send `payload` raw and read to EOF.  A dropped connection yields
/// whatever arrived before the reset, usually the empty string — never
/// a test panic.
fn raw_request(addr: SocketAddr, payload: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    if s.write_all(payload.as_bytes()).is_err() {
        return String::new();
    }
    let mut reply = String::new();
    let _ = s.read_to_string(&mut reply);
    reply
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// A `/v1/model` request no other test in this process has cached:
/// `tag` picks the config so each call is a genuine worker-bound miss.
fn miss(tag: usize) -> String {
    post(
        "/v1/model",
        &format!(r#"{{"config": "C{}", "workload": "LU"}}"#, (tag % 8) + 1),
    )
}

fn server_with(faults: &str, workers: usize, queue_depth: usize, timeout: Duration) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        timeout,
        faults: FaultPlan::parse(faults).expect("valid fault spec"),
        ..ServeConfig::default()
    })
    .expect("start")
}

/// `serve:panic:nth=3` kills the worker on the 3rd popped job.  The
/// supervisor must respawn it (visible in `/metrics` as
/// `worker_respawns`) and — new with the event-loop front end — the
/// client must NOT notice: the dying worker's job is requeued and a
/// fresh worker answers it on the same connection.
#[test]
fn injected_worker_panic_is_respawned_and_the_request_survives() {
    let server = server_with("serve:panic:nth=3", 2, 8, Duration::from_secs(5));
    let addr = server.local_addr();

    // Jobs 1-2 (indices 0-1) succeed outright; job 3 (index 2) hits the
    // panic rule, kills its worker, and is requeued (index 3 on the
    // replacement pop) — the client still gets its 200.
    for tag in 0..3 {
        let reply = raw_request(addr, &miss(tag));
        assert!(reply.starts_with("HTTP/1.1 200"), "job {tag}: {reply}");
    }
    // The supervisor notices within a poll tick or two.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.state().metrics.worker_respawn_count() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.state().metrics.worker_respawn_count(), 1);
    assert_eq!(server.state().metrics.requeue_count(), 1);

    // The respawn and requeue are visible through the public endpoint.
    let reply = raw_request(addr, &get("/metrics"));
    assert!(reply.contains("\"worker_respawns\": 1"), "{reply}");
    assert!(reply.contains("\"requeued_jobs\": 1"), "{reply}");
    server.shutdown();
}

/// A panic mid-stream on a keep-alive connection: the same connection
/// carries requests before, during, and after the worker dies, and every
/// one of them gets its response in order.
#[test]
fn keepalive_connection_survives_a_worker_panic_mid_stream() {
    let server = server_with("serve:panic:nth=2", 1, 8, Duration::from_secs(5));
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Three sequential misses on ONE connection.  With nth=2 every even
    // pop panics: job 2 (index 1) kills the worker and is requeued
    // (pop index 2 would panic again under nth=2?  no — nth counts pops,
    // and the requeued job reappears at index 2, which is odd under the
    // 1-based "every 2nd" rule, so it completes).
    let read_one = |s: &mut TcpStream| {
        let mut acc = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            if let Some(head_end) = acc.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&acc[..head_end]).to_string();
                let clen: usize = head
                    .lines()
                    .find_map(|l| {
                        let (name, v) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse().ok())?
                    })
                    .expect("content-length");
                if acc.len() >= head_end + 4 + clen {
                    return String::from_utf8_lossy(&acc[..head_end + 4 + clen]).to_string();
                }
            }
            let n = s.read(&mut chunk).expect("read (reset mid-stream?)");
            assert!(n > 0, "connection reset mid-stream");
            acc.extend_from_slice(&chunk[..n]);
        }
    };
    for tag in 0..3 {
        let body = format!(r#"{{"config": "C{}", "workload": "Radix"}}"#, tag + 1);
        let payload = format!(
            "POST /v1/model HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        s.write_all(payload.as_bytes()).unwrap();
        let reply = read_one(&mut s);
        assert!(reply.starts_with("HTTP/1.1 200"), "job {tag}: {reply}");
        assert!(
            reply.contains("connection: keep-alive\r\n"),
            "job {tag}: {reply}"
        );
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.state().metrics.worker_respawn_count() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.state().metrics.worker_respawn_count() >= 1);
    assert!(server.state().metrics.requeue_count() >= 1);
    server.shutdown();
}

/// An injected delay longer than the request timeout must surface as the
/// existing 503 deadline path (and count as `deadline_exceeded`), not as
/// a hang or a success.
#[test]
fn injected_delay_drives_the_503_deadline_path() {
    // Every job sleeps 300ms against a 100ms deadline.
    let server = server_with("serve:delay:ms=300", 1, 8, Duration::from_millis(100));
    let addr = server.local_addr();
    let reply = raw_request(
        addr,
        &post(
            "/v1/simulate",
            r#"{"config": "C1", "workload": "FFT", "size": "small"}"#,
        ),
    );
    assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
    assert!(reply.contains("deadline exceeded"), "{reply}");
    let m = &server.state().metrics;
    assert_eq!(m.ok_count(), 0);
    server.shutdown();
}

/// With one worker pinned by an injected delay and a queue of one, the
/// third distinct miss must be shed with 429 + Retry-After — admission
/// control driven deterministically.
#[test]
fn injected_delay_fills_the_queue_and_sheds_429() {
    let server = server_with("serve:delay:ms=600", 1, 1, Duration::from_secs(5));
    let addr = server.local_addr();

    // First miss: popped by the worker, now sleeping 600ms.
    let h1 = std::thread::spawn(move || raw_request(addr, &miss(0)));
    std::thread::sleep(Duration::from_millis(150));
    // Second miss: admitted, fills the queue while the worker sleeps.
    let h2 = std::thread::spawn(move || raw_request(addr, &miss(1)));
    std::thread::sleep(Duration::from_millis(150));
    // Third miss: the queue is full, the event loop sheds it inline.
    let reply = raw_request(addr, &miss(2));
    assert!(reply.starts_with("HTTP/1.1 429"), "{reply}");
    assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
    assert!(server.state().metrics.rejected_count() >= 1);

    // The delayed requests still complete once the worker wakes.
    for h in [h1, h2] {
        let reply = h.join().expect("client thread");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    server.shutdown();
}

/// `serve:io:nth=2` fails every 2nd popped job with a synthetic 500
/// whose body names the injection, while odd jobs are untouched.
#[test]
fn injected_io_fault_answers_500_and_service_stays_up() {
    let server = server_with("serve:io:nth=2", 1, 8, Duration::from_secs(5));
    let addr = server.local_addr();
    for index in 0..4u64 {
        let reply = raw_request(addr, &miss(index as usize));
        if (index + 1) % 2 == 0 {
            assert!(reply.starts_with("HTTP/1.1 500"), "index {index}: {reply}");
            assert!(reply.contains("injected fault: serve:io"), "{reply}");
        } else {
            assert!(reply.starts_with("HTTP/1.1 200"), "index {index}: {reply}");
        }
    }
    assert_eq!(server.state().metrics.ok_count(), 2);
    assert_eq!(server.state().metrics.worker_respawn_count(), 0);
    server.shutdown();
}

/// The default (empty) plan injects nothing: the fault plane costs one
/// emptiness check per popped job and changes no behavior.
#[test]
fn empty_plan_is_inert() {
    let server = server_with("", 2, 8, Duration::from_secs(5));
    let addr = server.local_addr();
    for tag in 0..5 {
        let reply = raw_request(addr, &miss(tag));
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    assert_eq!(server.state().metrics.worker_respawn_count(), 0);
    assert_eq!(server.state().metrics.requeue_count(), 0);
    server.shutdown();
}
