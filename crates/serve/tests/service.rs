//! End-to-end tests against a real listening `memhierd`: the response
//! cache's warm/cold ratio, admission control under a saturating burst,
//! and deadline enforcement.
//!
//! These clients speak `Connection: close` so plain read-to-EOF framing
//! works; keep-alive and pipelining are covered by the server's unit
//! tests and by `serve_soak`.

use memhier_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Send `payload` raw, read to EOF, return (status, headers+body text,
/// latency).
fn timed_request(addr: SocketAddr, payload: &str) -> (u16, String, Duration) {
    let started = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    s.write_all(payload.as_bytes()).expect("send");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read");
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed reply: {reply:?}"));
    (status, reply, started.elapsed())
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// The headline cache claim: with 8 concurrent clients replaying the same
/// measured-recommendation request, warm-cache latency must be at least
/// 10x lower than the cold (trace-characterizing) first request.
#[test]
fn warm_recommend_is_10x_faster_than_cold_at_8_clients() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_depth: 64,
        timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();
    let body = r#"{"workload": "EDGE", "measure": true, "size": "small"}"#;
    let payload = post("/v1/recommend", body);

    let (status, reply, cold) = timed_request(addr, &payload);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("X-Cache: miss"), "{reply}");

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let payload = payload.clone();
            std::thread::spawn(move || {
                (0..4)
                    .map(|_| {
                        let (status, reply, warm) = timed_request(addr, &payload);
                        assert_eq!(status, 200);
                        assert!(reply.contains("X-Cache: hit"), "{reply}");
                        warm
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut warm: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    warm.sort();
    let warm_median = warm[warm.len() / 2];
    assert!(
        cold >= warm_median * 10,
        "cold {cold:?} not >= 10x warm median {warm_median:?}"
    );
    server.shutdown();
}

/// Saturate a 1-worker, depth-1 server with a slow sweep plus a queued
/// request; a burst then must be shed with 429 + Retry-After while both
/// in-flight requests still complete with 200.
#[test]
fn burst_sheds_429_while_in_flight_requests_complete() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        timeout: Duration::from_secs(120),
        // The PR-5 engine finishes a small sweep in well under a second,
        // so simulator slowness can no longer hold the worker busy; a
        // deterministic per-request delay keeps the saturation window
        // open instead.
        faults: memhier_bench::FaultPlan::parse("serve:delay:ms=2000").unwrap(),
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();

    // Occupies the single worker (2 s injected delay plus the sweep).
    let sweep = post(
        "/v1/sweep",
        r#"{"configs": ["C1", "C8"], "workloads": ["FFT", "LU"], "size": "small"}"#,
    );
    let occupier = std::thread::spawn(move || timed_request(addr, &sweep));
    std::thread::sleep(Duration::from_millis(200));

    // Fills the queue's single slot behind the occupier.
    let queued_payload = post("/v1/model", r#"{"config": "C5", "workload": "FFT"}"#);
    let queued = {
        let payload = queued_payload.clone();
        std::thread::spawn(move || timed_request(addr, &payload))
    };
    std::thread::sleep(Duration::from_millis(100));

    // Burst against the full queue until a shed response shows up (the
    // worker may briefly pop the queued job before the sweep finishes).
    let mut saw_429 = false;
    for _ in 0..50 {
        let (status, reply, _) = timed_request(addr, &queued_payload);
        if status == 429 {
            assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
            saw_429 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_429, "burst was never shed with a 429");

    let (status, reply, _) = occupier.join().expect("occupier");
    assert_eq!(status, 200, "in-flight sweep must complete: {reply}");
    let (status, reply, _) = queued.join().expect("queued");
    assert_eq!(status, 200, "queued request must complete: {reply}");
    assert!(server.state().metrics.rejected_count() >= 1);
    server.shutdown();
}

/// A deadline far shorter than a simulation aborts with 503 rather than
/// holding the connection.
#[test]
fn deadline_aborts_long_simulation_with_503() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 8,
        timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.local_addr();
    let (status, reply, elapsed) = timed_request(
        addr,
        &post(
            "/v1/simulate",
            r#"{"config": "C8", "workload": "Radix", "size": "medium"}"#,
        ),
    );
    assert_eq!(status, 503, "{reply}");
    assert!(reply.contains("deadline"), "{reply}");
    assert!(
        elapsed < Duration::from_secs(30),
        "503 should arrive promptly, took {elapsed:?}"
    );
    // Deadline failures are not cached: metrics must show a server error.
    let (status, reply, _) =
        timed_request(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(reply.contains("\"deadline_exceeded\": 1"), "{reply}");
    server.shutdown();
}
