//! Hermetic shim of the `criterion` API subset this workspace's bench
//! targets use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! No statistics engine: each benchmark is warmed up once, then timed
//! over a fixed iteration budget, reporting mean wall-clock per
//! iteration (and element throughput when declared) on stdout.  Good
//! enough to compare orders of magnitude offline; not a replacement for
//! real criterion runs.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark (split across iterations).
const TARGET_TIME: Duration = Duration::from_millis(300);

/// Declared throughput of one iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, recorded by [`iter`](Self::iter).
    mean_secs: f64,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then as many calls as fit the
    /// budget (at least 10), recording mean seconds per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();
        let iters = if once.is_zero() {
            1000
        } else {
            (TARGET_TIME.as_secs_f64() / once.as_secs_f64()).clamp(10.0, 1000.0) as u64
        };
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean_secs = t1.elapsed().as_secs_f64() / iters as f64;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_secs: 0.0 };
    f(&mut b);
    let per_iter = b.mean_secs;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {per_iter:>12.3e} s/iter{rate}");
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's fixed budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's fixed budget ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, &mut f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, &mut g);
        self
    }

    /// End the group (no-op beyond upstream API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the shim delegates to).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs_and_reports() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
