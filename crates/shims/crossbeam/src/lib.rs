//! Hermetic shim of the `crossbeam::channel` API subset this workspace
//! uses: [`channel::bounded`] MPMC channels with blocking `send`/`recv`,
//! `recv_timeout`, and crossbeam's disconnection semantics (a `recv` on
//! an empty channel whose senders are all dropped returns `Err`).
//!
//! Built on `std::sync::{Mutex, Condvar}` — slower than real crossbeam
//! but semantically equivalent for the engine's one-producer-per-channel
//! streaming design.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        cap: usize,
        state: Mutex<State<T>>,
        /// Signaled when an item is pushed or all senders drop.
        not_empty: Condvar,
        /// Signaled when an item is popped or all receivers drop.
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like upstream.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time (channel still connected).
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half (cloneable).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a bounded MPMC channel of capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            cap: cap.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue; `Err` if every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.inner.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self.inner.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives; `Err` once empty with all
        /// senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Like [`recv`](Self::recv) with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() && st.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive (`Err(())` when empty or disconnected
        /// with nothing buffered).
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut st = self.inner.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(RecvTimeoutError::Disconnected)
            } else {
                Err(RecvTimeoutError::Timeout)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order_single_thread() {
            let (tx, rx) = bounded(8);
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = bounded::<u8>(2);
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1u32).unwrap();
            let h = thread::spawn(move || {
                tx.send(2).unwrap(); // Must block until the main thread recvs.
                tx.send(3).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            h.join().unwrap();
        }

        #[test]
        fn send_fails_when_receiver_gone() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(5u8), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(7u8).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            h.join().unwrap();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
