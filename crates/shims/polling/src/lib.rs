//! Hermetic shim of the `polling` crate API subset `memhierd`'s event
//! loop uses: a level-triggered readiness [`Poller`] over registered
//! file descriptors, with a cross-thread [`Poller::notify`] wake-up.
//!
//! Like the workspace's other shims this is std-only and offline: no
//! libc crate, no registry access.  On Linux it wraps the `epoll`
//! syscalls through raw FFI (mirroring the `signal(2)` FFI in
//! `memhier-serve`'s `signal.rs`); on other unixes it degrades to
//! `poll(2)` over a registration table; elsewhere [`Poller::new`]
//! returns an `Unsupported` error so callers can fall back or refuse to
//! start.
//!
//! Semantics intentionally kept from upstream `polling`:
//!
//! * **Level-triggered**: a key stays ready while its condition holds;
//!   callers drain until `WouldBlock` but are not forced to.
//! * **One key per source**: [`Poller::add`] associates a `usize` key;
//!   [`Poller::modify`] rewrites the interest; [`Poller::delete`]
//!   removes the registration.  Sources must be nonblocking.
//! * **`notify`**: wakes a concurrent or future [`Poller::wait`] from
//!   any thread.  Wake-ups coalesce and are consumed by the wait that
//!   observes them; they never surface as user events.
//!
//! ```no_run
//! use polling::{Event, Events, Poller};
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let poller = Poller::new().unwrap();
//! poller.add(&listener, Event::readable(7)).unwrap();
//! let mut events = Events::new();
//! poller.wait(&mut events, Some(std::time::Duration::from_millis(10))).unwrap();
//! for ev in events.iter() {
//!     assert_eq!(ev.key, 7);
//! }
//! ```

/// Interest in (or readiness of) one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back by [`Poller::wait`].
    pub key: usize,
    /// Interested in (or observed) readability.
    pub readable: bool,
    /// Interested in (or observed) writability.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the registration alive for a later
    /// [`Poller::modify`]).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Reusable buffer of events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterate the events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

pub use sys::Poller;

/// Key reserved for the internal notify pipe; user keys must not use it.
pub const NOTIFY_KEY: usize = usize::MAX;

#[cfg(target_os = "linux")]
mod sys {
    //! epoll(7) backend: one epoll instance plus a nonblocking socket
    //! pair whose read end implements [`Poller::notify`].

    use super::{Event, Events, NOTIFY_KEY};
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel epoll_event.  x86-64 packs it to match the 32-bit layout;
    /// other Linux targets use natural alignment — mirror both.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// The epoll-backed poller.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        /// Read end, registered under [`NOTIFY_KEY`]; drained in `wait`.
        wake_rx: UnixStream,
        /// Write end; `notify` sends one byte (coalescing is fine — any
        /// pending byte wakes the next wait).
        wake_tx: UnixStream,
    }

    // SAFETY: every operation is a thread-safe syscall on owned fds;
    // the UnixStream halves are only used through &self write/read,
    // both of which are atomic for the 1-byte payloads used here.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// A fresh epoll instance with its notify pipe registered.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the fd is owned by the Poller and
            // closed in Drop.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let (wake_rx, wake_tx) = match UnixStream::pair() {
                Ok(pair) => pair,
                Err(e) => {
                    // SAFETY: closing the fd we just created.
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let poller = Poller {
                epfd,
                wake_rx,
                wake_tx,
            };
            poller.ctl(
                EPOLL_CTL_ADD,
                poller.wake_rx.as_raw_fd(),
                Some(Event::readable(NOTIFY_KEY)),
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest.map(interest_bits).unwrap_or(0),
                data: interest.map(|e| e.key as u64).unwrap_or(0),
            };
            // SAFETY: `ev` outlives the call; epoll copies it.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Register `source` under `interest.key`.
        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(interest))
        }

        /// Replace the interest of an already-registered `source`.
        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(interest))
        }

        /// Remove `source`'s registration.
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
        }

        /// Block until at least one registered source is ready, `timeout`
        /// elapses (`None` = forever), or [`Poller::notify`] is called.
        /// Returns the number of user events delivered into `events`
        /// (the notify wake-up itself is consumed, not reported).
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                // SAFETY: buf is a valid writable array of buf.len()
                // entries for the duration of the call.
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        // Retriable; honor the timeout loosely (a signal
                        // storm extending a bounded wait is acceptable).
                        if timeout_ms >= 0 {
                            break 0;
                        }
                    }
                    Err(e) => return Err(e),
                }
            };
            for slot in &buf[..n] {
                let key = { slot.data } as usize;
                let bits = { slot.events };
                if key == NOTIFY_KEY {
                    // Drain every pending wake byte so level-triggered
                    // epoll does not spin on the pipe.
                    let mut sink = [0u8; 64];
                    while let Ok(k) = (&self.wake_rx).read(&mut sink) {
                        if k == 0 {
                            break;
                        }
                    }
                    continue;
                }
                // Errors and hang-ups surface as read+write readiness so
                // the owner discovers them from the failing I/O call.
                let err = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.inner.push(Event {
                    key,
                    readable: bits & EPOLLIN != 0 || err,
                    writable: bits & EPOLLOUT != 0 || err,
                });
            }
            Ok(events.inner.len())
        }

        /// Wake a concurrent or future [`Poller::wait`] from any thread.
        pub fn notify(&self) -> io::Result<()> {
            // A full pipe already guarantees a pending wake-up.
            match (&self.wake_tx).write(&[1u8]) {
                Ok(_) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd this struct owns; the socket
            // pair closes itself.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) fallback for non-Linux unixes: a registration table
    //! rebuilt into a pollfd array on every wait.  O(n) per wait, which
    //! is fine at the connection counts this workspace tests.

    use super::{Event, Events, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// The poll(2)-backed poller.
    #[derive(Debug)]
    pub struct Poller {
        registry: Mutex<HashMap<RawFd, Event>>,
        wake_rx: UnixStream,
        wake_tx: UnixStream,
    }

    impl Poller {
        /// A fresh poller with its notify pipe registered.
        pub fn new() -> io::Result<Poller> {
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
                wake_rx,
                wake_tx,
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, Event>> {
            self.registry
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
        }

        /// Register `source` under `interest.key`.
        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.lock().insert(source.as_raw_fd(), interest);
            Ok(())
        }

        /// Replace the interest of an already-registered `source`.
        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.lock().insert(source.as_raw_fd(), interest);
            Ok(())
        }

        /// Remove `source`'s registration.
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.lock().remove(&source.as_raw_fd());
            Ok(())
        }

        /// Block until readiness, timeout, or [`Poller::notify`].
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.clear();
            let mut fds: Vec<PollFd> = vec![PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            }];
            let mut keys = vec![NOTIFY_KEY];
            for (fd, ev) in self.lock().iter() {
                let mut bits = 0i16;
                if ev.readable {
                    bits |= POLLIN;
                }
                if ev.writable {
                    bits |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: *fd,
                    events: bits,
                    revents: 0,
                });
                keys.push(ev.key);
            }
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            // SAFETY: fds is a valid array of fds.len() pollfd entries.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for (i, slot) in fds.iter().enumerate() {
                if slot.revents == 0 {
                    continue;
                }
                if keys[i] == NOTIFY_KEY {
                    let mut sink = [0u8; 64];
                    while let Ok(k) = (&self.wake_rx).read(&mut sink) {
                        if k == 0 {
                            break;
                        }
                    }
                    continue;
                }
                let err = slot.revents & (POLLERR | POLLHUP) != 0;
                events.inner.push(Event {
                    key: keys[i],
                    readable: slot.revents & POLLIN != 0 || err,
                    writable: slot.revents & POLLOUT != 0 || err,
                });
            }
            Ok(events.inner.len())
        }

        /// Wake a concurrent or future [`Poller::wait`] from any thread.
        pub fn notify(&self) -> io::Result<()> {
            match (&self.wake_tx).write(&[1u8]) {
                Ok(_) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Stub for non-unix targets: construction fails with `Unsupported`
    //! so callers can refuse to start (the workspace only deploys the
    //! event loop on unix hosts).

    use super::{Event, Events};
    use std::io;
    use std::time::Duration;

    /// Unsupported-platform poller: every constructor errors.
    #[derive(Debug)]
    pub struct Poller {
        _unconstructible: (),
    }

    impl Poller {
        /// Always fails on this platform.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "polling shim: no readiness backend on this platform",
            ))
        }

        /// Unreachable (no instance can exist).
        pub fn add<T>(&self, _source: &T, _interest: Event) -> io::Result<()> {
            unreachable!("no Poller instance exists on this platform")
        }

        /// Unreachable (no instance can exist).
        pub fn modify<T>(&self, _source: &T, _interest: Event) -> io::Result<()> {
            unreachable!("no Poller instance exists on this platform")
        }

        /// Unreachable (no instance can exist).
        pub fn delete<T>(&self, _source: &T) -> io::Result<()> {
            unreachable!("no Poller instance exists on this platform")
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            unreachable!("no Poller instance exists on this platform")
        }

        /// Unreachable (no instance can exist).
        pub fn notify(&self) -> io::Result<()> {
            unreachable!("no Poller instance exists on this platform")
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(3)).unwrap();

        let mut events = Events::new();
        // Nothing pending: a bounded wait returns empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 3);
        assert!(ev.readable);
    }

    #[test]
    fn modify_to_writable_and_delete() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&client, Event::none(9)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "no interest, no events");

        poller.modify(&client, Event::all(9)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "an idle socket is writable");
        assert!(events.iter().next().unwrap().writable);

        poller.delete(&client).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "deleted registrations stay silent");
        drop(server);
    }

    #[test]
    fn readable_data_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(1)).unwrap();
        client.write_all(b"ping").unwrap();

        let mut events = Events::new();
        for round in 0..2 {
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "unread data must stay ready (round {round})");
            assert!(events.iter().next().unwrap().readable);
        }
        let mut server = server;
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let started = Instant::now();
        let mut events = Events::new();
        // Would block for 10s without the notify.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "notify is consumed, not reported");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wait returned via notify, not timeout"
        );
        handle.join().unwrap();
    }

    #[test]
    fn notify_before_wait_is_not_lost() {
        let poller = Poller::new().unwrap();
        poller.notify().unwrap();
        poller.notify().unwrap(); // coalesces
        let started = Instant::now();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        // Drained: the next bounded wait times out quietly.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
